"""Unit tests for the LabeledGraph substrate."""

from __future__ import annotations

import pytest

from repro.graph import GraphError, LabeledGraph, graph_from_edges


class TestConstruction:
    def test_empty_graph(self):
        graph = LabeledGraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.vertices()) == []
        assert list(graph.edges()) == []

    def test_add_vertex_and_label(self):
        graph = LabeledGraph()
        graph.add_vertex("v", "A")
        assert "v" in graph
        assert graph.label("v") == "A"
        assert graph.num_vertices == 1

    def test_add_vertex_idempotent_same_label(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "A")
        graph.add_vertex(1, "A")
        assert graph.num_vertices == 1

    def test_add_vertex_conflicting_label_raises(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "A")
        with pytest.raises(GraphError):
            graph.add_vertex(1, "B")

    def test_add_edge_requires_vertices(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "A")
        with pytest.raises(GraphError):
            graph.add_edge(1, 2)

    def test_add_edge_and_neighbors(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "A")
        graph.add_vertex(2, "B")
        graph.add_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert graph.neighbors(1) == frozenset({2})
        assert graph.num_edges == 1

    def test_add_edge_duplicate_is_noop(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "A")
        graph.add_vertex(2, "B")
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "A")
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_directed_not_supported(self):
        with pytest.raises(GraphError):
            LabeledGraph(directed=True)

    def test_graph_from_edges(self):
        graph = graph_from_edges([(1, 2), (2, 3)], {1: "A", 2: "B", 3: "C", 4: "D"})
        assert graph.num_vertices == 4
        assert graph.num_edges == 2
        assert graph.degree(4) == 0

    def test_graph_from_edges_missing_label_raises(self):
        with pytest.raises(GraphError):
            graph_from_edges([(1, 2)], {1: "A"})


class TestRemoval:
    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_edge(0, 99)

    def test_remove_vertex_removes_incident_edges(self, triangle):
        triangle.remove_vertex(0)
        assert 0 not in triangle
        assert triangle.num_edges == 1
        assert triangle.num_vertices == 2

    def test_remove_missing_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_vertex(42)

    def test_label_index_updated_on_removal(self, triangle):
        label = triangle.label(0)
        triangle.remove_vertex(0)
        assert 0 not in triangle.vertices_with_label(label)


class TestInspection:
    def test_label_counts(self, two_copy_graph):
        counts = two_copy_graph.label_counts()
        assert counts["A"] == 2
        assert counts["Z"] == 1

    def test_vertices_with_label(self, two_copy_graph):
        assert two_copy_graph.vertices_with_label("A") == frozenset({0, 10})
        assert two_copy_graph.vertices_with_label("missing") == frozenset()

    def test_degree_and_average_degree(self, triangle):
        assert triangle.degree(0) == 2
        assert triangle.average_degree() == pytest.approx(2.0)
        assert triangle.max_degree() == 2

    def test_degree_missing_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.degree(42)

    def test_degree_sequence(self, star3):
        assert star3.degree_sequence() == [3, 1, 1, 1]

    def test_density(self, triangle):
        assert triangle.density() == pytest.approx(1.0)

    def test_density_small_graphs(self):
        graph = LabeledGraph()
        assert graph.density() == 0.0
        graph.add_vertex(0, "A")
        assert graph.density() == 0.0

    def test_edges_listed_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        normalised = {tuple(sorted(e)) for e in edges}
        assert normalised == {(0, 1), (0, 2), (1, 2)}

    def test_label_missing_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.label(99)

    def test_len_and_iter(self, triangle):
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]


class TestDerivedGraphs:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_equality(self, triangle):
        assert triangle == triangle.copy()
        other = triangle.copy()
        other.remove_edge(0, 1)
        assert triangle != other

    def test_graphs_unhashable(self, triangle):
        with pytest.raises(TypeError):
            hash(triangle)

    def test_subgraph_induced(self, two_copy_graph):
        sub = two_copy_graph.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_subgraph_unknown_vertex_raises(self, triangle):
        from repro.graph import GraphError
        with pytest.raises(GraphError):
            triangle.subgraph([0, 99])

    def test_edge_subgraph(self, triangle):
        sub = triangle.edge_subgraph([(0, 1)])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1

    def test_edge_subgraph_missing_edge_raises(self, path4):
        with pytest.raises(GraphError):
            path4.edge_subgraph([(0, 3)])

    def test_relabeled_default(self, two_copy_graph):
        renamed = two_copy_graph.relabeled()
        assert set(renamed.vertices()) == set(range(two_copy_graph.num_vertices))
        assert renamed.num_edges == two_copy_graph.num_edges
        assert renamed.label_counts() == two_copy_graph.label_counts()

    def test_relabeled_explicit_mapping(self, triangle):
        mapping = {0: "x", 1: "y", 2: "z"}
        renamed = triangle.relabeled(mapping)
        assert renamed.has_edge("x", "y")
        assert renamed.label("x") == triangle.label(0)


class TestTraversalHelpers:
    def test_bfs_within_radius(self, path4):
        dist = path4.bfs_within(0, 2)
        assert dist == {0: 0, 1: 1, 2: 2}

    def test_bfs_within_zero(self, path4):
        assert path4.bfs_within(2, 0) == {2: 0}

    def test_bfs_within_negative_raises(self, path4):
        with pytest.raises(GraphError):
            path4.bfs_within(0, -1)

    def test_bfs_within_missing_source_raises(self, path4):
        with pytest.raises(GraphError):
            path4.bfs_within(77, 1)

    def test_neighborhood_subgraph(self, star3):
        sub = star3.neighborhood_subgraph(0, 1)
        assert sub.num_vertices == 4
        assert sub.num_edges == 3
        leaf_sub = star3.neighborhood_subgraph(1, 1)
        assert leaf_sub.num_vertices == 2
