"""Unit tests for the classic graph algorithms used by the miners."""

from __future__ import annotations

import pytest

from repro.graph import (
    GraphError,
    LabeledGraph,
    bfs_distances,
    center_vertices,
    connected_components,
    degree_histogram,
    diameter,
    eccentricity,
    effective_diameter,
    exact_maximum_independent_set,
    graph_radius,
    greedy_maximum_independent_set,
    is_connected,
    is_r_bounded_from,
    radius_from,
    shortest_path_length,
    spanning_tree_edges,
    triangles,
)


class TestDistances:
    def test_bfs_distances_path(self, path4):
        assert bfs_distances(path4, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_distances_missing_source(self, path4):
        with pytest.raises(GraphError):
            bfs_distances(path4, 9)

    def test_shortest_path_length(self, path4):
        assert shortest_path_length(path4, 0, 3) == 3
        assert shortest_path_length(path4, 2, 2) == 0

    def test_shortest_path_disconnected_raises(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        graph.add_vertex(1, "B")
        with pytest.raises(GraphError):
            shortest_path_length(graph, 0, 1)

    def test_shortest_path_missing_target_raises(self, path4):
        with pytest.raises(GraphError):
            shortest_path_length(path4, 0, 99)


class TestComponentsAndConnectivity:
    def test_connected_components_sizes(self, two_copy_graph):
        components = connected_components(two_copy_graph)
        assert sorted(len(c) for c in components) == [1, 3, 3]
        assert len(components[0]) == 3  # largest first

    def test_is_connected(self, triangle, two_copy_graph):
        assert is_connected(triangle)
        assert not is_connected(two_copy_graph)

    def test_empty_graph_is_connected(self):
        assert is_connected(LabeledGraph())


class TestDiameterFamily:
    def test_diameter_path(self, path4):
        assert diameter(path4) == 3

    def test_diameter_triangle(self, triangle):
        assert diameter(triangle) == 1

    def test_diameter_empty(self):
        assert diameter(LabeledGraph()) == 0

    def test_eccentricity(self, path4):
        assert eccentricity(path4, 0) == 3
        assert eccentricity(path4, 1) == 2

    def test_eccentricity_disconnected_raises(self, two_copy_graph):
        with pytest.raises(GraphError):
            eccentricity(two_copy_graph, 0)

    def test_graph_radius_and_center(self, path4):
        assert graph_radius(path4) == 2
        assert set(center_vertices(path4)) == {1, 2}

    def test_radius_from(self, star3):
        assert radius_from(star3, 0) == 1
        assert radius_from(star3, 1) == 2

    def test_center_of_empty_graph(self):
        assert center_vertices(LabeledGraph()) == []
        assert graph_radius(LabeledGraph()) == 0

    def test_is_r_bounded_from(self, star3, path4):
        assert is_r_bounded_from(star3, 0, 1)
        assert not is_r_bounded_from(star3, 1, 1)
        assert is_r_bounded_from(path4, 0, 3)
        assert not is_r_bounded_from(path4, 0, 2)

    def test_is_r_bounded_disconnected(self, two_copy_graph):
        assert not is_r_bounded_from(two_copy_graph, 0, 10)

    def test_is_r_bounded_missing_vertex(self, star3):
        with pytest.raises(GraphError):
            is_r_bounded_from(star3, 99, 1)

    def test_effective_diameter_bounds_diameter(self, path4):
        eff = effective_diameter(path4, percentile=0.9)
        assert 1 <= eff <= diameter(path4)

    def test_effective_diameter_full_percentile(self, path4):
        assert effective_diameter(path4, percentile=1.0) == diameter(path4)

    def test_effective_diameter_invalid_percentile(self, path4):
        with pytest.raises(ValueError):
            effective_diameter(path4, percentile=0.0)

    def test_effective_diameter_empty(self):
        assert effective_diameter(LabeledGraph()) == 0

    def test_effective_diameter_sampled(self, planted_dataset):
        graph = planted_dataset.graph
        value = effective_diameter(graph, percentile=0.9, sample_size=10)
        assert value >= 0


class TestCountsAndStructures:
    def test_triangle_count(self, triangle, path4):
        assert triangles(triangle) == 1
        assert triangles(path4) == 0

    def test_degree_histogram(self, star3):
        assert degree_histogram(star3) == {3: 1, 1: 3}

    def test_spanning_tree_connected(self, triangle):
        edges = spanning_tree_edges(triangle)
        assert len(edges) == 2

    def test_spanning_tree_forest(self, two_copy_graph):
        edges = spanning_tree_edges(two_copy_graph)
        # 7 vertices in 3 components -> 4 forest edges.
        assert len(edges) == two_copy_graph.num_vertices - 3

    def test_spanning_tree_root_first(self, path4):
        edges = spanning_tree_edges(path4, root=3)
        assert edges[0][0] == 3


class TestIndependentSets:
    def test_exact_mis_triangle_conflict(self):
        adjacency = {1: {2, 3}, 2: {1, 3}, 3: {1, 2}}
        assert len(exact_maximum_independent_set(adjacency)) == 1

    def test_exact_mis_path_conflict(self):
        adjacency = {1: {2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}
        assert len(exact_maximum_independent_set(adjacency)) == 2

    def test_exact_mis_no_conflicts(self):
        adjacency = {i: set() for i in range(5)}
        assert len(exact_maximum_independent_set(adjacency)) == 5

    def test_exact_mis_respects_limit(self):
        adjacency = {i: set() for i in range(30)}
        with pytest.raises(ValueError):
            exact_maximum_independent_set(adjacency, limit=20)

    def test_greedy_mis_is_independent(self):
        adjacency = {1: {2}, 2: {1, 3}, 3: {2, 4}, 4: {3}, 5: set()}
        chosen = greedy_maximum_independent_set(adjacency)
        for u in chosen:
            assert not (adjacency[u] & chosen)

    def test_greedy_mis_lower_bounds_exact(self):
        adjacency = {1: {2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}
        greedy = greedy_maximum_independent_set(adjacency)
        exact = exact_maximum_independent_set(adjacency)
        assert len(greedy) <= len(exact)
        assert len(greedy) >= 1

    def test_greedy_mis_empty(self):
        assert greedy_maximum_independent_set({}) == set()
