"""Unit tests for the ``repro.obs`` telemetry layer.

Covers the registry (counters/gauges/histogram bucketing, Snapshottable
bridging), the span tree (nesting, synthetic records, worker-tree merge,
serialisation round-trip), the structured JSON log writer, the unified
``to_dict()`` shape across every stats object, the telemetry sidecar's
catalog round-trip (write → read back → gc), and the serving tier's
``/metrics`` / ``/stats`` endpoints plus the structured-500 bugfix.
"""

from __future__ import annotations

import json
import logging
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from io import StringIO

import pytest

import repro
from repro import open_catalog
from repro.catalog.server import CatalogServer
from repro.catalog.store import CatalogStore
from repro.graph import synthetic_single_graph
from repro.obs import (
    DEFAULT_BUCKETS,
    TRACE,
    Histogram,
    IndexStats,
    LRUCache,
    MatcherStats,
    MetricsRegistry,
    MiningStatistics,
    NullRegistry,
    NullTracer,
    Snapshottable,
    Span,
    Tracer,
    configure_logging,
    get_logger,
    get_registry,
    get_tracer,
    use_registry,
    use_tracer,
)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read()


# ---------------------------------------------------------------------- #
# histograms
# ---------------------------------------------------------------------- #
class TestHistogram:
    def test_boundary_values_land_in_their_bucket(self):
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        h.observe(0.1)   # == first bound -> bucket 0 (bounds are inclusive)
        h.observe(0.05)  # below first bound -> bucket 0
        h.observe(0.2)   # between bounds -> bucket 1
        h.observe(1.0)   # == second bound -> bucket 1
        assert h.counts == [2, 2, 0, 0]

    def test_overflow_bucket_catches_values_above_last_bound(self):
        h = Histogram(buckets=(0.1, 1.0))
        h.observe(999.0)
        assert h.counts == [0, 0, 1]
        assert h.count == 1
        assert h.total == 999.0

    def test_counts_has_one_more_slot_than_bounds(self):
        h = Histogram()
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1

    def test_sum_and_count_accumulate(self):
        h = Histogram(buckets=(1.0,))
        for v in (0.25, 0.5, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(3.75)
        d = h.to_dict()
        assert d["count"] == 3 and d["sum"] == pytest.approx(3.75)
        assert d["buckets"] == [1.0] and d["counts"] == [2, 1]

    def test_unsorted_or_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram(buckets=())


# ---------------------------------------------------------------------- #
# the registry
# ---------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counters_accumulate(self):
        r = MetricsRegistry()
        r.counter("a")
        r.counter("a", 4)
        assert r.flat()["a"] == 5

    def test_gauges_last_write_wins(self):
        r = MetricsRegistry()
        r.gauge("g", 1)
        r.gauge("g", 7)
        assert r.flat()["g"] == 7

    def test_histograms_export_count_and_sum_in_flat(self):
        r = MetricsRegistry()
        r.observe("lat", 0.2)
        r.observe("lat", 0.3)
        flat = r.flat()
        assert flat["lat.count"] == 2
        assert flat["lat.sum"] == pytest.approx(0.5)
        assert "lat" not in flat  # bucket vectors live in snapshot(), not flat()
        assert r.snapshot()["histograms"]["lat"]["count"] == 2

    def test_snapshot_is_sorted_and_deterministic(self):
        r = MetricsRegistry()
        for name in ("z", "a", "m"):
            r.counter(name)
        assert list(r.snapshot()["counters"]) == ["a", "m", "z"]
        assert json.dumps(r.flat()) == json.dumps(r.flat())

    def test_publish_flattens_nested_and_skips_non_numeric(self):
        class Stats:
            def to_dict(self):
                return {"hits": 3, "nested": {"misses": 2}, "name": "x", "ok": True}

        r = MetricsRegistry()
        r.publish("cache", Stats())
        r.publish("cache", Stats())  # re-publish overwrites, not doubles
        flat = r.flat()
        assert flat["cache.hits"] == 3
        assert flat["cache.nested.misses"] == 2
        assert "cache.name" not in flat
        assert "cache.ok" not in flat  # bools are not metrics

    def test_merge_counters_accumulates_across_instances(self):
        r = MetricsRegistry()
        r.merge_counters("matcher", MatcherStats(candidate_tests=5))
        r.merge_counters("matcher", MatcherStats(candidate_tests=2))
        assert r.flat()["matcher.candidate_tests"] == 7

    def test_null_registry_is_inert(self):
        r = NullRegistry()
        r.counter("a")
        r.gauge("g", 1)
        r.observe("h", 0.5)
        r.publish("p", MatcherStats())
        assert r.enabled is False
        assert r.flat() == {}
        assert r.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_registry_is_null_and_use_registry_restores(self):
        assert get_registry().enabled is False
        live = MetricsRegistry()
        with use_registry(live):
            assert get_registry() is live
        assert get_registry().enabled is False


# ---------------------------------------------------------------------- #
# spans
# ---------------------------------------------------------------------- #
class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", unit=3):
                pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        (inner,) = roots[0].children
        assert inner.name == "inner" and inner.attrs == {"unit": 3}
        assert roots[0].duration >= inner.duration >= 0.0

    def test_record_emits_synthetic_child(self):
        tracer = Tracer()
        with tracer.span("stage"):
            tracer.record("stage.unit", 0.25, unit=1)
        (root,) = tracer.roots()
        (child,) = root.children
        assert child.duration == 0.25 and child.attrs == {"unit": 1}

    def test_attach_grafts_worker_tree(self):
        tracer = Tracer()
        worker_tree = Span("mine.stage1.unit", attrs={"unit": 2}, duration=0.5)
        with tracer.span("mine.stage1"):
            tracer.attach(worker_tree)
        (root,) = tracer.roots()
        assert root.children == [worker_tree]

    def test_self_time_and_child_total(self):
        root = Span("r", duration=1.0, children=[Span("a", duration=0.3), Span("b", duration=0.4)])
        assert root.child_total() == pytest.approx(0.7)
        assert root.self_time() == pytest.approx(0.3)
        assert Span("under", duration=0.1, children=[Span("a", duration=0.5)]).self_time() == 0.0

    def test_to_dict_round_trip(self):
        root = Span("r", attrs={"k": 1}, duration=2.0, children=[Span("c", duration=1.0)])
        payload = root.to_dict()
        assert Span.from_dict(payload) == root
        bare = Span("empty").to_dict()
        assert "attrs" not in bare and "children" not in bare

    def test_annotate_on_open_span(self):
        tracer = Tracer()
        with tracer.span("s") as node:
            node.annotate(seeds=4)
        assert tracer.roots()[0].attrs == {"seeds": 4}

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("x") as node:
            node.annotate(a=1)  # no-op, no error
        assert tracer.roots() == []
        assert tracer.to_dict() == {"spans": []}

    def test_default_tracer_is_null_and_use_tracer_restores(self):
        assert get_tracer().enabled is False
        with use_tracer(Tracer()) as tracer:
            assert get_tracer() is tracer and tracer.enabled
        assert get_tracer().enabled is False

    def test_iter_spans_is_depth_first(self):
        root = Span("r", children=[Span("a", children=[Span("b")]), Span("c")])
        assert [s.name for s in root.iter_spans()] == ["r", "a", "b", "c"]


# ---------------------------------------------------------------------- #
# structured logging
# ---------------------------------------------------------------------- #
class TestLogging:
    def test_json_lines_carry_extras(self):
        stream = StringIO()
        logger = configure_logging(json_lines=True, stream=stream)
        try:
            get_logger("serve").info("hello %s", "world", extra={"endpoint": "/stats"})
        finally:
            configure_logging(stream=StringIO())  # detach the test stream
        record = json.loads(stream.getvalue().strip())
        assert record["msg"] == "hello world"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.serve"
        assert record["endpoint"] == "/stats"
        assert "ts" in record

    def test_trace_level_spans_are_logged_when_enabled(self):
        stream = StringIO()
        configure_logging(json_lines=True, trace=True, stream=stream)
        try:
            tracer = Tracer()
            with tracer.span("mine.stage1"):
                pass
        finally:
            configure_logging(stream=StringIO())
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "TRACE"
        assert record["span"] == "mine.stage1"
        assert logging.getLevelName(TRACE) == "TRACE"

    def test_exceptions_serialise_a_traceback(self):
        stream = StringIO()
        configure_logging(json_lines=True, stream=stream)
        try:
            try:
                raise RuntimeError("kaboom")
            except RuntimeError as error:
                get_logger("serve").error("failed", exc_info=error)
        finally:
            configure_logging(stream=StringIO())
        record = json.loads(stream.getvalue().strip())
        assert "RuntimeError: kaboom" in record["traceback"]

    def test_reconfiguring_does_not_stack_handlers(self):
        logger = configure_logging(stream=StringIO())
        configure_logging(stream=StringIO())
        ours = [h for h in logger.handlers if getattr(h, "_repro_obs", False)]
        assert len(ours) == 1


# ---------------------------------------------------------------------- #
# the unified Snapshottable shape
# ---------------------------------------------------------------------- #
class TestSnapshottableUnification:
    @pytest.mark.parametrize(
        "stats",
        [MatcherStats(), IndexStats(), MiningStatistics(), LRUCache(max_entries=2)],
        ids=["matcher", "index", "mining", "lru"],
    )
    def test_every_stats_object_satisfies_the_protocol(self, stats):
        assert isinstance(stats, Snapshottable)
        dumped = stats.to_dict()
        assert isinstance(dumped, dict) and dumped
        assert all(isinstance(v, (int, float, dict)) for v in dumped.values())

    def test_lru_to_dict_is_its_stats(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        assert cache.to_dict() == cache.stats()
        assert cache.to_dict()["hits"] == 1
        assert cache.to_dict()["misses"] == 1

    def test_run_cache_stats_shape(self, tmp_path):
        from repro.catalog.cache import RunCache

        cache = RunCache(CatalogStore(tmp_path / "c"))
        assert cache.to_dict() == {"hits": 0, "misses": 0, "inserts": 0}


# ---------------------------------------------------------------------- #
# sidecars + serving (share one small mined catalog)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def obs_store(tmp_path_factory):
    """A catalog mined WITH telemetry enabled, so a sidecar exists."""
    store = tmp_path_factory.mktemp("obs") / "cat"
    graph = synthetic_single_graph(
        num_vertices=120, num_labels=30, average_degree=2.0,
        num_large_patterns=1, large_pattern_vertices=8, large_pattern_support=2,
        num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
        seed=13, max_pattern_diameter=6,
    ).graph
    with use_registry(MetricsRegistry()), use_tracer(Tracer()):
        repro.mine(graph, min_support=2, k=3, d_max=5, catalog=store)
    return store


class TestTelemetrySidecar:
    def test_sidecar_written_and_round_trips(self, obs_store):
        store = CatalogStore(obs_store)
        (run,) = store.list_runs(kind="result")
        run_id = run["run_id"]
        assert store.has_telemetry(run_id)
        payload = store.get_telemetry(run_id)
        assert payload["kind"] == "telemetry"
        assert payload["run_id"] == run_id
        assert payload["metrics"]["counters"]["mine.runs"] == 1
        assert [s["name"] for s in payload["spans"]] == [
            "mine.stage1", "mine.stage2", "mine.stage3",
        ]
        assert payload["statistics"]["num_spiders"] > 0

    def test_gc_drops_orphan_sidecars_only(self, obs_store):
        store = CatalogStore(obs_store)
        (run,) = store.list_runs(kind="result")
        orphan = store.telemetry_dir / "deadbeef.json"
        orphan.write_text("{}", encoding="utf-8")
        removed = store.gc()
        assert removed["telemetry"] == 1
        assert not orphan.exists()
        assert store.has_telemetry(run["run_id"])  # live sidecar retained

    def test_no_sidecar_when_telemetry_off(self, tmp_path):
        graph = synthetic_single_graph(
            num_vertices=80, num_labels=25, average_degree=2.0,
            num_large_patterns=1, large_pattern_vertices=6, large_pattern_support=2,
            num_small_patterns=1, small_pattern_vertices=3, small_pattern_support=2,
            seed=3, max_pattern_diameter=6,
        ).graph
        store_path = tmp_path / "cold"
        repro.mine(graph, min_support=2, k=3, d_max=4, catalog=store_path)
        store = CatalogStore(store_path)
        assert not list(store.telemetry_dir.glob("*.json"))


@pytest.fixture(scope="module")
def obs_server(obs_store):
    catalog = open_catalog(obs_store, read_only=True)
    handle = catalog.serve(port=0, background=True)
    yield handle
    handle.close()


class TestServerObservability:
    def test_metrics_endpoint_is_byte_stable_under_concurrency(self, obs_server):
        # /metrics must not meter itself, or concurrent readers would each
        # see a different body.
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(
                lambda _: _get(obs_server.url + "/metrics"), range(16)
            ))
        bodies = {body for _, body in results}
        assert all(status == 200 for status, _ in results)
        assert len(bodies) == 1

    def test_stats_endpoint_shape(self, obs_server):
        status, body = _get(obs_server.url + "/stats")
        assert status == 200
        stats = json.loads(body)
        assert set(stats) == {
            "metrics", "caches", "index_stats", "requests_served", "uptime_seconds",
        }
        assert set(stats["metrics"]) == {"counters", "gauges", "histograms"}
        assert set(stats["caches"]) == {"payload", "index"}
        assert "matcher_calls" in stats["index_stats"]

    def test_requests_are_counted_per_endpoint(self, obs_server):
        _get(obs_server.url + "/healthz")
        status, body = _get(obs_server.url + "/metrics")
        flat = json.loads(body)
        assert flat["http.requests.healthz"] >= 1
        assert flat["http.requests"] >= flat["http.requests.healthz"]
        assert flat["http.latency_seconds.healthz.count"] >= 1

    def test_unhandled_errors_are_logged_and_counted(self, obs_store, monkeypatch):
        original = CatalogServer._route

        async def exploding(self, method, path, params, body):
            if path == "/boom":
                raise RuntimeError("kaboom")
            return await original(self, method, path, params, body)

        monkeypatch.setattr(CatalogServer, "_route", exploding)

        records = []
        handler = logging.Handler()
        handler.emit = records.append
        logger = get_logger("serve")
        logger.addHandler(handler)
        catalog = open_catalog(obs_store, read_only=True)
        handle = catalog.serve(port=0, background=True)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(handle.url + "/boom")
            assert err.value.code == 500
            assert json.loads(err.value.read())["error"] == "internal error: kaboom"
            status, body = _get(handle.url + "/metrics")
            flat = json.loads(body)
            assert flat["http.errors"] == 1
            assert flat["http.errors.boom"] == 1
        finally:
            handle.close()
            logger.removeHandler(handler)
        (record,) = [r for r in records if r.levelno >= logging.ERROR]
        assert record.endpoint == "/boom"
        assert record.exc_info[0] is RuntimeError

    def test_access_log_is_opt_in(self, obs_store):
        records = []
        handler = logging.Handler()
        handler.emit = records.append
        logger = get_logger("serve")
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        catalog = open_catalog(obs_store, read_only=True)
        try:
            with catalog.serve(port=0, background=True) as handle:
                _get(handle.url + "/healthz")
            assert not [r for r in records if r.levelno == logging.INFO]
            with catalog.serve(port=0, background=True, access_log=True) as handle:
                _get(handle.url + "/healthz")
            lines = [
                r.getMessage() for r in records if r.levelno == logging.INFO
            ]
            assert any(line.startswith("GET /healthz 200") for line in lines)
        finally:
            logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)
