"""FrozenGraph ≡ LabeledGraph: property tests over random graphs.

The CSR snapshot must be observationally identical to the mutable builder on
the whole read surface — neighbors, labels, BFS distances, components — and
``freeze()`` / ``thaw()`` must round-trip.  Random graphs are generated with
hypothesis so the equivalence is exercised over many shapes (empty graphs,
isolated vertices, dense cores, string labels, non-contiguous ids).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    FrozenGraph,
    GraphError,
    GraphView,
    LabeledGraph,
    bfs_distances,
    coerce_backend,
    connected_components,
    degree_histogram,
    diameter,
    freeze,
    is_connected,
    is_r_bounded_from,
    shortest_path_length,
    thaw,
)

# ---------------------------------------------------------------------- #
# random graph strategy
# ---------------------------------------------------------------------- #
LABELS = ("A", "B", "C", "D")


@st.composite
def labeled_graphs(draw) -> LabeledGraph:
    """A random LabeledGraph with 0..12 vertices and arbitrary edges."""
    n = draw(st.integers(min_value=0, max_value=12))
    # Non-contiguous, shuffled vertex ids so index mapping is non-trivial.
    ids = draw(
        st.lists(st.integers(min_value=0, max_value=99), min_size=n, max_size=n, unique=True)
    )
    graph = LabeledGraph()
    for v in ids:
        graph.add_vertex(v, draw(st.sampled_from(LABELS)))
    if n >= 2:
        possible = [(u, v) for i, u in enumerate(ids) for v in ids[i + 1:]]
        edges = draw(st.lists(st.sampled_from(possible), max_size=3 * n, unique=True))
        for u, v in edges:
            graph.add_edge(u, v)
    return graph


# ---------------------------------------------------------------------- #
# observational equivalence
# ---------------------------------------------------------------------- #
@given(labeled_graphs())
@settings(max_examples=120, deadline=None)
def test_frozen_matches_mutable_read_surface(graph):
    frozen = freeze(graph)
    assert isinstance(frozen, FrozenGraph)
    assert isinstance(frozen, GraphView)

    assert frozen.num_vertices == graph.num_vertices
    assert frozen.num_edges == graph.num_edges
    assert list(frozen.vertices()) == list(graph.vertices())
    assert frozen.labels() == graph.labels()
    assert frozen.label_set() == graph.label_set()
    assert frozen.label_counts() == graph.label_counts()
    # Same edges in the same order: consumers that truncate or tie-break on
    # the edge stream (SUBDUE/MoSS candidate caps) rely on this.
    assert list(frozen.edges()) == list(graph.edges())
    for label in LABELS:
        assert frozen.vertices_with_label(label) == graph.vertices_with_label(label)
    for v in graph.vertices():
        assert v in frozen
        assert frozen.label(v) == graph.label(v)
        assert frozen.degree(v) == graph.degree(v)
        assert frozen.neighbors(v) == graph.neighbors(v)
        # Identical layout, not just identical contents: iteration must agree
        # so that mining is backend-deterministic.
        assert list(frozen.neighbors(v)) == list(graph.neighbors(v))
    for u in graph.vertices():
        for v in graph.vertices():
            assert frozen.has_edge(u, v) == graph.has_edge(u, v)
    assert frozen.degree_sequence() == graph.degree_sequence()
    assert frozen.max_degree() == graph.max_degree()
    assert frozen.density() == pytest.approx(graph.density())
    assert frozen == graph


@given(labeled_graphs())
@settings(max_examples=100, deadline=None)
def test_frozen_matches_mutable_traversals(graph):
    frozen = freeze(graph)
    for v in graph.vertices():
        assert bfs_distances(frozen, v) == bfs_distances(graph, v)
        assert frozen.bfs_within(v, 2) == graph.bfs_within(v, 2)
        assert is_r_bounded_from(frozen, v, 1) == is_r_bounded_from(graph, v, 1)
    assert sorted(map(sorted, connected_components(frozen))) == sorted(
        map(sorted, connected_components(graph))
    )
    # Derived subgraphs iterate identically too (insertion order on both
    # backends), so order-sensitive consumers of a subgraph stay parity-safe.
    half = [v for i, v in enumerate(graph.vertices()) if i % 2 == 0]
    assert list(frozen.subgraph(half).vertices()) == list(graph.subgraph(half).vertices())
    assert list(frozen.subgraph(half).edges()) == list(graph.subgraph(half).edges())
    assert is_connected(frozen) == is_connected(graph)
    assert degree_histogram(frozen) == degree_histogram(graph)
    if is_connected(graph):
        assert diameter(frozen) == diameter(graph)


@given(labeled_graphs())
@settings(max_examples=100, deadline=None)
def test_freeze_thaw_round_trip(graph):
    frozen = freeze(graph)
    thawed = thaw(frozen)
    assert isinstance(thawed, LabeledGraph)
    assert thawed == graph
    assert freeze(thawed) == frozen
    # freeze of a frozen graph is the identity; thaw of a mutable one too.
    assert freeze(frozen) is frozen
    assert thaw(graph) is graph


# ---------------------------------------------------------------------- #
# immutability and derived graphs
# ---------------------------------------------------------------------- #
def small_graph() -> LabeledGraph:
    graph = LabeledGraph()
    for i, label in enumerate("ABCA"):
        graph.add_vertex(i, label)
    for u, v in [(0, 1), (1, 2), (2, 3), (0, 2)]:
        graph.add_edge(u, v)
    return graph


class TestFrozenGraphBehaviour:
    def test_mutators_raise(self):
        frozen = small_graph().freeze()
        with pytest.raises(GraphError):
            frozen.add_vertex(9, "Z")
        with pytest.raises(GraphError):
            frozen.add_edge(0, 3)
        with pytest.raises(GraphError):
            frozen.remove_edge(0, 1)
        with pytest.raises(GraphError):
            frozen.remove_vertex(0)

    def test_snapshot_is_independent_of_builder(self):
        graph = small_graph()
        frozen = graph.freeze()
        graph.add_vertex(9, "Z")
        graph.add_edge(0, 9)
        assert 9 not in frozen
        assert frozen.num_edges == 4

    def test_copy_returns_self(self):
        frozen = small_graph().freeze()
        assert frozen.copy() is frozen

    def test_missing_vertex_raises(self):
        frozen = small_graph().freeze()
        with pytest.raises(GraphError):
            frozen.label(99)
        with pytest.raises(GraphError):
            frozen.neighbors(99)
        with pytest.raises(GraphError):
            frozen.degree(99)

    def test_subgraph_is_mutable(self):
        frozen = small_graph().freeze()
        sub = frozen.subgraph([0, 1, 2])
        assert isinstance(sub, LabeledGraph)
        assert sub.num_vertices == 3 and sub.num_edges == 3
        sub.add_vertex(7, "Q")  # mutable again

    def test_neighborhood_subgraph(self):
        graph = small_graph()
        frozen = graph.freeze()
        assert frozen.neighborhood_subgraph(0, 1) == graph.neighborhood_subgraph(0, 1)

    def test_coerce_backend(self):
        graph = small_graph()
        frozen = coerce_backend(graph, "csr")
        assert isinstance(frozen, FrozenGraph)
        assert coerce_backend(frozen, "csr") is frozen
        assert coerce_backend(graph, "dict") is graph
        assert coerce_backend(frozen, "dict") == graph
        with pytest.raises(GraphError):
            coerce_backend(graph, "numpy")

    def test_empty_graph(self):
        frozen = LabeledGraph().freeze()
        assert frozen.num_vertices == 0
        assert frozen.num_edges == 0
        assert list(frozen.edges()) == []
        assert frozen.degree_sequence() == []
        assert frozen.max_degree() == 0


class TestEndpointValidation:
    """shortest_path_length must reject a missing source like a missing target."""

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_missing_source_raises(self, backend):
        graph = coerce_backend(small_graph(), backend)
        with pytest.raises(GraphError, match="does not exist"):
            shortest_path_length(graph, 99, 0)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_missing_target_raises(self, backend):
        graph = coerce_backend(small_graph(), backend)
        with pytest.raises(GraphError, match="does not exist"):
            shortest_path_length(graph, 0, 99)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_disconnected_raises(self, backend):
        builder = small_graph()
        builder.add_vertex(9, "Z")
        graph = coerce_backend(builder, backend)
        with pytest.raises(GraphError, match="not connected"):
            shortest_path_length(graph, 0, 9)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_path_length(self, backend):
        graph = coerce_backend(small_graph(), backend)
        assert shortest_path_length(graph, 0, 3) == 2


# ---------------------------------------------------------------------- #
# numpy CSR interop
# ---------------------------------------------------------------------- #
class TestNumpyCsrInterop:
    """from_csr_arrays accepts ndarray payloads; csr_numpy views are zero-copy."""

    def test_from_csr_arrays_ndarray_round_trip(self):
        np = pytest.importorskip("numpy")
        frozen = freeze(small_graph())
        offsets, neighbors, label_ids = frozen.csr_numpy()
        rebuilt = FrozenGraph.from_csr_arrays(
            frozen.vertex_ids,
            frozen.label_table,
            np.asarray(label_ids),
            np.asarray(offsets),
            np.asarray(neighbors),
        )
        assert rebuilt == frozen
        assert rebuilt.num_edges == frozen.num_edges
        # Label membership keys stay plain Python ints even when the label-id
        # payload arrives as an ndarray (np scalars would break dict lookups).
        for label in frozen.label_table:
            members = rebuilt.vertices_with_label(label)
            assert members == frozen.vertices_with_label(label)

    def test_csr_numpy_views_share_payload(self):
        np = pytest.importorskip("numpy")
        frozen = freeze(small_graph())
        offsets, neighbors, label_ids = frozen.csr_numpy()
        assert isinstance(offsets, np.ndarray)
        assert offsets.tolist() == list(frozen.offsets)
        assert neighbors.tolist() == list(frozen.neighbor_indices)
        assert label_ids.tolist() == list(frozen.label_ids)
        # Memoised: repeated calls hand back the same views.
        again = frozen.csr_numpy()
        assert again[0] is offsets and again[1] is neighbors

    def test_label_members_np(self):
        np = pytest.importorskip("numpy")
        frozen = freeze(small_graph())
        members = frozen.label_members_np("A")
        assert isinstance(members, np.ndarray)
        assert members.tolist() == sorted(
            frozen.index_of(v) for v in frozen.vertices_with_label("A")
        )
        assert frozen.label_members_np("Z") is None
        assert frozen.label_members_np("A") is members  # memoised
