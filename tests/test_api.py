"""The stable facade (repro.api): mine / graph I/O / open_catalog."""

from __future__ import annotations

import pytest

import repro
from repro import mine_top_k_patterns, open_catalog
from repro.catalog import result_digest
from repro.graph import LabeledGraph, synthetic_single_graph


@pytest.fixture(scope="module")
def small_graph():
    return synthetic_single_graph(
        num_vertices=150, num_labels=20, average_degree=2.0,
        num_large_patterns=1, large_pattern_vertices=9, large_pattern_support=2,
        num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
        seed=11,
    ).graph


class TestMine:
    def test_matches_mine_top_k_patterns_bit_identically(self, small_graph):
        via_facade = repro.mine(small_graph, min_support=2, k=4, d_max=6, seed=0)
        via_engine = mine_top_k_patterns(small_graph, 2, k=4, d_max=6, seed=0)
        assert result_digest(via_facade) == result_digest(via_engine)

    def test_catalog_argument_stores_and_reserves(self, small_graph, tmp_path):
        store = tmp_path / "cat"
        first = repro.mine(small_graph, min_support=2, k=4, d_max=6, catalog=store)
        second = repro.mine(small_graph, min_support=2, k=4, d_max=6, catalog=store)
        assert second.cache_info["status"] == "hit"
        assert result_digest(first) == result_digest(second)

    def test_catalog_and_cache_conflict(self, small_graph, tmp_path):
        from repro import CachePolicy

        with pytest.raises(ValueError, match="not both"):
            repro.mine(
                small_graph, min_support=2, catalog=tmp_path,
                cache=CachePolicy.at(tmp_path),
            )


class TestGraphIO:
    def _sample(self):
        g = LabeledGraph()
        g.add_vertex(0, "A")
        g.add_vertex(1, "B")
        g.add_edge(0, 1)
        return g

    @pytest.mark.parametrize("name", ["g.json", "g.lg"])
    def test_round_trip(self, tmp_path, name):
        g = self._sample()
        path = tmp_path / name
        repro.save_graph(g, path)
        back = repro.load_graph(path)
        assert sorted(back.labels().values()) == ["A", "B"]
        assert back.num_edges == 1

    def test_multi_graph_file_is_rejected(self, tmp_path):
        from repro.graph import io as gio

        path = tmp_path / "two.lg"
        gio.write_lg([self._sample(), self._sample()], path)
        with pytest.raises(ValueError, match="2 graphs"):
            repro.load_graph(path)

    def test_json_shape_is_the_needle_wire_format(self, tmp_path):
        import json

        from repro.graph.io import graph_to_dict

        path = tmp_path / "g.json"
        repro.save_graph(self._sample(), path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload == graph_to_dict(self._sample())


class TestOpenCatalog:
    def test_handle_answers_like_the_query_layer(self, small_graph, tmp_path):
        store = tmp_path / "cat"
        repro.mine(small_graph, min_support=2, k=4, d_max=6, catalog=store)
        catalog = open_catalog(store)
        assert len(catalog.top_k(k=2)) == 2
        assert catalog.top_k(k=2) == catalog.query.top_k(2)
        (run,) = catalog.runs(kind="result")
        assert run["num_patterns"] >= 2 and "patterns" not in run
        record = catalog.top_k(k=1)[0]
        assert catalog.load_pattern(record).num_vertices == record.num_vertices

    def test_pattern_record_round_trip(self, small_graph, tmp_path):
        store = tmp_path / "cat"
        repro.mine(small_graph, min_support=2, k=2, d_max=6, catalog=store)
        record = open_catalog(store).top_k(k=1)[0]
        assert repro.PatternRecord.from_dict(record.to_dict()) == record

    def test_open_catalog_never_warns(self, tmp_path, recwarn):
        open_catalog(tmp_path / "cat").top_k(k=1)
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_facade_exported_at_top_level(self):
        for name in ("mine", "open_catalog", "load_graph", "save_graph", "Catalog"):
            assert name in repro.__all__
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_api_all_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name, None) is not None, name

    def test_no_deprecation_warning_on_import(self):
        # Importing the package must not trip the CatalogQuery shim.
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c", "import repro"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
