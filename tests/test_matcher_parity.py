"""Parity and unit tests for the candidate-domain subgraph matcher.

The contract being pinned:

* the domain matcher enumerates **exactly** the embedding sets of the
  pre-refactor reference (:mod:`repro.graph._matcher_reference`), across
  {dict, csr} targets × {induced, monomorphic} semantics × {anchored, free}
  queries (hypothesis, random labeled patterns and graphs);
* on the dict backend the free-search embedding *sequence* is byte-identical
  to the reference — domain filtering is pruning-only, which is what keeps
  mining result digests stable across the engine swap;
* dict-path and csr-path digests agree (:func:`repro.graph.matcher_digest`);
* domain filtering (label / degree / neighbor-signature) and the one-pass
  arc-consistency refinement prune exactly the vertices they claim to, and an
  empty domain answers the query with zero search;
* the anchored matching order is BFS-rooted at the anchor: connected patterns
  never fall back to whole-graph label-scan candidate pools mid-search
  (regression for the old anchor-in-front-of-free-order bug).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import (
    LabeledGraph,
    SubgraphMatcher,
    find_anchored_embeddings,
    freeze,
    matcher_digest,
)
from repro.graph._matcher_reference import ReferenceSubgraphMatcher
from repro.patterns import Embedding, Spider

LABELS = ["A", "B", "C"]


def build_graph(num_vertices, edges, labels):
    graph = LabeledGraph()
    for i in range(num_vertices):
        graph.add_vertex(i, labels[i % len(labels)])
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
@st.composite
def graph_and_pattern(draw):
    """A random labeled data graph plus a small pattern.

    Half the time the pattern is an induced subgraph of the data graph
    (embeddings guaranteed), half the time it is independent (often zero
    embeddings, exercising the domain short-circuits).
    """
    n = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    graph = LabeledGraph()
    # Scrambled ids so set layouts have nothing to do with index order.
    ids = rng.sample(range(10**6), n)
    for v in ids:
        graph.add_vertex(v, rng.choice(LABELS))
    for _ in range(rng.randint(0, 2 * n)):
        if n < 2:
            break
        u, v = rng.sample(ids, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    if draw(st.booleans()):
        k = rng.randint(1, min(4, n))
        pattern = graph.subgraph(rng.sample(ids, k)).relabeled()
    else:
        k = draw(st.integers(min_value=1, max_value=4))
        pattern = LabeledGraph()
        for i in range(k):
            pattern.add_vertex(i, rng.choice(LABELS))
        for i in range(k):
            for j in range(i + 1, k):
                if rng.random() < 0.5:
                    pattern.add_edge(i, j)
    return graph, pattern


PARITY_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------- #
# hypothesis parity: new engine vs pre-refactor reference
# --------------------------------------------------------------------------- #
class TestHypothesisParity:
    @PARITY_SETTINGS
    @given(data=graph_and_pattern(), induced=st.booleans())
    def test_free_search_matches_reference(self, data, induced):
        graph, pattern = data
        reference = ReferenceSubgraphMatcher(pattern, graph, induced=induced)
        expected = reference.find_embeddings()

        dict_found = SubgraphMatcher(pattern, graph, induced=induced).find_embeddings()
        # Pruning-only on the dict path: the exact reference *sequence*.
        assert dict_found == expected

        csr_found = SubgraphMatcher(
            pattern, freeze(graph), induced=induced
        ).find_embeddings()
        # The csr index-space path may enumerate in another order; the
        # embedding *set* (canonical digest) must be identical.
        assert matcher_digest(csr_found) == matcher_digest(expected)
        assert len(csr_found) == len(expected)

    @PARITY_SETTINGS
    @given(data=graph_and_pattern(), induced=st.booleans())
    def test_anchored_search_matches_reference(self, data, induced):
        graph, pattern = data
        p_anchor = next(iter(pattern.vertices()))
        label = pattern.label(p_anchor)
        expected = []
        for t_anchor in sorted(graph.vertices_with_label(label), key=repr):
            expected.extend(
                ReferenceSubgraphMatcher(pattern, graph, induced=induced).find_embeddings(
                    anchor=(p_anchor, t_anchor)
                )
            )
        for target in (graph, freeze(graph)):
            batch = [
                mapping
                for _, mapping in SubgraphMatcher(
                    pattern, target, induced=induced
                ).iter_anchored(p_anchor)
            ]
            assert matcher_digest(batch) == matcher_digest(expected)
            assert len(batch) == len(expected)

    @PARITY_SETTINGS
    @given(data=graph_and_pattern(), induced=st.booleans())
    def test_single_anchor_matches_reference(self, data, induced):
        graph, pattern = data
        p_anchor = next(iter(pattern.vertices()))
        label = pattern.label(p_anchor)
        anchors = sorted(graph.vertices_with_label(label), key=repr)[:3]
        for t_anchor in anchors:
            expected = ReferenceSubgraphMatcher(
                pattern, graph, induced=induced
            ).find_embeddings(anchor=(p_anchor, t_anchor))
            for target in (graph, freeze(graph)):
                found = SubgraphMatcher(pattern, target, induced=induced).find_embeddings(
                    anchor=(p_anchor, t_anchor)
                )
                assert matcher_digest(found) == matcher_digest(expected)


# --------------------------------------------------------------------------- #
# domain filtering units
# --------------------------------------------------------------------------- #
class TestDomainFiltering:
    def target_star(self):
        # 0(A) is a hub with A/B/B leaves; 4(A) is an isolated-ish A; 5(B) leaf.
        return build_graph(
            6,
            [(0, 1), (0, 2), (0, 3), (4, 5)],
            ["A", "A", "B", "B", "A", "B"],
        )

    def test_degree_filters_domain(self):
        target = self.target_star()
        pattern = LabeledGraph()
        for i, label in enumerate(["A", "A", "B", "B"]):
            pattern.add_vertex(i, label)
        for leaf in (1, 2, 3):
            pattern.add_edge(0, leaf)
        matcher = SubgraphMatcher(pattern, target)
        sizes = matcher.domain_sizes()
        # Only vertex 0 has degree >= 3, and it is the only A with that degree.
        assert sizes[0] == 1

    def test_neighbor_signature_filters_domain(self):
        target = self.target_star()
        # An A vertex with one B neighbor: hub 0 (has B neighbors) and 4 (B
        # neighbor via the 4-5 edge) qualify; leaf 1's only neighbor is an A.
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "B")
        pattern.add_edge(0, 1)
        matcher = SubgraphMatcher(pattern, target)
        sizes = matcher.domain_sizes()
        assert sizes[0] == 2  # vertices 0 and 4, never leaf 1

    def test_domains_agree_across_backends(self):
        target = self.target_star()
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "B")
        pattern.add_edge(0, 1)
        dict_sizes = SubgraphMatcher(pattern, target).domain_sizes()
        csr_sizes = SubgraphMatcher(pattern, freeze(target)).domain_sizes()
        assert dict_sizes == csr_sizes

    def test_empty_domain_short_circuits_before_search(self):
        # Pattern asks for an A with two B neighbors; no target vertex has that.
        target = build_graph(4, [(0, 1), (2, 3)], ["A", "B", "A", "B"])
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "B")
        pattern.add_vertex(2, "B")
        pattern.add_edge(0, 1)
        pattern.add_edge(0, 2)
        for graph in (target, freeze(target)):
            matcher = SubgraphMatcher(pattern, graph)
            assert matcher.find_embeddings() == []
            assert matcher.stats.empty_domain_cutoffs == 1
            assert matcher.stats.searches == 0
            assert matcher.stats.candidate_tests == 0
            # The verdict is memoised: asking again does not recount.
            assert not matcher.exists()
            assert matcher.stats.empty_domain_cutoffs == 1

    def test_arc_consistency_refines_unary_feasible_domains(self):
        # a1 passes every unary filter for pattern vertex 0 (an A with a B
        # neighbor), but its only B neighbor b1 has no C neighbor, so the AC
        # pass over the A-B pattern edge must prune a1, leaving only a2.
        target = build_graph(
            5,
            [(0, 1), (2, 3), (3, 4)],
            ["A", "B", "A", "B", "C"],
        )
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "B")
        pattern.add_vertex(2, "C")
        pattern.add_edge(0, 1)
        pattern.add_edge(1, 2)
        for graph in (target, freeze(target)):
            matcher = SubgraphMatcher(pattern, graph)
            sizes = matcher.domain_sizes()
            assert sizes == {0: 1, 1: 1, 2: 1}

    def test_arc_consistency_empties_mutually_infeasible_domains(self):
        # Unary domains are non-empty — x is an A with {A, B} neighbors,
        # y an A with {A, C} neighbors — but the two are not adjacent, so one
        # arc-consistency pass over the A-A pattern edge empties both domains
        # and the query must be answered with zero search.
        target = build_graph(
            6,
            [(0, 1), (0, 2), (3, 4), (3, 5)],
            ["A", "A", "B", "A", "A", "C"],
        )
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "A")
        pattern.add_vertex(2, "B")
        pattern.add_vertex(3, "C")
        pattern.add_edge(0, 1)
        pattern.add_edge(0, 2)
        pattern.add_edge(1, 3)
        for graph in (target, freeze(target)):
            matcher = SubgraphMatcher(pattern, graph)
            assert not matcher.exists()
            assert matcher.stats.empty_domain_cutoffs == 1
            assert matcher.stats.searches == 0
            assert matcher.stats.candidate_tests == 0


# --------------------------------------------------------------------------- #
# anchored order regression
# --------------------------------------------------------------------------- #
class TestAnchoredOrder:
    def fallback_case(self):
        """A pattern/graph pair where the old anchored order strands a vertex.

        Free order starts at the rare-label end (B); anchoring at the far A
        end used to keep that tail, leaving B with no mapped neighbor and
        forcing a whole-graph label scan.
        """
        rng = random.Random(3)
        graph = LabeledGraph()
        for i in range(40):
            graph.add_vertex(i, "A" if i < 32 else "B")
        # A ring of A's with B pendants, so the pattern occurs all over.
        for i in range(32):
            graph.add_edge(i, (i + 1) % 32)
        for b in range(32, 40):
            graph.add_edge(b, rng.randrange(32))
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "A")
        pattern.add_vertex(2, "B")
        pattern.add_edge(0, 1)
        pattern.add_edge(1, 2)
        return graph, pattern

    def test_reference_anchored_order_falls_back(self):
        graph, pattern = self.fallback_case()
        reference = ReferenceSubgraphMatcher(pattern, graph)
        for t_anchor in sorted(graph.vertices_with_label("A"), key=repr):
            reference.find_embeddings(anchor=(0, t_anchor))
        assert reference.pool_fallbacks > 0  # the bug being fixed

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_anchored_bfs_order_never_falls_back(self, backend):
        graph, pattern = self.fallback_case()
        target = freeze(graph) if backend == "csr" else graph
        matcher = SubgraphMatcher(pattern, target)
        found = [m for _, m in matcher.iter_anchored(0)]
        assert found  # the workload is non-trivial
        assert matcher.stats.pool_fallbacks == 0

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_free_search_never_falls_back_on_connected_patterns(self, backend):
        graph, pattern = self.fallback_case()
        target = freeze(graph) if backend == "csr" else graph
        matcher = SubgraphMatcher(pattern, target)
        matcher.find_embeddings()
        assert matcher.stats.pool_fallbacks == 0

    def test_disconnected_pattern_counts_component_starts_only(self):
        graph, _ = self.fallback_case()
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "B")  # second component => one expected fallback
        matcher = SubgraphMatcher(pattern, graph)
        matcher.find_embeddings(limit=5)
        assert matcher.stats.pool_fallbacks >= 1


# --------------------------------------------------------------------------- #
# batch anchored enumeration
# --------------------------------------------------------------------------- #
class TestAnchoredBatch:
    def test_batch_groups_by_anchor(self):
        graph = build_graph(6, [(0, 1), (0, 2), (3, 4), (3, 5)], ["A"] * 6)
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "A")
        pattern.add_edge(0, 1)
        grouped = find_anchored_embeddings(pattern, graph, 0)
        assert set(grouped) == {0, 1, 2, 3, 4, 5}
        assert all(m[0] == anchor for anchor, ms in grouped.items() for m in ms)

    def test_explicit_anchor_list_and_limit(self):
        graph = build_graph(6, [(0, 1), (0, 2), (3, 4), (3, 5)], ["A"] * 6)
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "A")
        pattern.add_edge(0, 1)
        grouped = find_anchored_embeddings(
            pattern, graph, 0, t_anchors=[0, 99], limit_per_anchor=1
        )
        assert set(grouped) == {0}  # unknown anchors are skipped quietly
        assert len(grouped[0]) == 1

    def test_infeasible_anchor_outside_domain_yields_nothing(self):
        graph = build_graph(3, [(0, 1)], ["A", "A", "A"])  # vertex 2 isolated
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "A")
        pattern.add_edge(0, 1)
        grouped = find_anchored_embeddings(pattern, graph, 0, t_anchors=[2])
        assert grouped == {}

    def test_spider_recompute_embeddings_is_head_anchored(self):
        graph = build_graph(6, [(0, 1), (0, 2), (3, 4), (3, 5)], ["A"] * 6)
        spider_graph = LabeledGraph()
        spider_graph.add_vertex(0, "A")
        spider_graph.add_vertex(1, "A")
        spider_graph.add_vertex(2, "A")
        spider_graph.add_edge(0, 1)
        spider_graph.add_edge(0, 2)
        spider = Spider(
            graph=spider_graph,
            embeddings=[Embedding.from_dict({0: 0, 1: 1, 2: 2})],
            head=0,
            radius=1,
        )
        spider.recompute_embeddings(graph)
        heads = {dict(e.mapping)[0] for e in spider.embeddings}
        assert heads == {0, 3}  # only the two hubs can host the head
        # The two leaf orderings per hub cover the same vertices through the
        # same edges, so they collapse to a single witness per hub.
        assert len(spider.embeddings) == 2

    def test_spider_recompute_keeps_edge_distinct_witnesses(self):
        # Head-anchored path H-1-2 on a triangle: {H:a,1:b,2:c} covers edges
        # {ab, bc} while {H:a,1:c,2:b} covers {ac, cb} — same vertices,
        # different edges, hence two distinct edge-disjoint witnesses that a
        # vertex-image dedup would silently drop (the PR-4 undercount class).
        graph = build_graph(3, [(0, 1), (0, 2), (1, 2)], ["A", "A", "A"])
        path = LabeledGraph()
        for i in range(3):
            path.add_vertex(i, "A")
        path.add_edge(0, 1)
        path.add_edge(1, 2)
        spider = Spider(
            graph=path,
            embeddings=[Embedding.from_dict({0: 0, 1: 1, 2: 2})],
            head=0,
            radius=2,
        )
        spider.recompute_embeddings(graph)
        per_head = {}
        for e in spider.embeddings:
            per_head.setdefault(dict(e.mapping)[0], []).append(e)
        assert set(per_head) == {0, 1, 2}
        # Each head keeps both edge images of the through-path.
        assert all(len(ms) == 2 for ms in per_head.values())


# --------------------------------------------------------------------------- #
# matcher_digest
# --------------------------------------------------------------------------- #
class TestMatcherDigest:
    def test_order_insensitive(self):
        a = [{0: 1, 1: 2}, {0: 2, 1: 3}]
        assert matcher_digest(a) == matcher_digest(list(reversed(a)))

    def test_distinguishes_different_sets(self):
        assert matcher_digest([{0: 1}]) != matcher_digest([{0: 2}])
        assert matcher_digest([]) != matcher_digest([{0: 1}])

    def test_key_order_inside_mapping_is_canonicalised(self):
        forward = {0: 5, 1: 6}
        backward = {1: 6, 0: 5}
        assert matcher_digest([forward]) == matcher_digest([backward])
