"""Unit tests for MiningResult / MiningStatistics."""

from __future__ import annotations

import time

import pytest

from repro.core import MiningResult, MiningStatistics
from repro.core.results import stage_timer
from repro.patterns import Pattern
from tests.conftest import build_path, build_star, build_triangle


def make_result():
    patterns = [
        Pattern(graph=build_star("H", ("A", "B", "C", "D"))),
        Pattern(graph=build_triangle()),
        Pattern(graph=build_path(["A", "B"])),
    ]
    return MiningResult(algorithm="Test", patterns=patterns, runtime_seconds=1.25)


class TestMiningResult:
    def test_len_and_iter(self):
        result = make_result()
        assert len(result) == 3
        assert len(list(result)) == 3

    def test_largest_pattern(self):
        result = make_result()
        assert result.largest_pattern.num_vertices == 5
        assert result.largest_size_vertices == 5
        assert result.largest_size_edges == 4

    def test_largest_of_empty_result(self):
        empty = MiningResult(algorithm="Empty", patterns=[])
        assert empty.largest_pattern is None
        assert empty.largest_size_vertices == 0
        assert empty.largest_size_edges == 0

    def test_size_distribution(self):
        result = make_result()
        assert result.size_distribution() == {2: 1, 3: 1, 5: 1}
        assert result.size_distribution(by="edges") == {1: 1, 3: 1, 4: 1}

    def test_sizes_sorted(self):
        assert make_result().sizes() == [5, 3, 2]
        assert make_result().sizes(by="edges") == [4, 3, 1]

    def test_top(self):
        top = make_result().top(2)
        assert [p.num_vertices for p in top] == [5, 3]

    def test_summary_mentions_algorithm_and_runtime(self):
        text = make_result().summary()
        assert "Test" in text
        assert "1.25" in text


class TestMiningStatistics:
    def test_defaults(self):
        stats = MiningStatistics()
        assert stats.num_spiders == 0
        assert stats.stage_durations == {}

    def test_record_stage_accumulates(self):
        stats = MiningStatistics()
        stats.record_stage("stage1", 1.0)
        stats.record_stage("stage1", 0.5)
        assert stats.stage_durations["stage1"] == pytest.approx(1.5)

    def test_stage_timer_context_manager(self):
        stats = MiningStatistics()
        with stage_timer(stats, "work"):
            time.sleep(0.01)
        assert stats.stage_durations["work"] >= 0.01

    def test_stage_timer_records_on_exception(self):
        stats = MiningStatistics()
        with pytest.raises(RuntimeError):
            with stage_timer(stats, "boom"):
                raise RuntimeError("x")
        assert "boom" in stats.stage_durations
