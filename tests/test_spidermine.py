"""Integration-level tests for the full SpiderMine algorithm."""

from __future__ import annotations


from repro import SpiderMine, SpiderMineConfig, mine_top_k_patterns
from repro.analysis import recovery_rate
from repro.graph import LabeledGraph, diameter, synthetic_single_graph
from repro.patterns import SupportMeasure, compute_support


class TestResultContract:
    def test_returns_at_most_k(self, spidermine_result):
        assert len(spidermine_result.patterns) <= 5

    def test_patterns_sorted_largest_first(self, spidermine_result):
        sizes = [p.num_vertices for p in spidermine_result.patterns]
        assert sizes == sorted(sizes, reverse=True)

    def test_patterns_meet_support(self, spidermine_result):
        for pattern in spidermine_result.patterns:
            assert compute_support(pattern, SupportMeasure.HARMFUL_OVERLAP) >= 2

    def test_patterns_respect_diameter_bound(self, spidermine_result):
        for pattern in spidermine_result.patterns:
            assert diameter(pattern.graph) <= 6

    def test_embeddings_are_valid(self, spidermine_result, planted_dataset):
        for pattern in spidermine_result.patterns:
            assert pattern.verify_embeddings(planted_dataset.graph)

    def test_planted_patterns_recovered(self, spidermine_result, planted_dataset):
        rate = recovery_rate(spidermine_result, planted_dataset.planted_large_sizes, tolerance=2)
        assert rate >= 0.5

    def test_statistics_populated(self, spidermine_result):
        stats = spidermine_result.statistics
        assert stats.num_spiders > 0
        assert stats.num_seeds > 0
        assert "stage1_spiders" in stats.stage_durations
        assert "stage2_identification" in stats.stage_durations
        assert "stage3_recovery" in stats.stage_durations

    def test_parameters_recorded(self, spidermine_result):
        params = spidermine_result.parameters
        assert params["min_support"] == 2
        assert params["k"] == 5
        assert params["support_measure"] == "harmful_overlap"

    def test_runtime_positive(self, spidermine_result):
        assert spidermine_result.runtime_seconds > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        data = synthetic_single_graph(
            num_vertices=80, num_labels=20, average_degree=2.0,
            num_large_patterns=1, large_pattern_vertices=8, large_pattern_support=2,
            num_small_patterns=1, small_pattern_vertices=3, small_pattern_support=2,
            seed=9, max_pattern_diameter=6,
        )
        first = mine_top_k_patterns(data.graph, min_support=2, k=3, d_max=6, seed=4)
        second = mine_top_k_patterns(data.graph, min_support=2, k=3, d_max=6, seed=4)
        assert [p.code for p in first.patterns] == [p.code for p in second.patterns]


class TestSmallInputs:
    def test_empty_graph(self):
        result = mine_top_k_patterns(LabeledGraph(), min_support=1, k=3)
        assert result.patterns == []

    def test_single_edge_graph(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        graph.add_vertex(1, "B")
        graph.add_edge(0, 1)
        result = mine_top_k_patterns(graph, min_support=1, k=3, d_max=2)
        assert len(result.patterns) >= 1

    def test_infrequent_everything(self):
        graph = LabeledGraph()
        for i, label in enumerate("ABCDEF"):
            graph.add_vertex(i, label)
        for i in range(5):
            graph.add_edge(i, i + 1)
        result = mine_top_k_patterns(graph, min_support=3, k=3)
        # No label repeats three times, so nothing can be frequent.
        assert result.patterns == []

    def test_two_disjoint_triangles(self, two_copy_graph):
        result = mine_top_k_patterns(two_copy_graph, min_support=2, k=2, d_max=2)
        assert result.largest_size_vertices == 3
        assert result.patterns[0].num_edges == 3


class TestConfigurationEffects:
    def test_k_limits_output(self, planted_dataset):
        config = SpiderMineConfig(min_support=2, k=1, d_max=6, seed=0)
        result = SpiderMine(planted_dataset.graph, config).mine()
        assert len(result.patterns) <= 1

    def test_dmax_filters_large_diameter(self, two_copy_graph):
        result = mine_top_k_patterns(two_copy_graph, min_support=2, k=3, d_max=1)
        for pattern in result.patterns:
            assert diameter(pattern.graph) <= 1

    def test_min_vertices_reported(self, two_copy_graph):
        result = mine_top_k_patterns(
            two_copy_graph, min_support=2, k=5, d_max=2, min_vertices_reported=3
        )
        for pattern in result.patterns:
            assert pattern.num_vertices >= 3

    def test_edge_disjoint_measure_runs(self, two_copy_graph):
        result = mine_top_k_patterns(
            two_copy_graph, min_support=2, k=2, d_max=2,
            support_measure=SupportMeasure.EDGE_DISJOINT,
        )
        assert result.parameters["support_measure"] == "edge_disjoint"

    def test_seed_plan_recorded(self, planted_dataset):
        config = SpiderMineConfig(min_support=2, k=3, d_max=6, seed=1, v_min=10)
        miner = SpiderMine(planted_dataset.graph, config)
        miner.mine()
        assert miner.seed_plan is not None
        assert miner.seed_plan.v_min == 10
        assert miner.seed_plan.num_draws >= 2

    def test_max_seed_count_override(self, two_copy_graph):
        result = mine_top_k_patterns(
            two_copy_graph, min_support=2, k=2, d_max=2, max_seed_count=2
        )
        assert result.statistics.num_seeds <= 2
