"""Unit tests for the pattern-lattice helpers (containment, maximality, closedness)."""

from __future__ import annotations


from repro.patterns import (
    Embedding,
    Pattern,
    filter_maximal_patterns,
    group_by_size,
    is_sub_pattern,
    same_support_set,
    size_distribution,
)
from tests.conftest import build_path, build_star, build_triangle


class TestContainment:
    def test_edge_inside_triangle(self):
        edge = Pattern(graph=build_path(["A", "B"]))
        triangle = Pattern(graph=build_triangle())
        assert is_sub_pattern(edge, triangle)
        assert not is_sub_pattern(triangle, edge)

    def test_label_mismatch(self):
        edge = Pattern(graph=build_path(["A", "Z"]))
        triangle = Pattern(graph=build_triangle())
        assert not is_sub_pattern(edge, triangle)

    def test_pattern_contains_itself(self):
        triangle = Pattern(graph=build_triangle())
        assert is_sub_pattern(triangle, triangle)


class TestMaximality:
    def test_filter_maximal(self):
        edge = Pattern(graph=build_path(["A", "B"]))
        path3 = Pattern(graph=build_path(["A", "B", "C"]))
        triangle = Pattern(graph=build_triangle())
        maximal = filter_maximal_patterns([edge, path3, triangle])
        codes = {p.code for p in maximal}
        assert triangle.code in codes
        assert edge.code not in codes

    def test_incomparable_patterns_all_kept(self):
        a = Pattern(graph=build_path(["A", "A"]))
        b = Pattern(graph=build_path(["B", "B"]))
        maximal = filter_maximal_patterns([a, b])
        assert len(maximal) == 2

    def test_empty_input(self):
        assert filter_maximal_patterns([]) == []


class TestClosedness:
    def test_same_support_set_true(self):
        parent = Pattern(graph=build_path(["A", "B"]))
        parent.add_embedding(Embedding.from_dict({0: 1, 1: 2}))
        child = Pattern(graph=build_path(["A", "B", "C"]))
        child.add_embedding(Embedding.from_dict({0: 1, 1: 2, 2: 3}))
        assert same_support_set(parent, child)

    def test_same_support_set_false_when_parent_has_more(self):
        parent = Pattern(graph=build_path(["A", "B"]))
        parent.add_embedding(Embedding.from_dict({0: 1, 1: 2}))
        parent.add_embedding(Embedding.from_dict({0: 5, 1: 6}))
        child = Pattern(graph=build_path(["A", "B", "C"]))
        child.add_embedding(Embedding.from_dict({0: 1, 1: 2, 2: 3}))
        assert not same_support_set(parent, child)

    def test_same_support_set_false_disjoint(self):
        parent = Pattern(graph=build_path(["A", "B"]))
        parent.add_embedding(Embedding.from_dict({0: 1, 1: 2}))
        child = Pattern(graph=build_path(["A", "B", "C"]))
        child.add_embedding(Embedding.from_dict({0: 7, 1: 8, 2: 9}))
        assert not same_support_set(parent, child)


class TestDistributions:
    def make_patterns(self):
        return [
            Pattern(graph=build_path(["A", "B"])),
            Pattern(graph=build_path(["C", "D"])),
            Pattern(graph=build_triangle()),
            Pattern(graph=build_star("H", ("A", "B", "C", "D"))),
        ]

    def test_group_by_vertices(self):
        groups = group_by_size(self.make_patterns(), by="vertices")
        assert {size: len(ps) for size, ps in groups.items()} == {2: 2, 3: 1, 5: 1}

    def test_group_by_edges(self):
        groups = group_by_size(self.make_patterns(), by="edges")
        assert set(groups) == {1, 3, 4}

    def test_size_distribution(self):
        assert size_distribution(self.make_patterns()) == {2: 2, 3: 1, 5: 1}

    def test_size_distribution_empty(self):
        assert size_distribution([]) == {}
