"""Unit tests for Stage I: mining all frequent r-spiders."""

from __future__ import annotations


from repro.core import SpiderMineConfig, SpiderMiner, build_spider_index, mine_spiders
from repro.graph import LabeledGraph, is_r_bounded_from
from repro.patterns import SupportMeasure, compute_support
from tests.conftest import build_path


def two_stars_graph() -> LabeledGraph:
    """Two copies of the star H-(A, B, C) plus one extra H-A edge elsewhere."""
    graph = LabeledGraph()
    for base in (0, 10):
        graph.add_vertex(base, "H")
        for offset, label in enumerate(("A", "B", "C"), start=1):
            graph.add_vertex(base + offset, label)
            graph.add_edge(base, base + offset)
    graph.add_vertex(20, "H")
    graph.add_vertex(21, "A")
    graph.add_edge(20, 21)
    return graph


class TestSpiderMining:
    def test_single_vertex_spiders_for_frequent_labels(self):
        graph = two_stars_graph()
        spiders = mine_spiders(graph, min_support=2, radius=1, max_spider_size=1)
        labels = {s.head_label for s in spiders}
        assert labels == {"H", "A", "B", "C"}
        assert all(s.num_vertices == 1 for s in spiders)

    def test_full_star_found(self):
        graph = two_stars_graph()
        spiders = mine_spiders(graph, min_support=2, radius=1, max_spider_size=4)
        full_stars = [s for s in spiders if s.num_vertices == 4 and s.head_label == "H"]
        assert full_stars, "the H-(A,B,C) star occurs twice and must be mined"
        star = full_stars[0]
        assert compute_support(star, SupportMeasure.HARMFUL_OVERLAP) >= 2

    def test_infrequent_structures_excluded(self):
        graph = two_stars_graph()
        graph.add_vertex(30, "RARE")
        graph.add_vertex(31, "A")
        graph.add_edge(30, 31)
        spiders = mine_spiders(graph, min_support=2, radius=1)
        assert all(s.head_label != "RARE" for s in spiders)
        assert all("RARE" not in s.graph.label_set() for s in spiders)

    def test_all_spiders_r_bounded_from_head(self):
        graph = two_stars_graph()
        for radius in (1, 2):
            spiders = mine_spiders(graph, min_support=2, radius=radius, max_spider_size=5)
            for spider in spiders:
                assert is_r_bounded_from(spider.graph, spider.head, radius)

    def test_all_spiders_meet_support(self):
        graph = two_stars_graph()
        spiders = mine_spiders(graph, min_support=2, radius=1)
        for spider in spiders:
            assert compute_support(spider, SupportMeasure.HARMFUL_OVERLAP) >= 2

    def test_embeddings_valid(self):
        graph = two_stars_graph()
        spiders = mine_spiders(graph, min_support=2, radius=1)
        for spider in spiders:
            assert spider.verify_embeddings(graph)

    def test_spider_codes_unique(self):
        graph = two_stars_graph()
        spiders = mine_spiders(graph, min_support=2, radius=1)
        codes = [s.spider_code() for s in spiders]
        assert len(codes) == len(set(codes))

    def test_radius_two_reaches_farther(self):
        path = build_path(["A", "B", "A", "B", "A"])
        r1 = mine_spiders(path, min_support=2, radius=1, max_spider_size=5)
        r2 = mine_spiders(path, min_support=2, radius=2, max_spider_size=5)
        assert max(s.num_vertices for s in r2) >= max(s.num_vertices for s in r1)

    def test_max_spider_size_respected(self):
        graph = two_stars_graph()
        spiders = mine_spiders(graph, min_support=2, radius=1, max_spider_size=2)
        assert all(s.num_vertices <= 2 for s in spiders)

    def test_max_spiders_cap(self):
        graph = two_stars_graph()
        spiders = mine_spiders(graph, min_support=2, radius=1, max_spiders=3)
        assert len(spiders) <= 3

    def test_closing_edges_found_in_triangle_pair(self, two_copy_graph):
        spiders = mine_spiders(two_copy_graph, min_support=2, radius=1, max_spider_size=3)
        triangle_spiders = [s for s in spiders if s.num_edges == 3]
        assert triangle_spiders, "the two planted triangles must yield a triangle spider"

    def test_higher_support_threshold_prunes(self):
        graph = two_stars_graph()
        loose = mine_spiders(graph, min_support=2, radius=1)
        strict = mine_spiders(graph, min_support=3, radius=1)
        assert len(strict) < len(loose)

    def test_empty_graph(self):
        assert mine_spiders(LabeledGraph(), min_support=1) == []


class TestSpiderIndex:
    def test_index_by_head_image(self):
        graph = two_stars_graph()
        spiders = mine_spiders(graph, min_support=2, radius=1)
        index = build_spider_index(spiders)
        assert 0 in index and 10 in index
        # Every indexed entry's embedding really heads at the index key.
        for head_image, entries in index.items():
            for spider, embedding in entries:
                assert dict(embedding.mapping)[spider.head] == head_image

    def test_hub_vertices_have_more_spiders(self):
        graph = two_stars_graph()
        spiders = mine_spiders(graph, min_support=2, radius=1)
        index = build_spider_index(spiders)
        hub_count = len(index.get(0, []))
        leaf_count = len(index.get(1, []))
        assert hub_count > leaf_count


class TestSpiderMinerConfigIntegration:
    def test_miner_uses_config(self):
        graph = two_stars_graph()
        config = SpiderMineConfig(min_support=2, radius=1, max_spider_size=3)
        spiders = SpiderMiner(graph, config).mine()
        assert all(s.num_vertices <= 3 for s in spiders)

    def test_edge_disjoint_measure(self):
        graph = build_path(["A", "A", "A", "A"])
        config = SpiderMineConfig(
            min_support=2, radius=1, support_measure=SupportMeasure.EDGE_DISJOINT
        )
        spiders = SpiderMiner(graph, config).mine()
        edge_spiders = [s for s in spiders if s.num_edges == 1]
        assert edge_spiders  # three A-A edges, at least two edge-disjoint
