"""Serial == parallel determinism guarantee of the mining engine.

The contract under test: for a fixed seed, mining with any
:class:`ExecutionPolicy` — any worker count, chunk size or partition
strategy, on either graph backend — returns results *bit-identical* to the
serial run: same spiders, same canonical codes, same embeddings, same order.
"""

from __future__ import annotations

import pytest

from repro.core import SpiderMine, SpiderMineConfig, SpiderMiner, merge_unit_levels
from repro.graph import freeze
from repro.parallel import ExecutionPolicy
from repro.parallel.driver import partition_units
from tests.conftest import build_path


def spider_fingerprint(spiders):
    """Everything observable about a Stage-I result, order included."""
    return [
        (s.spider_code(), s.head, s.radius, tuple(s.embeddings)) for s in spiders
    ]


def pattern_fingerprint(result):
    """Everything observable about a full-pipeline result, order included."""
    return [
        (p.code, p.support, p.num_vertices, p.num_edges, tuple(p.embeddings))
        for p in result.patterns
    ]


@pytest.fixture(scope="module")
def data_graph():
    from repro.graph import synthetic_single_graph

    return synthetic_single_graph(
        num_vertices=120,
        num_labels=30,
        average_degree=2.0,
        num_large_patterns=2,
        large_pattern_vertices=10,
        large_pattern_support=2,
        num_small_patterns=2,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=5,
        max_pattern_diameter=6,
    ).graph


@pytest.fixture(scope="module")
def serial_spiders(data_graph):
    return SpiderMiner(data_graph, SpiderMineConfig(min_support=2)).mine()


class TestStageOneParity:
    @pytest.mark.parametrize("backend", ["dict", "csr"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_match_serial(self, data_graph, serial_spiders, backend, workers):
        graph = freeze(data_graph) if backend == "csr" else data_graph
        config = SpiderMineConfig(
            min_support=2, execution=ExecutionPolicy.process_pool(workers)
        )
        parallel = SpiderMiner(graph, config).mine()
        assert spider_fingerprint(parallel) == spider_fingerprint(serial_spiders)

    @pytest.mark.parametrize("partition", ["contiguous", "interleaved"])
    def test_partition_strategy_is_invisible(self, data_graph, serial_spiders, partition):
        config = SpiderMineConfig(
            min_support=2,
            execution=ExecutionPolicy.process_pool(2, partition=partition, chunk_size=1),
        )
        parallel = SpiderMiner(data_graph, config).mine()
        assert spider_fingerprint(parallel) == spider_fingerprint(serial_spiders)

    def test_max_spiders_truncation_matches(self, data_graph):
        """The cap cuts the canonical merge at the same spider as the serial loop."""
        for cap in (3, 9, 25):
            serial = SpiderMiner(
                data_graph, SpiderMineConfig(min_support=2, max_spiders=cap)
            ).mine()
            parallel = SpiderMiner(
                data_graph,
                SpiderMineConfig(
                    min_support=2,
                    max_spiders=cap,
                    execution=ExecutionPolicy.process_pool(3, chunk_size=1),
                ),
            ).mine()
            assert len(parallel) <= cap
            assert spider_fingerprint(parallel) == spider_fingerprint(serial)

    def test_radius_two_parity(self, data_graph):
        serial = SpiderMiner(
            data_graph, SpiderMineConfig(min_support=2, radius=2, max_spider_size=4)
        ).mine()
        parallel = SpiderMiner(
            data_graph,
            SpiderMineConfig(
                min_support=2,
                radius=2,
                max_spider_size=4,
                execution=ExecutionPolicy.process_pool(2),
            ),
        ).mine()
        assert spider_fingerprint(parallel) == spider_fingerprint(serial)

    def test_spawn_start_method_parity(self, data_graph, serial_spiders):
        """Integer vertex ids hash identically in every process, so even the
        spawn start method (fresh interpreter, fresh string-hash seed) is
        bit-identical."""
        config = SpiderMineConfig(
            min_support=2,
            execution=ExecutionPolicy.process_pool(2, start_method="spawn"),
        )
        parallel = SpiderMiner(data_graph, config).mine()
        assert spider_fingerprint(parallel) == spider_fingerprint(serial_spiders)


class TestFullPipelineParity:
    def test_top_k_patterns_identical(self, data_graph):
        """Stage I feeds Stages II/III, so end-to-end top-K results inherit
        the Stage-I guarantee on both backends."""
        serial = SpiderMine(
            data_graph, SpiderMineConfig(min_support=2, k=5, d_max=6, seed=0)
        ).mine()
        for backend in ("dict", "csr"):
            graph = freeze(data_graph) if backend == "csr" else data_graph
            config = SpiderMineConfig(
                min_support=2,
                k=5,
                d_max=6,
                seed=0,
                execution=ExecutionPolicy.process_pool(4),
            )
            parallel = SpiderMine(graph, config).mine()
            assert pattern_fingerprint(parallel) == pattern_fingerprint(serial)
            assert parallel.parameters["workers"] == 4
            assert parallel.parameters["execution_mode"] == "process"


class TestMergeAndPartitionMachinery:
    def test_partition_contiguous_covers_all_units(self):
        policy = ExecutionPolicy.process_pool(3, chunk_size=4)
        chunks = partition_units(10, policy)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_partition_interleaved_covers_all_units(self):
        policy = ExecutionPolicy.process_pool(3, chunk_size=4, partition="interleaved")
        chunks = partition_units(10, policy)
        assert sorted(unit for chunk in chunks for unit in chunk) == list(range(10))
        assert len(chunks) == 3

    def test_partition_empty(self):
        assert partition_units(0, ExecutionPolicy.process_pool(4)) == []

    def test_merge_is_level_major_unit_minor(self):
        unit_levels = {
            1: [["b0"], ["b1a", "b1b"]],
            0: [["a0"], ["a1"], ["a2"]],
        }
        merged = merge_unit_levels(unit_levels, max_spiders=100)
        assert merged == ["a0", "b0", "a1", "b1a", "b1b", "a2"]

    def test_merge_truncates_at_cap(self):
        unit_levels = {0: [["a0"], ["a1"]], 1: [["b0"], ["b1"]]}
        assert merge_unit_levels(unit_levels, max_spiders=3) == ["a0", "b0", "a1"]
        assert merge_unit_levels(unit_levels, max_spiders=0) == []

    def test_serial_mine_is_unit_merge(self, data_graph):
        """mine() over units is exactly mine_unit per unit + canonical merge."""
        miner = SpiderMiner(data_graph, SpiderMineConfig(min_support=2))
        unit_levels = {
            unit: miner.mine_unit(unit) for unit in range(len(miner.unit_labels()))
        }
        rebuilt = merge_unit_levels(unit_levels, miner.config.max_spiders)
        assert spider_fingerprint(rebuilt) == spider_fingerprint(miner.mine())

    def test_unit_labels_are_canonical_and_frequent(self, data_graph):
        miner = SpiderMiner(data_graph, SpiderMineConfig(min_support=2))
        labels = miner.unit_labels()
        assert labels == sorted(labels, key=repr)
        for label in labels:
            assert len(data_graph.vertices_with_label(label)) >= 2


class TestSmallGraphEdgeCases:
    def test_parallel_on_tiny_graph(self):
        graph = build_path(["A", "B", "A", "B", "A"])
        serial = SpiderMiner(graph, SpiderMineConfig(min_support=2)).mine()
        parallel = SpiderMiner(
            graph,
            SpiderMineConfig(min_support=2, execution=ExecutionPolicy.process_pool(4)),
        ).mine()
        assert spider_fingerprint(parallel) == spider_fingerprint(serial)

    def test_parallel_on_graph_with_no_frequent_labels(self):
        graph = build_path(["A", "B", "C"])
        config = SpiderMineConfig(
            min_support=2, execution=ExecutionPolicy.process_pool(4)
        )
        assert SpiderMiner(graph, config).mine() == []

    def test_parallel_on_empty_graph(self):
        from repro.graph import LabeledGraph

        config = SpiderMineConfig(
            min_support=1, execution=ExecutionPolicy.process_pool(2)
        )
        assert SpiderMiner(LabeledGraph(), config).mine() == []
