"""The content-addressed run cache and its bit-identity guarantee.

The acceptance contract of the catalog subsystem: a cache hit re-serves a
result **bit-identical** to a fresh serial mine (same result digest), for
both graph backends and multiple worker counts; changing the graph or any
result-affecting config field invalidates the entry.
"""

from __future__ import annotations

import pytest

from repro import (
    CachePolicy,
    ExecutionPolicy,
    SpiderMine,
    SpiderMineConfig,
)
from repro.catalog import CatalogStore, RunCache
from repro.core.spider_miner import SpiderMiner
from repro.graph import LabeledGraph, freeze, synthetic_single_graph


def mining_graph(seed: int = 5) -> LabeledGraph:
    return synthetic_single_graph(
        num_vertices=200, num_labels=30, average_degree=2.0,
        num_large_patterns=2, large_pattern_vertices=10, large_pattern_support=2,
        num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
        seed=seed,
    ).graph


def config(tmp_path=None, mode="readwrite", **overrides) -> SpiderMineConfig:
    cache = CachePolicy.off() if tmp_path is None else CachePolicy.at(tmp_path, mode)
    defaults = dict(min_support=2, k=4, d_max=6, seed=0)
    defaults.update(overrides)
    return SpiderMineConfig(cache=cache, **defaults)


@pytest.fixture(scope="module")
def graph() -> LabeledGraph:
    return mining_graph()


@pytest.fixture(scope="module")
def fresh_serial_digest(graph) -> str:
    """The reference digest: an uncached, serial, dict-backend mine."""
    return SpiderMine(graph, config()).mine().digest()


class TestBitIdenticalReServe:
    def test_cold_then_warm_matches_fresh_serial(self, graph, fresh_serial_digest, tmp_path):
        cold = SpiderMine(graph, config(tmp_path)).mine()
        assert cold.cache_info["status"] == "stored"
        assert cold.digest() == fresh_serial_digest

        warm = SpiderMine(graph, config(tmp_path)).mine()
        assert warm.cache_info["status"] == "hit"
        assert warm.digest() == fresh_serial_digest

    def test_warm_hit_does_not_re_mine(self, graph, tmp_path, monkeypatch):
        SpiderMine(graph, config(tmp_path)).mine()

        def boom(self, run_cache=None):
            raise AssertionError("cache hit must not re-mine")

        monkeypatch.setattr(SpiderMine, "_mine_fresh", boom)
        served = SpiderMine(graph, config(tmp_path)).mine()
        assert served.cache_info["status"] == "hit"

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_insert_serves_serial_lookup(
        self, graph, fresh_serial_digest, tmp_path, workers
    ):
        """Worker count is key-neutral: a parallel mine fills the cache for
        every later run of the same (graph, config), serial included."""
        parallel_config = config(
            tmp_path, execution=ExecutionPolicy.process_pool(workers)
        )
        inserted = SpiderMine(freeze(graph), parallel_config).mine()
        assert inserted.cache_info["status"] == "stored"
        assert inserted.digest() == fresh_serial_digest

        served = SpiderMine(graph, config(tmp_path)).mine()
        assert served.cache_info["status"] == "hit"
        assert served.digest() == fresh_serial_digest

    def test_backend_is_key_neutral(self, graph, fresh_serial_digest, tmp_path):
        stored = SpiderMine(freeze(graph), config(tmp_path)).mine()
        assert stored.cache_info["status"] == "stored"
        served = SpiderMine(graph, config(tmp_path)).mine()
        assert served.cache_info["status"] == "hit"
        assert served.digest() == fresh_serial_digest

    def test_served_result_is_fully_materialised(self, graph, tmp_path):
        original = SpiderMine(graph, config(tmp_path)).mine()
        served = SpiderMine(graph, config(tmp_path)).mine()
        assert len(served.patterns) == len(original.patterns)
        for mine_p, served_p in zip(original.patterns, served.patterns):
            assert served_p.graph == mine_p.graph
            assert served_p.embeddings == mine_p.embeddings
            assert served_p.code == mine_p.code
        assert served.parameters == original.parameters
        assert served.statistics.to_dict() == original.statistics.to_dict()


class TestInvalidation:
    def test_config_change_misses(self, graph, tmp_path):
        SpiderMine(graph, config(tmp_path)).mine()
        changed = SpiderMine(graph, config(tmp_path, min_support=3)).mine()
        assert changed.cache_info["status"] == "stored"  # miss → mined → stored

    def test_graph_change_misses(self, graph, tmp_path):
        SpiderMine(graph, config(tmp_path)).mine()
        other = mining_graph(seed=6)
        changed = SpiderMine(other, config(tmp_path)).mine()
        assert changed.cache_info["status"] == "stored"

    def test_code_version_fences_entries(self, graph, tmp_path, monkeypatch):
        SpiderMine(graph, config(tmp_path)).mine()
        monkeypatch.setattr("repro.__version__", "999.0.0")
        rerun = SpiderMine(graph, config(tmp_path)).mine()
        assert rerun.cache_info["status"] == "stored"


class TestModes:
    def test_readonly_serves_but_never_writes(self, graph, tmp_path):
        first = SpiderMine(graph, config(tmp_path, mode="readonly")).mine()
        assert first.cache_info["status"] == "miss"
        assert CatalogStore(tmp_path).list_runs() == []

        SpiderMine(graph, config(tmp_path)).mine()  # readwrite fills it
        served = SpiderMine(graph, config(tmp_path, mode="readonly")).mine()
        assert served.cache_info["status"] == "hit"

    def test_refresh_re_mines_and_overwrites(self, graph, tmp_path, monkeypatch):
        SpiderMine(graph, config(tmp_path)).mine()

        def boom(self, run_cache=None):
            raise AssertionError("refresh must re-mine")

        monkeypatch.setattr(SpiderMine, "_mine_fresh", boom)
        with pytest.raises(AssertionError, match="refresh must re-mine"):
            SpiderMine(graph, config(tmp_path, mode="refresh")).mine()

    def test_disabled_cache_never_touches_disk(self, graph, tmp_path):
        result = SpiderMine(graph, config()).mine()
        assert result.cache_info is None
        assert not (tmp_path / "catalog.json").exists()


class TestSpiderCache:
    def test_stage1_hit_skips_search(self, graph, tmp_path, monkeypatch):
        miner_config = config(tmp_path)
        first = SpiderMiner(graph, miner_config).mine()

        def boom(self, unit):
            raise AssertionError("spider cache hit must not search")

        monkeypatch.setattr(SpiderMiner, "iter_unit_levels", boom)
        served = SpiderMiner(graph, miner_config).mine()
        assert [s.spider_code() for s in served] == [s.spider_code() for s in first]
        assert [s.embeddings for s in served] == [s.embeddings for s in first]

    def test_cached_spiders_feed_identical_full_mine(
        self, graph, fresh_serial_digest, tmp_path
    ):
        """A full-result miss that reuses cached Stage-I spiders must still
        produce the reference output (k differs → result key differs, but the
        stage-1 key matches)."""
        SpiderMine(graph, config(tmp_path, k=2)).mine()  # fills the spiders run
        assert CatalogStore(tmp_path).list_runs(kind="spiders")
        result = SpiderMine(graph, config(tmp_path, k=4)).mine()
        assert result.cache_info["status"] == "stored"
        assert result.digest() == fresh_serial_digest


class TestBrokenObjectsDegradeToMiss:
    def test_truncated_result_object_is_a_miss_and_self_heals(self, graph, tmp_path):
        SpiderMine(graph, config(tmp_path)).mine()
        store = CatalogStore(tmp_path)
        run_id = store.list_runs(kind="result")[0]["run_id"]
        path = store.runs_dir / f"{run_id}.json"
        path.write_text('{"truncated', encoding="utf-8")

        healed = SpiderMine(graph, config(tmp_path)).mine()
        # Broken object → miss → re-mine → readwrite overwrites it...
        assert healed.cache_info["status"] == "stored"
        # ...and the next lookup serves cleanly again.
        served = SpiderMine(graph, config(tmp_path)).mine()
        assert served.cache_info["status"] == "hit"
        assert served.digest() == healed.digest()

    def test_newer_format_version_is_a_miss_not_a_crash(self, graph, tmp_path):
        import json as json_module

        SpiderMine(graph, config(tmp_path)).mine()
        store = CatalogStore(tmp_path)
        run_id = store.list_runs(kind="result")[0]["run_id"]
        path = store.runs_dir / f"{run_id}.json"
        record = json_module.loads(path.read_text(encoding="utf-8"))
        record["result"]["format"] = 999
        path.write_text(json_module.dumps(record), encoding="utf-8")

        result = SpiderMine(graph, config(tmp_path)).mine()
        assert result.cache_info["status"] == "stored"


class TestGraphDigestMemo:
    def test_distinct_graphs_distinct_digests_one_cache(self, graph, tmp_path):
        cache = RunCache(tmp_path)
        cfg = config()
        other = mining_graph(seed=7)
        key_a = cache.result_key(graph, cfg)
        key_b = cache.result_key(other, cfg)
        assert key_a.graph_digest != key_b.graph_digest
        # Memoised: repeated keys are identical and entries pin their graphs,
        # so a recycled id can never alias a freed graph's digest.
        assert cache.result_key(graph, cfg) == key_a
        pinned = [entry[0] for entry in cache._graph_digest_memo.values()]
        assert any(g is graph for g in pinned)
        assert any(g is other for g in pinned)

    def test_store_path_serialises_once(self, graph, tmp_path, monkeypatch):
        """The canonical body built for the key digest is reused (not rebuilt)
        for the graph snapshot insert."""
        import repro.catalog.cache as cache_module

        calls = {"n": 0}
        real = cache_module.graph_to_dict

        def counting(g):
            calls["n"] += 1
            return real(g)

        monkeypatch.setattr(cache_module, "graph_to_dict", counting)
        cache = RunCache(tmp_path)
        cfg = config(tmp_path)
        result = SpiderMine(graph, config()).mine()
        cache.store_result(graph, cfg, result)
        assert calls["n"] == 1
        assert CatalogStore(tmp_path).has_graph(
            cache.result_key(graph, cfg).graph_digest
        )


class TestRunCacheCounters:
    def test_hits_misses_inserts(self, graph, tmp_path):
        cache = RunCache(tmp_path)
        cfg = config(tmp_path)
        assert cache.load_result(graph, cfg) is None
        assert cache.misses == 1
        result = SpiderMine(graph, config()).mine()
        cache.store_result(graph, cfg, result)
        assert cache.inserts == 1
        assert cache.load_result(graph, cfg) is not None
        assert cache.hits == 1
