"""Unit tests for the Lemma 2 seeding analysis."""

from __future__ import annotations

import pytest

from repro.core import (
    compute_seed_count,
    failure_probability,
    hit_probability,
    plan_seeds,
    success_probability,
)


class TestHitProbability:
    def test_basic_ratio(self):
        assert hit_probability(10, 100) == pytest.approx(0.1)

    def test_capped_at_one(self):
        assert hit_probability(200, 100) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hit_probability(10, 0)
        with pytest.raises(ValueError):
            hit_probability(-1, 10)


class TestFailureProbability:
    def test_zero_draws_always_fails(self):
        assert failure_probability(0.1, 0) == 1.0

    def test_decreases_with_draws(self):
        values = [failure_probability(0.1, m) for m in (10, 50, 100, 200)]
        assert values == sorted(values, reverse=True)

    def test_bounds(self):
        for m in (1, 10, 100):
            for hit in (0.01, 0.1, 0.5, 0.9):
                value = failure_probability(hit, m)
                assert 0.0 <= value <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            failure_probability(1.5, 10)
        with pytest.raises(ValueError):
            failure_probability(0.1, -1)


class TestSuccessProbability:
    def test_monotone_in_draws(self):
        values = [success_probability(m, 10, 10, 100) for m in (20, 50, 100, 200)]
        assert values == sorted(values)

    def test_more_patterns_is_harder(self):
        assert success_probability(100, 20, 10, 100) <= success_probability(100, 5, 10, 100)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            success_probability(10, 0, 10, 100)


class TestSeedCount:
    def test_paper_worked_example(self):
        """ε=0.1, K=10, Vmin=|V|/10 gives M ≈ 85 in the paper (Section 4.1)."""
        m = compute_seed_count(k=10, epsilon=0.1, v_min=100, graph_vertices=1000)
        assert 80 <= m <= 90

    def test_guarantee_met(self):
        for k, eps, vmin, n in [(10, 0.1, 100, 1000), (5, 0.05, 30, 400), (20, 0.2, 50, 2000)]:
            m = compute_seed_count(k, eps, vmin, n)
            assert success_probability(m, k, vmin, n) >= 1 - eps

    def test_smaller_epsilon_needs_more_seeds(self):
        loose = compute_seed_count(10, 0.3, 100, 1000)
        tight = compute_seed_count(10, 0.01, 100, 1000)
        assert tight > loose

    def test_smaller_vmin_needs_more_seeds(self):
        big_patterns = compute_seed_count(10, 0.1, 200, 1000)
        small_patterns = compute_seed_count(10, 0.1, 50, 1000)
        assert small_patterns > big_patterns

    def test_max_seed_count_cap(self):
        assert compute_seed_count(10, 0.01, 10, 10000, max_seed_count=50) == 50

    def test_degenerate_full_graph_pattern(self):
        assert compute_seed_count(1, 0.1, 100, 100) >= 2

    def test_cap_of_one_respected_when_every_draw_hits(self):
        """Regression: hit >= 1 used to return max(2, min(2, cap)) == 2 for cap=1."""
        assert compute_seed_count(1, 0.1, 100, 100, max_seed_count=1) == 1
        assert compute_seed_count(1, 0.1, 200, 100, max_seed_count=1) == 1

    def test_cap_of_one_respected_in_general_search(self):
        """The cap binds below the default floor of 2 on the search path too."""
        assert compute_seed_count(10, 0.1, 100, 1000, max_seed_count=1) == 1

    def test_uncapped_unreachable_bound_raises(self):
        """Regression: the 10M doubling ceiling used to silently return an M
        that violates the documented 1-epsilon guarantee."""
        with pytest.raises(ValueError, match="10M"):
            compute_seed_count(10, 0.01, 1, 10**9)

    def test_capped_unreachable_bound_returns_cap(self):
        assert compute_seed_count(10, 0.01, 1, 10**9, max_seed_count=500) == 500

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compute_seed_count(10, 1.5, 10, 100)
        with pytest.raises(ValueError):
            compute_seed_count(10, 0.1, 0, 100)
        with pytest.raises(ValueError):
            compute_seed_count(10, 0.1, 10, 100, max_seed_count=0)


class TestSeedPlan:
    def test_plan_reports_guarantee(self):
        plan = plan_seeds(k=10, epsilon=0.1, v_min=100, graph_vertices=1000)
        assert plan.num_draws >= 2
        assert plan.guaranteed_success >= 0.9

    def test_plan_fields(self):
        plan = plan_seeds(k=3, epsilon=0.2, v_min=20, graph_vertices=200)
        assert plan.k == 3
        assert plan.epsilon == 0.2
        assert plan.v_min == 20
        assert plan.graph_vertices == 200
