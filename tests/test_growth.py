"""Unit tests for the growth engine (Occurrence, SpiderGrow, CheckMerge)."""

from __future__ import annotations

import pytest

from repro.core import (
    GrowthEngine,
    Occurrence,
    SpiderMineConfig,
    build_spider_index,
    mine_spiders,
    occurrence_code,
    occurrence_subgraph,
    occurrence_support,
    occurrences_to_pattern,
)
from repro.graph import LabeledGraph
from repro.patterns import SupportMeasure


def ladder_graph() -> LabeledGraph:
    """Two copies of a 6-vertex labeled path (a simple 'large pattern' with support 2)."""
    graph = LabeledGraph()
    labels = ["A", "B", "C", "D", "E", "F"]
    for base in (0, 100):
        for i, label in enumerate(labels):
            graph.add_vertex(base + i, label)
        for i in range(len(labels) - 1):
            graph.add_edge(base + i, base + i + 1)
    return graph


class TestOccurrence:
    def test_from_vertices_edges_normalises(self):
        occ = Occurrence.from_vertices_edges({2, 1}, {(2, 1)})
        assert occ.edges == frozenset({(1, 2)})
        assert occ.num_vertices == 2
        assert occ.num_edges == 1

    def test_union_and_overlap(self):
        a = Occurrence.from_vertices_edges({1, 2}, {(1, 2)})
        b = Occurrence.from_vertices_edges({2, 3}, {(2, 3)})
        c = Occurrence.from_vertices_edges({7, 8}, {(7, 8)})
        assert a.overlaps(b)
        assert not a.overlaps(c)
        union = a.union(b)
        assert union.vertices == frozenset({1, 2, 3})
        assert union.num_edges == 2

    def test_occurrence_code_matches_isomorphic_occurrences(self):
        graph = ladder_graph()
        occ_a = Occurrence.from_vertices_edges({0, 1}, {(0, 1)})
        occ_b = Occurrence.from_vertices_edges({100, 101}, {(100, 101)})
        assert occurrence_code(graph, occ_a) == occurrence_code(graph, occ_b)

    def test_occurrence_subgraph(self):
        graph = ladder_graph()
        occ = Occurrence.from_vertices_edges({0, 1, 2}, {(0, 1), (1, 2)})
        sub = occurrence_subgraph(graph, occ)
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert sub.label(0) == "A"


class TestOccurrenceSupport:
    def test_disjoint_occurrences(self):
        occs = [
            Occurrence.from_vertices_edges({1, 2}, {(1, 2)}),
            Occurrence.from_vertices_edges({3, 4}, {(3, 4)}),
        ]
        assert occurrence_support(occs, SupportMeasure.HARMFUL_OVERLAP) == 2
        assert occurrence_support(occs, SupportMeasure.EDGE_DISJOINT) == 2
        assert occurrence_support(occs, SupportMeasure.EMBEDDING_IMAGES) == 2

    def test_vertex_overlapping_occurrences(self):
        occs = [
            Occurrence.from_vertices_edges({1, 2}, {(1, 2)}),
            Occurrence.from_vertices_edges({2, 3}, {(2, 3)}),
        ]
        assert occurrence_support(occs, SupportMeasure.HARMFUL_OVERLAP) == 1
        assert occurrence_support(occs, SupportMeasure.EDGE_DISJOINT) == 2

    def test_duplicate_occurrences_counted_once(self):
        occ = Occurrence.from_vertices_edges({1, 2}, {(1, 2)})
        assert occurrence_support([occ, occ], SupportMeasure.EMBEDDING_IMAGES) == 1


class TestOccurrencesToPattern:
    def test_pattern_and_embeddings(self):
        graph = ladder_graph()
        occs = [
            Occurrence.from_vertices_edges({0, 1, 2}, {(0, 1), (1, 2)}),
            Occurrence.from_vertices_edges({100, 101, 102}, {(100, 101), (101, 102)}),
        ]
        pattern = occurrences_to_pattern(graph, occs)
        assert pattern.num_vertices == 3
        assert pattern.num_edges == 2
        assert pattern.support == 2
        assert pattern.verify_embeddings(graph)

    def test_empty_occurrences_raises(self):
        with pytest.raises(ValueError):
            occurrences_to_pattern(ladder_graph(), [])


def make_engine(graph, **config_kwargs):
    config = SpiderMineConfig(min_support=2, k=5, d_max=6, **config_kwargs)
    spiders = mine_spiders(graph, min_support=2, radius=config.radius)
    index = build_spider_index(spiders)
    return GrowthEngine(graph, index, config), spiders, config


class TestGrowthEngine:
    def test_seed_entries_group_by_code(self):
        graph = ladder_graph()
        engine, spiders, _ = make_engine(graph)
        entries = engine.seed_entries(spiders)
        assert entries
        for code, entry in entries.items():
            assert entry.code == code
            assert entry.occurrences

    def test_grow_increases_max_size(self):
        graph = ladder_graph()
        engine, spiders, _ = make_engine(graph)
        entries = engine.seed_entries(spiders)
        before = max(max(o.num_vertices for o in e.occurrences) for e in entries.values())
        grown = engine.grow(entries)
        after = max(max(o.num_vertices for o in e.occurrences) for e in grown.values())
        assert after >= before

    def test_grown_entries_remain_frequent(self):
        graph = ladder_graph()
        engine, spiders, config = make_engine(graph)
        entries = engine.seed_entries(spiders)
        grown = engine.grow(entries)
        for entry in grown.values():
            assert occurrence_support(entry.occurrences, config.support_measure) >= 2

    def test_repeated_growth_converges_to_full_pattern(self):
        graph = ladder_graph()
        engine, spiders, _ = make_engine(graph)
        entries = engine.seed_entries(spiders)
        for _ in range(5):
            entries = engine.grow(entries)
        best = max(max(o.num_vertices for o in e.occurrences) for e in entries.values())
        assert best == 6  # the full planted 6-vertex path

    def test_merge_flags_set_when_lineages_meet(self):
        graph = ladder_graph()
        engine, spiders, _ = make_engine(graph)
        entries = engine.seed_entries(spiders)
        for _ in range(3):
            entries = engine.grow(entries)
        assert any(e.merged for e in entries.values())

    def test_merge_disabled(self):
        graph = ladder_graph()
        engine, spiders, _ = make_engine(graph)
        entries = engine.seed_entries(spiders)
        grown = engine.grow(entries, merge_enabled=False)
        assert engine.merge_events == 0
        assert grown

    def test_unextendable_entry_carried_forward(self):
        graph = LabeledGraph()
        # Two isolated frequent edges with a unique label pair: nothing to grow into.
        for base in (0, 10):
            graph.add_vertex(base, "X")
            graph.add_vertex(base + 1, "Y")
            graph.add_edge(base, base + 1)
        engine, spiders, _ = make_engine(graph)
        entries = engine.seed_entries(spiders)
        grown = engine.grow(entries)
        best = max(max(o.num_vertices for o in e.occurrences) for e in grown.values())
        assert best == 2  # carried over, not lost

    def test_max_patterns_per_iteration_cap(self):
        graph = ladder_graph()
        engine, spiders, _ = make_engine(graph, max_patterns_per_iteration=3)
        entries = engine.seed_entries(spiders)
        grown = engine.grow(entries)
        assert len(grown) <= 3

    def test_subsumption_pruning_removes_contained_entries(self):
        graph = ladder_graph()
        engine, spiders, _ = make_engine(graph)
        entries = engine.seed_entries(spiders)
        for _ in range(4):
            entries = engine.grow(entries)
        # After convergence the 6-vertex path dominates; smaller sub-paths that
        # are fully covered must have been pruned away.
        sizes = sorted(
            max(o.num_vertices for o in e.occurrences) for e in entries.values()
        )
        assert sizes[-1] == 6
        assert len([s for s in sizes if s <= 2]) == 0
