"""Property-based tests (hypothesis) for the core data structures and invariants.

These cover the invariants the algorithms rely on:

* canonical codes are isomorphism invariants (relabeling never changes them);
* the VF2 matcher finds only valid, label- and edge-preserving embeddings;
* support measures are ordered (harmful-overlap ≤ edge-disjoint ≤ image count)
  and anti-monotone under edge removal from the pattern's perspective;
* spider-sets satisfy Theorem 2 (isomorphic graphs ⇒ equal spider-sets);
* Lemma 2's seed count always achieves the requested success probability;
* graph serialisation round-trips.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core import compute_seed_count, success_probability
from repro.graph import (
    LabeledGraph,
    are_isomorphic,
    canonical_code,
    diameter,
    find_embeddings,
    is_connected,
)
from repro.graph.io import graphs_from_lg, graphs_to_lg
from repro.patterns import (
    Pattern,
    SpiderSet,
    SupportMeasure,
    compute_support,
)

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
LABELS = ["A", "B", "C"]


@st.composite
def small_labeled_graphs(draw, min_vertices=1, max_vertices=7):
    """Random small labeled graphs (possibly disconnected)."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    labels = [draw(st.sampled_from(LABELS)) for _ in range(n)]
    graph = LabeledGraph()
    for i, label in enumerate(labels):
        graph.add_vertex(i, label)
    possible_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for u, v in possible_edges:
        if draw(st.booleans()):
            graph.add_edge(u, v)
    return graph


@st.composite
def connected_small_graphs(draw, min_vertices=2, max_vertices=7):
    """Random small connected labeled graphs (spanning tree + extra edges)."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    labels = [draw(st.sampled_from(LABELS)) for _ in range(n)]
    graph = LabeledGraph()
    for i, label in enumerate(labels):
        graph.add_vertex(i, label)
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        graph.add_edge(i, parent)
    possible_edges = [(i, j) for i in range(n) for j in range(i + 1, n) if not graph.has_edge(i, j)]
    for u, v in possible_edges:
        if draw(st.booleans()):
            graph.add_edge(u, v)
    return graph


def relabel_randomly(graph: LabeledGraph, seed: int) -> LabeledGraph:
    rng = random.Random(seed)
    names = list(range(1000, 1000 + graph.num_vertices))
    rng.shuffle(names)
    return graph.relabeled(dict(zip(graph.vertices(), names)))


COMMON_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# --------------------------------------------------------------------------- #
# canonical codes
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(graph=small_labeled_graphs(), seed=st.integers(min_value=0, max_value=10**6))
def test_canonical_code_invariant_under_relabeling(graph, seed):
    assert canonical_code(relabel_randomly(graph, seed)) == canonical_code(graph)


@COMMON_SETTINGS
@given(first=small_labeled_graphs(max_vertices=5), second=small_labeled_graphs(max_vertices=5))
def test_canonical_code_equality_matches_isomorphism(first, second):
    assert (canonical_code(first) == canonical_code(second)) == are_isomorphic(first, second)


# --------------------------------------------------------------------------- #
# subgraph matching
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(graph=connected_small_graphs(), seed=st.integers(min_value=0, max_value=10**6))
def test_graph_always_embeds_in_itself(graph, seed):
    copy = relabel_randomly(graph, seed)
    embeddings = find_embeddings(graph, copy, limit=1)
    assert embeddings, "a graph must embed in any isomorphic copy"
    mapping = embeddings[0]
    for u, v in graph.edges():
        assert copy.has_edge(mapping[u], mapping[v])
    for p, g in mapping.items():
        assert graph.label(p) == copy.label(g)


@COMMON_SETTINGS
@given(graph=connected_small_graphs(min_vertices=3))
def test_embeddings_are_injective_and_label_preserving(graph):
    # Use a sub-pattern: the induced subgraph on the first two vertices + an edge.
    vertices = sorted(graph.vertices())[:3]
    pattern = graph.subgraph(vertices)
    assume(pattern.num_edges >= 1)
    for mapping in find_embeddings(pattern, graph, limit=20):
        assert len(set(mapping.values())) == len(mapping)
        for p, g in mapping.items():
            assert pattern.label(p) == graph.label(g)


# --------------------------------------------------------------------------- #
# support measures
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(graph=small_labeled_graphs(min_vertices=2, max_vertices=6),
       pattern=connected_small_graphs(min_vertices=2, max_vertices=3))
def test_support_measure_ordering(graph, pattern):
    p = Pattern(graph=pattern)
    p.recompute_embeddings(graph, limit=50)
    harmful = compute_support(p, SupportMeasure.HARMFUL_OVERLAP)
    edge_disjoint = compute_support(p, SupportMeasure.EDGE_DISJOINT)
    images = compute_support(p, SupportMeasure.EMBEDDING_IMAGES)
    assert 0 <= harmful <= edge_disjoint <= images


@COMMON_SETTINGS
@given(graph=connected_small_graphs(min_vertices=3, max_vertices=6))
def test_single_vertex_support_counts_label_occurrences(graph):
    label = graph.label(0)
    p = Pattern.single_vertex(label, graph)
    assert compute_support(p, SupportMeasure.HARMFUL_OVERLAP) == len(
        graph.vertices_with_label(label)
    )


# --------------------------------------------------------------------------- #
# spider sets (Theorem 2)
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(graph=connected_small_graphs(), seed=st.integers(min_value=0, max_value=10**6),
       radius=st.integers(min_value=1, max_value=2))
def test_spider_set_is_isomorphism_invariant(graph, seed, radius):
    copy = relabel_randomly(graph, seed)
    assert SpiderSet.of(graph, radius=radius) == SpiderSet.of(copy, radius=radius)


@COMMON_SETTINGS
@given(graph=connected_small_graphs(), radius=st.integers(min_value=1, max_value=2))
def test_spider_set_size_equals_vertex_count(graph, radius):
    assert len(SpiderSet.of(graph, radius=radius)) == graph.num_vertices


# --------------------------------------------------------------------------- #
# Lemma 2 seeding
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(
    k=st.integers(min_value=1, max_value=20),
    epsilon=st.floats(min_value=0.01, max_value=0.5),
    ratio=st.integers(min_value=2, max_value=50),
)
def test_seed_count_always_meets_guarantee(k, epsilon, ratio):
    graph_vertices = 1000
    v_min = graph_vertices // ratio
    m = compute_seed_count(k, epsilon, v_min, graph_vertices)
    assert success_probability(m, k, v_min, graph_vertices) >= 1 - epsilon
    assert m >= 2


# --------------------------------------------------------------------------- #
# serialisation and misc invariants
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(graph=small_labeled_graphs())
def test_lg_roundtrip_preserves_structure(graph):
    parsed = graphs_from_lg(graphs_to_lg([graph]))[0]
    assert parsed.num_vertices == graph.num_vertices
    assert parsed.num_edges == graph.num_edges
    assert canonical_code(parsed) == canonical_code(graph)


@COMMON_SETTINGS
@given(graph=connected_small_graphs())
def test_connected_graph_diameter_bounds(graph):
    assert is_connected(graph)
    d = diameter(graph)
    assert 0 <= d <= graph.num_vertices - 1


@COMMON_SETTINGS
@given(graph=small_labeled_graphs())
def test_subgraph_of_all_vertices_is_identity(graph):
    assert graph.subgraph(list(graph.vertices())) == graph
