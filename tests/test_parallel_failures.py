"""Failure paths and resource lifecycle of the parallel mining engine.

Covers the driver's failure contract — a worker dying mid-chunk surfaces the
*original* exception in the parent and never leaks a shared-memory segment —
plus the shared-graph export/attach round trip and policy validation.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import pytest

from repro.core import SpiderMineConfig, SpiderMiner
from repro.graph import freeze, synthetic_single_graph
from repro.parallel import (
    ExecutionPolicy,
    attach_shared_graph,
    export_shared_graph,
)
from repro.parallel import shared_graph as shared_graph_module
from tests.conftest import build_path, build_triangle


@pytest.fixture(scope="module")
def small_graph():
    return synthetic_single_graph(
        num_vertices=80,
        num_labels=20,
        average_degree=2.0,
        num_large_patterns=1,
        large_pattern_vertices=8,
        large_pattern_support=2,
        num_small_patterns=1,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=11,
    ).graph


@pytest.fixture
def captured_segments(monkeypatch):
    """Record the name of every segment the driver exports."""
    names = []
    original = shared_graph_module.export_shared_graph

    def recording_export(frozen):
        handle, segment = original(frozen)
        names.append(handle.name)
        return handle, segment

    # The driver resolves the symbol through its own module namespace.
    from repro.parallel import driver

    monkeypatch.setattr(driver, "export_shared_graph", recording_export)
    return names


def assert_segment_released(name: str) -> None:
    """The segment must be unlinked: re-attaching by name has to fail."""
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


class TestWorkerFailure:
    def test_worker_exception_surfaces_and_releases_memory(
        self, small_graph, captured_segments, monkeypatch
    ):
        """A worker raising mid-chunk aborts the run with the original
        exception and the parent still unlinks the shared segment."""

        def exploding_mine_unit(self, unit):
            raise ValueError(f"synthetic worker failure in unit {unit}")

        # Fork workers inherit the monkeypatched method, so the failure
        # happens inside a real worker process, mid-chunk.
        monkeypatch.setattr(SpiderMiner, "mine_unit", exploding_mine_unit)
        config = SpiderMineConfig(
            min_support=2,
            execution=ExecutionPolicy.process_pool(2, start_method="fork"),
        )
        with pytest.raises(ValueError, match="synthetic worker failure"):
            SpiderMiner(small_graph, config).mine()
        assert len(captured_segments) == 1
        assert_segment_released(captured_segments[0])

    def test_partial_failure_still_releases_memory(
        self, small_graph, captured_segments, monkeypatch
    ):
        """Only some chunks fail: the healthy results are discarded, the
        exception propagates, the segment is gone."""
        original = SpiderMiner.mine_unit

        def flaky_mine_unit(self, unit):
            if unit % 2 == 1:
                raise RuntimeError("flaky unit")
            return original(self, unit)

        monkeypatch.setattr(SpiderMiner, "mine_unit", flaky_mine_unit)
        config = SpiderMineConfig(
            min_support=2,
            execution=ExecutionPolicy.process_pool(2, chunk_size=1, start_method="fork"),
        )
        with pytest.raises(RuntimeError, match="flaky unit"):
            SpiderMiner(small_graph, config).mine()
        assert_segment_released(captured_segments[0])

    def test_success_leaves_no_segment_behind(self, small_graph, captured_segments):
        config = SpiderMineConfig(
            min_support=2, execution=ExecutionPolicy.process_pool(2)
        )
        spiders = SpiderMiner(small_graph, config).mine()
        assert spiders
        assert len(captured_segments) == 1
        assert_segment_released(captured_segments[0])


class TestCrossProcessDeterminismGuard:
    def string_id_graph(self):
        from repro.graph import LabeledGraph

        graph = LabeledGraph()
        for base in ("u", "v"):
            graph.add_vertex(f"{base}0", "A")
            graph.add_vertex(f"{base}1", "B")
            graph.add_edge(f"{base}0", f"{base}1")
        return graph

    def test_spawn_with_string_ids_is_refused(self):
        """Non-fork workers draw fresh string-hash seeds, so string vertex ids
        would silently break serial==parallel parity; the driver must refuse
        loudly instead."""
        config = SpiderMineConfig(
            min_support=2,
            execution=ExecutionPolicy.process_pool(2, start_method="spawn"),
        )
        with pytest.raises(RuntimeError, match="integer vertex identifiers"):
            SpiderMiner(self.string_id_graph(), config).mine()

    def test_fork_with_string_ids_is_allowed(self):
        graph = self.string_id_graph()
        serial = SpiderMiner(graph, SpiderMineConfig(min_support=2)).mine()
        config = SpiderMineConfig(
            min_support=2,
            execution=ExecutionPolicy.process_pool(2, start_method="fork"),
        )
        parallel = SpiderMiner(graph, config).mine()
        assert [s.spider_code() for s in parallel] == [s.spider_code() for s in serial]
        assert [s.embeddings for s in parallel] == [s.embeddings for s in serial]


class TestSharedGraphRoundTrip:
    def test_attach_reproduces_graph(self):
        frozen = freeze(build_triangle())
        handle, segment = export_shared_graph(frozen)
        try:
            attached = attach_shared_graph(handle)
            mirror = attached.graph
            assert mirror == frozen
            assert mirror.vertex_ids == frozen.vertex_ids
            assert mirror.label_table == frozen.label_table
            assert list(mirror.edges()) == list(frozen.edges())
            for vertex in frozen.vertices():
                assert mirror.neighbors(vertex) == frozen.neighbors(vertex)
                assert mirror.label(vertex) == frozen.label(vertex)
            attached.detach()
            attached.detach()  # idempotent
        finally:
            segment.close()
            segment.unlink()
        assert_segment_released(handle.name)

    def test_attach_is_zero_copy(self):
        """The attached adjacency reads straight out of the shared segment."""
        frozen = freeze(build_path(["A", "B", "A", "B"]))
        handle, segment = export_shared_graph(frozen)
        try:
            attached = attach_shared_graph(handle)
            view = attached.graph.neighbor_indices
            assert isinstance(view, memoryview)
            assert view.obj is not None
            attached.detach()
        finally:
            segment.close()
            segment.unlink()

    def test_handle_layout_is_consistent(self):
        frozen = freeze(build_triangle())
        handle, segment = export_shared_graph(frozen)
        try:
            assert handle.total_bytes == (
                handle.offsets_bytes
                + handle.neighbors_bytes
                + handle.labels_bytes
                + handle.header_bytes
            )
            assert handle.num_vertices == 3
            assert segment.size >= handle.total_bytes
        finally:
            segment.close()
            segment.unlink()


class TestPolicyValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="execution mode"):
            ExecutionPolicy(mode="threads")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            ExecutionPolicy(n_workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ExecutionPolicy(chunk_size=0)

    def test_rejects_unknown_partition(self):
        with pytest.raises(ValueError, match="partition"):
            ExecutionPolicy(partition="random")

    def test_rejects_unavailable_start_method(self):
        with pytest.raises(ValueError, match="start method"):
            ExecutionPolicy(start_method="teleport")

    def test_single_worker_process_pool_degrades_to_serial(self):
        policy = ExecutionPolicy.process_pool(1)
        assert policy.mode == "serial"
        assert not policy.uses_processes

    def test_config_rejects_non_policy(self):
        with pytest.raises(ValueError, match="ExecutionPolicy"):
            SpiderMineConfig(execution="process")

    def test_chunk_size_resolution(self):
        policy = ExecutionPolicy.process_pool(4)
        assert policy.resolved_chunk_size(64) == 4
        assert policy.resolved_chunk_size(3) == 1
        assert ExecutionPolicy.process_pool(2, chunk_size=7).resolved_chunk_size(64) == 7
