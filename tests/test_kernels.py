"""Parity and unit tests for the vectorized numpy kernel layer.

The contract being pinned:

* every kernel in :mod:`repro.graph.kernels` computes exactly what its
  scalar counterpart computes — checked against naive pure-Python references
  over randomized inputs (seed filter, arc consistency, sorted membership /
  intersection, bulk row filtering, posting-pair merge);
* the matcher produces **digest-identical** embeddings with kernels enabled
  and with :func:`repro.graph.kernels.scalar_fallback` forced, across
  {induced, monomorphic} × {anchored, free} on random graphs (hypothesis) —
  and on the dict/reference axes already pinned by ``test_matcher_parity``;
* the kernel free-search *sequence* equals the scalar CSR sequence (both
  ascend candidate pools), which is what keeps mining digests stable;
* ``EmbeddingIndex.conflict_graph`` builds the identical adjacency through
  the vectorized posting merge and through the scalar nested loops, above
  and below the ``VECTOR_MERGE_MIN_TOUCHES`` dispatch threshold;
* :func:`repro.graph.kernels.as_index_array` is zero-copy over
  ``array.array``, typed ``memoryview`` and ``np.ndarray`` buffers.
"""

from __future__ import annotations

import random
from array import array

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import LabeledGraph, SubgraphMatcher, freeze, kernels, matcher_digest
from repro.patterns.overlap import (
    VECTOR_MERGE_MIN_TOUCHES,
    EmbeddingIndex,
    conflict_digest,
)

np = pytest.importorskip("numpy")

LABELS = ["A", "B", "C"]

PARITY_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_csr(rng, n, avg_degree=3.0):
    """A random CSR triple (offsets, neighbors, label_ids) with sorted rows."""
    adjacency = [set() for _ in range(n)]
    for _ in range(int(n * avg_degree / 2)):
        if n < 2:
            break
        u, v = rng.sample(range(n), 2)
        adjacency[u].add(v)
        adjacency[v].add(u)
    offsets = array("q", [0])
    neighbors = array("i")
    for u in range(n):
        row = sorted(adjacency[u])
        neighbors.extend(row)
        offsets.append(len(neighbors))
    label_ids = array("i", [rng.randrange(3) for _ in range(n)])
    return offsets, neighbors, label_ids


def row(offsets, neighbors, u):
    return list(neighbors[offsets[u]:offsets[u + 1]])


# --------------------------------------------------------------------------- #
# dispatch plumbing
# --------------------------------------------------------------------------- #
class TestDispatch:
    def test_numpy_available_here(self):
        assert kernels.HAVE_NUMPY
        assert kernels.numpy_available()

    def test_scalar_fallback_flips_and_restores(self):
        assert kernels.numpy_available()
        with kernels.scalar_fallback():
            assert not kernels.numpy_available()
            with kernels.scalar_fallback():
                assert not kernels.numpy_available()
            assert not kernels.numpy_available()  # nesting restores outer True
        assert kernels.numpy_available()

    def test_matcher_captures_dispatch_at_construction(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        graph.add_vertex(1, "A")
        graph.add_edge(0, 1)
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        with kernels.scalar_fallback():
            scalar = SubgraphMatcher(pattern, freeze(graph))
        assert not scalar._use_kernels
        assert SubgraphMatcher(pattern, freeze(graph))._use_kernels


# --------------------------------------------------------------------------- #
# zero-copy buffer adaptation
# --------------------------------------------------------------------------- #
class TestAsIndexArray:
    def test_array_array_is_zero_copy(self):
        buf = array("i", [3, 1, 4, 1, 5])
        view = kernels.as_index_array(buf)
        assert view.tolist() == [3, 1, 4, 1, 5]
        buf[0] = 9  # shared memory: the view sees the write
        assert view[0] == 9

    def test_memoryview_cast_is_zero_copy(self):
        backing = array("q", [10, 20, 30])
        view = kernels.as_index_array(memoryview(backing).cast("B").cast("q"))
        assert view.dtype == np.dtype("q")
        assert view.tolist() == [10, 20, 30]
        backing[1] = 99
        assert view[1] == 99

    def test_ndarray_passthrough_is_identity(self):
        arr = np.arange(4, dtype=np.int64)
        assert kernels.as_index_array(arr) is arr


# --------------------------------------------------------------------------- #
# kernel units vs naive references
# --------------------------------------------------------------------------- #
class TestKernelUnits:
    @PARITY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_in_sorted_matches_set_membership(self, seed):
        rng = random.Random(seed)
        values = sorted(rng.sample(range(100), rng.randint(0, 20)))
        queries = [rng.randrange(100) for _ in range(rng.randint(0, 30))]
        got = kernels.in_sorted(np.asarray(values), np.asarray(queries, dtype=np.int64))
        assert got.tolist() == [q in set(values) for q in queries]

    @PARITY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_intersect_sorted_matches_set_intersection(self, seed):
        rng = random.Random(seed)
        lists = [
            sorted(rng.sample(range(60), rng.randint(0, 25)))
            for _ in range(rng.randint(1, 4))
        ]
        arrays = [np.asarray(xs, dtype=np.int64) for xs in lists]
        got = kernels.intersect_sorted(arrays[0], *arrays[1:])
        expected = set(lists[0]).intersection(*map(set, lists[1:]))
        assert got.tolist() == sorted(expected)

    @PARITY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_seed_domain_matches_counter_scan(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 40)
        offsets, neighbors, label_ids = random_csr(rng, n)
        members = sorted(rng.sample(range(n), rng.randint(1, n)))
        min_degree = rng.randint(0, 3)
        needed = [(lid, rng.randint(1, 2)) for lid in rng.sample(range(3), rng.randint(0, 2))]
        got = kernels.seed_domain(
            np.asarray(members, dtype=np.int64),
            min_degree, needed, offsets, neighbors, label_ids,
        )
        expected = []
        for m in members:
            nbrs = row(offsets, neighbors, m)
            if len(nbrs) < min_degree:
                continue
            if all(sum(label_ids[x] == lid for x in nbrs) >= c for lid, c in needed):
                expected.append(m)
        assert got.tolist() == expected

    @PARITY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_ac_filter_matches_bisect_probes(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 40)
        offsets, neighbors, _ = random_csr(rng, n)
        dom_a = sorted(rng.sample(range(n), rng.randint(1, n)))
        dom_b = sorted(rng.sample(range(n), rng.randint(1, n)))
        got = kernels.ac_filter(
            np.asarray(dom_a, dtype=np.int64),
            np.asarray(dom_b, dtype=np.int64),
            offsets, neighbors,
        )
        b_set = set(dom_b)
        expected = [m for m in dom_a if any(x in b_set for x in row(offsets, neighbors, m))]
        assert got.tolist() == expected

    @PARITY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_filter_rows_matches_per_row_intersection(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 40)
        offsets, neighbors, _ = random_csr(rng, n)
        members = sorted(rng.sample(range(n), rng.randint(1, n)))
        allowed = sorted(rng.sample(range(n), rng.randint(0, n)))
        flat, bounds, dropped = kernels.filter_rows(
            np.asarray(members, dtype=np.int64),
            np.asarray(allowed, dtype=np.int64),
            offsets, neighbors,
        )
        allowed_set = set(allowed)
        total_dropped = 0
        for i, m in enumerate(members):
            nbrs = row(offsets, neighbors, m)
            kept = [x for x in nbrs if x in allowed_set]
            total_dropped += len(nbrs) - len(kept)
            assert flat[bounds[i]:bounds[i + 1]].tolist() == kept
        assert int(bounds[-1]) == len(flat)
        assert dropped == total_dropped

    @PARITY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_merge_postings_matches_nested_loops(self, seed):
        rng = random.Random(seed)
        num_ids = rng.randint(2, 30)
        postings = []
        for _ in range(rng.randint(0, 12)):
            t = rng.randint(0, min(num_ids, 8))
            # Occasionally exceed the shift-sweep length cutoff to hit the
            # triu_indices branch too.
            if rng.random() < 0.15:
                t = num_ids
            postings.append(sorted(rng.sample(range(num_ids), t)))
        left, right = kernels.merge_postings(postings, num_ids)
        expected = set()
        for ids in postings:
            for a in range(len(ids)):
                for b in range(a + 1, len(ids)):
                    expected.add((ids[a], ids[b]))
        got = set(zip(left.tolist(), right.tolist()))
        assert got == expected
        assert all(a < b for a, b in got)

    def test_merge_postings_long_list_uses_triu_branch(self):
        ids = list(range(kernels._SHIFT_SWEEP_MAX_LEN + 10))
        left, right = kernels.merge_postings([ids], len(ids))
        assert len(left) == len(ids) * (len(ids) - 1) // 2


# --------------------------------------------------------------------------- #
# hypothesis parity: kernel matcher vs scalar-fallback matcher
# --------------------------------------------------------------------------- #
@st.composite
def graph_and_pattern(draw):
    """Random labeled data graph plus small pattern (see test_matcher_parity)."""
    n = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    graph = LabeledGraph()
    ids = rng.sample(range(10**6), n)
    for v in ids:
        graph.add_vertex(v, rng.choice(LABELS))
    for _ in range(rng.randint(0, 2 * n)):
        if n < 2:
            break
        u, v = rng.sample(ids, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    if draw(st.booleans()):
        k = rng.randint(1, min(4, n))
        pattern = graph.subgraph(rng.sample(ids, k)).relabeled()
    else:
        k = draw(st.integers(min_value=1, max_value=4))
        pattern = LabeledGraph()
        for i in range(k):
            pattern.add_vertex(i, rng.choice(LABELS))
        for i in range(k):
            for j in range(i + 1, k):
                if rng.random() < 0.5:
                    pattern.add_edge(i, j)
    return graph, pattern


class TestMatcherParityAcrossDispatch:
    @PARITY_SETTINGS
    @given(data=graph_and_pattern(), induced=st.booleans())
    def test_free_search_sequence_identical(self, data, induced):
        graph, pattern = data
        frozen = freeze(graph)
        kernel_found = SubgraphMatcher(pattern, frozen, induced=induced).find_embeddings()
        with kernels.scalar_fallback():
            scalar_found = SubgraphMatcher(
                pattern, frozen, induced=induced
            ).find_embeddings()
        # Both CSR paths iterate candidate pools ascending, so the *sequence*
        # (not just the set) must match — the mining-digest invariant.
        assert kernel_found == scalar_found

    @PARITY_SETTINGS
    @given(data=graph_and_pattern(), induced=st.booleans())
    def test_anchored_batch_digest_identical(self, data, induced):
        graph, pattern = data
        frozen = freeze(graph)
        p_anchor = next(iter(pattern.vertices()))
        kernel_batch = [
            m
            for _, m in SubgraphMatcher(
                pattern, frozen, induced=induced
            ).iter_anchored(p_anchor)
        ]
        with kernels.scalar_fallback():
            scalar_batch = [
                m
                for _, m in SubgraphMatcher(
                    pattern, frozen, induced=induced
                ).iter_anchored(p_anchor)
            ]
        assert matcher_digest(kernel_batch) == matcher_digest(scalar_batch)
        assert len(kernel_batch) == len(scalar_batch)

    @PARITY_SETTINGS
    @given(data=graph_and_pattern(), induced=st.booleans())
    def test_domains_identical(self, data, induced):
        graph, pattern = data
        frozen = freeze(graph)
        kernel_sizes = SubgraphMatcher(pattern, frozen, induced=induced).domain_sizes()
        with kernels.scalar_fallback():
            scalar_sizes = SubgraphMatcher(
                pattern, frozen, induced=induced
            ).domain_sizes()
        assert kernel_sizes == scalar_sizes

    @PARITY_SETTINGS
    @given(data=graph_and_pattern())
    def test_candidate_tests_counter_preserved(self, data):
        graph, pattern = data
        frozen = freeze(graph)
        kernel_matcher = SubgraphMatcher(pattern, frozen)
        kernel_matcher.find_embeddings()
        with kernels.scalar_fallback():
            scalar_matcher = SubgraphMatcher(pattern, frozen)
            scalar_matcher.find_embeddings()
        assert (
            kernel_matcher.stats.candidate_tests == scalar_matcher.stats.candidate_tests
        )


# --------------------------------------------------------------------------- #
# overlap: vectorized posting merge parity
# --------------------------------------------------------------------------- #
class TestConflictGraphParity:
    def overlapping_images(self, rng, n, universe):
        return [
            frozenset(rng.sample(range(universe), rng.randint(1, 6))) for _ in range(n)
        ]

    @PARITY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_small_collections_match_all_pairs(self, seed):
        rng = random.Random(seed)
        images = self.overlapping_images(rng, rng.randint(1, 20), 30)
        index = EmbeddingIndex(vertex_images=images)
        got = index.conflict_graph()
        assert conflict_digest(got) == conflict_digest(index.conflict_graph_all_pairs())

    def test_large_collection_takes_vectorized_branch_and_matches(self):
        # Enough co-occurrence that posting pair touches exceed the dispatch
        # threshold, so this construction runs through merge_postings.
        rng = random.Random(11)
        images = [
            frozenset(rng.sample(range(40), rng.randint(2, 5))) for _ in range(160)
        ]
        index = EmbeddingIndex(vertex_images=images)
        touches = index.pair_stats()["posting_pair_touches"]
        assert touches >= VECTOR_MERGE_MIN_TOUCHES  # vectorized branch active
        vectorized = index.conflict_graph()
        with kernels.scalar_fallback():
            scalar = EmbeddingIndex(vertex_images=images).conflict_graph()
        assert conflict_digest(vectorized) == conflict_digest(scalar)
        assert conflict_digest(vectorized) == conflict_digest(
            index.conflict_graph_all_pairs()
        )
