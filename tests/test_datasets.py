"""Unit tests for the paper's dataset recipes (GID 1-10, scalability, transactions, DBLP, Jeti)."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DBLP_LABELS,
    GID_DIFFERENCES,
    GID_SETTINGS,
    GID_6_10_SETTINGS,
    generate_call_graph,
    generate_dblp_like_graph,
    generate_gid,
    scalability_series,
    transaction_database,
)
from repro.graph import diameter, find_embeddings


class TestTable1Settings:
    def test_all_five_settings_present(self):
        assert set(GID_SETTINGS) == {1, 2, 3, 4, 5}

    def test_table1_rows_match_paper(self):
        row1 = GID_SETTINGS[1]
        assert (row1.num_vertices, row1.num_labels, row1.average_degree) == (400, 70, 2)
        assert (row1.num_large, row1.large_vertices, row1.large_support) == (5, 30, 2)
        assert (row1.num_small, row1.small_vertices, row1.small_support) == (5, 3, 2)
        assert GID_SETTINGS[2].average_degree == 4
        assert GID_SETTINGS[3].small_support == 20
        assert GID_SETTINGS[5].num_small == 20

    def test_table2_differences_recorded(self):
        assert (2, 1) in GID_DIFFERENCES
        assert "degree" in GID_DIFFERENCES[(2, 1)]
        assert len(GID_DIFFERENCES) == 4

    def test_generate_scaled_down(self):
        data = GID_SETTINGS[1].generate(seed=1, scale=0.3)
        graph = data.graph
        assert graph.num_vertices == 120
        assert data.large_patterns
        # The planted large patterns remain recoverable by exact matching.
        planted = data.large_patterns[0].pattern
        assert len(find_embeddings(planted, graph, limit=3)) >= 2

    def test_generate_full_scale_sizes(self):
        data = GID_SETTINGS[1].generate(seed=1, scale=1.0)
        assert data.graph.num_vertices == 400
        assert len(data.large_patterns) == 5
        assert data.planted_large_sizes == [30] * 5

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            GID_SETTINGS[1].generate(scale=0.0)
        with pytest.raises(ValueError):
            GID_SETTINGS[1].generate(scale=1.5)

    def test_injected_patterns_respect_diameter_bound(self):
        data = GID_SETTINGS[1].generate(seed=2, scale=0.4, max_pattern_diameter=4)
        for record in data.large_patterns:
            assert diameter(record.pattern) <= 4


class TestTable3Settings:
    def test_all_settings_present(self):
        assert set(GID_6_10_SETTINGS) == {6, 7, 8, 9, 10}

    def test_small_pattern_share_grows(self):
        supports = [GID_6_10_SETTINGS[g].small_support for g in range(6, 11)]
        assert supports == sorted(supports)
        sizes = [GID_6_10_SETTINGS[g].num_vertices for g in range(6, 11)]
        assert sizes == sorted(sizes)

    def test_generate_gid_dispatch(self):
        data = generate_gid(6, seed=1, scale=0.01)
        assert data.graph.num_vertices >= 40

    def test_generate_gid_unknown(self):
        with pytest.raises(ValueError):
            generate_gid(11)


class TestScalabilitySeries:
    def test_sizes_respected(self):
        series = scalability_series([60, 100, 140], seed=1)
        assert [d.graph.num_vertices for d in series] == [60, 100, 140]

    def test_scale_free_model(self):
        series = scalability_series([80], model="barabasi_albert", seed=2)
        assert series[0].graph.max_degree() > series[0].graph.average_degree()

    def test_large_pattern_capped_for_tiny_graphs(self):
        series = scalability_series([50], large_vertices=40, seed=3)
        assert series[0].planted_large_sizes[0] <= 10


class TestTransactionDatabase:
    def test_figure14_style(self):
        database = transaction_database(
            num_graphs=4, graph_vertices=60, num_labels=20,
            num_large=2, large_vertices=8, num_small=0, seed=1,
        )
        assert len(database) == 4
        assert database.total_vertices == 240

    def test_figure15_style_adds_small_patterns(self):
        database = transaction_database(
            num_graphs=4, graph_vertices=60, num_labels=20,
            num_large=1, large_vertices=8, num_small=10, small_vertices=4, seed=1,
        )
        assert len(database) == 4


class TestDblpLikeGraph:
    def test_labels_and_size(self):
        data = generate_dblp_like_graph(num_authors=300, seed=1)
        assert data.graph.num_vertices == 300
        assert data.graph.label_set() <= set(DBLP_LABELS)

    def test_label_pyramid(self):
        data = generate_dblp_like_graph(num_authors=800, seed=2)
        counts = data.graph.label_counts()
        assert counts["B"] > counts["P"]

    def test_collaboration_patterns_injected(self):
        data = generate_dblp_like_graph(
            num_authors=300, num_collaboration_patterns=3, pattern_support=3, seed=3
        )
        assert len(data.collaboration_patterns) == 3
        assert all(r.support == 3 for r in data.collaboration_patterns)

    def test_deterministic(self):
        a = generate_dblp_like_graph(num_authors=200, seed=4)
        b = generate_dblp_like_graph(num_authors=200, seed=4)
        assert a.graph == b.graph


class TestJetiLikeGraph:
    def test_defaults_match_paper_statistics(self):
        data = generate_call_graph(seed=1)
        graph = data.graph
        assert graph.num_vertices == 835
        assert len(graph.label_set()) <= 267
        assert 1.5 <= graph.average_degree() <= 2.8

    def test_hub_classes_create_high_degree(self):
        data = generate_call_graph(seed=2)
        assert data.graph.max_degree() >= 10

    def test_call_motifs_injected(self):
        data = generate_call_graph(num_methods=400, num_classes=100,
                                   num_call_motifs=2, motif_support=5, seed=3)
        assert len(data.call_motifs) == 2
        assert all(r.support == 5 for r in data.call_motifs)

    def test_deterministic(self):
        a = generate_call_graph(num_methods=300, seed=5)
        b = generate_call_graph(num_methods=300, seed=5)
        assert a.graph == b.graph
