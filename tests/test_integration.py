"""Cross-module integration tests: end-to-end behaviours the paper relies on."""

from __future__ import annotations

import pytest

from repro import SpiderMine, SpiderMineConfig, mine_top_k_patterns
from repro.analysis import SizeDistributionComparison, recovery_rate
from repro.baselines import run_seus, run_subdue
from repro.datasets import (
    GID_SETTINGS,
    generate_call_graph,
    generate_dblp_like_graph,
    transaction_database,
)
from repro.baselines import run_origami
from repro.graph import find_embeddings, synthetic_single_graph
from repro.transaction import mine_transaction_top_k


@pytest.fixture(scope="module")
def gid1_scaled():
    """A small GID-1-style dataset shared by the integration tests."""
    return GID_SETTINGS[1].generate(seed=7, scale=0.3)


class TestSpiderMineVsBaselinesShape:
    """The paper's headline qualitative result: SpiderMine reaches the large
    planted patterns while SUBDUE/SEuS report small structures."""

    def test_spidermine_finds_larger_patterns_than_subdue_and_seus(self, gid1_scaled):
        graph = gid1_scaled.graph
        spidermine = mine_top_k_patterns(graph, min_support=2, k=10, d_max=4, seed=0)
        subdue = run_subdue(graph, num_best=10)
        seus = run_seus(graph, min_support=2)

        comparison = SizeDistributionComparison()
        comparison.add(spidermine)
        comparison.add(subdue)
        comparison.add(seus)

        planted = max(gid1_scaled.planted_large_sizes)
        assert comparison.largest_size("SpiderMine") >= planted - 2
        assert comparison.largest_size("SpiderMine") > comparison.largest_size("SUBDUE")
        assert comparison.largest_size("SpiderMine") > comparison.largest_size("SEuS")

    def test_spidermine_recovers_planted_patterns(self, gid1_scaled):
        result = mine_top_k_patterns(gid1_scaled.graph, min_support=2, k=10, d_max=4, seed=0)
        rate = recovery_rate(result, gid1_scaled.planted_large_sizes, tolerance=2)
        assert rate >= 0.5

    def test_reported_patterns_actually_occur_in_graph(self, gid1_scaled):
        result = mine_top_k_patterns(gid1_scaled.graph, min_support=2, k=5, d_max=4, seed=0)
        for pattern in result.patterns[:3]:
            assert find_embeddings(pattern.graph, gid1_scaled.graph, limit=1)


class TestRealDataStandIns:
    def test_dblp_like_mining(self):
        data = generate_dblp_like_graph(
            num_authors=250, num_communities=15, num_collaboration_patterns=2,
            pattern_size=8, pattern_support=4, seed=2,
        )
        # Label-poor graph: tighter growth budgets keep the run fast (see
        # SpiderMineConfig docstrings); the planted motifs are still recovered.
        config = SpiderMineConfig(
            min_support=4, k=5, d_max=6, seed=0, max_spider_size=4,
            max_embeddings_per_pattern=120, max_patterns_per_iteration=400,
        )
        result = SpiderMine(data.graph, config).mine()
        assert result.patterns
        # Large collaboration patterns (≥ 6 authors) are recovered.
        assert result.largest_size_vertices >= 6

    def test_jeti_like_mining(self):
        data = generate_call_graph(
            num_methods=300, num_classes=90, num_call_motifs=2,
            motif_size=7, motif_support=8, seed=3,
        )
        result = mine_top_k_patterns(data.graph, min_support=8, k=5, d_max=6, seed=0)
        assert result.patterns
        assert result.largest_size_vertices >= 5


class TestTransactionSettingIntegration:
    def test_transaction_setting_recovers_planted_patterns(self):
        database = transaction_database(
            num_graphs=5, graph_vertices=90, num_labels=30,
            num_large=2, large_vertices=10, num_small=8, small_vertices=4, seed=4,
        )
        spidermine = mine_transaction_top_k(database, min_support=3, k=5, d_max=6, seed=0)
        origami = run_origami(database, min_support=3, num_walks=20, seed=0)
        # SpiderMine reaches the planted 10-vertex patterns with verified
        # transaction support; ORIGAMI (the paper's comparison point) runs and
        # returns a representative set, but gives no size guarantee.
        assert spidermine.result.largest_size_vertices >= 9
        assert all(s >= 3 for s in spidermine.transaction_supports)
        assert origami.patterns


class TestScalingBehaviour:
    def test_larger_graphs_yield_larger_patterns(self):
        """Figure 12's qualitative shape: the largest discovered pattern grows
        with the data graph because larger backgrounds host larger planted
        patterns."""
        sizes = []
        for n, planted in [(80, 8), (160, 14)]:
            data = synthetic_single_graph(
                num_vertices=n, num_labels=max(10, n // 4), average_degree=2.0,
                num_large_patterns=1, large_pattern_vertices=planted,
                large_pattern_support=2, num_small_patterns=1,
                small_pattern_vertices=3, small_pattern_support=2,
                seed=n, max_pattern_diameter=6,
            )
            result = mine_top_k_patterns(data.graph, min_support=2, k=3, d_max=6, seed=0)
            sizes.append(result.largest_size_vertices)
        assert sizes[1] > sizes[0]

    def test_spider_count_grows_with_graph_size(self):
        """Figure 17's qualitative shape on scale-free graphs."""
        from repro.core import mine_spiders

        counts = []
        for n in (60, 140):
            data = synthetic_single_graph(
                num_vertices=n, num_labels=20, average_degree=3.0,
                num_large_patterns=1, large_pattern_vertices=8, large_pattern_support=2,
                num_small_patterns=0, small_pattern_vertices=3, small_pattern_support=2,
                seed=1, model="barabasi_albert",
            )
            counts.append(len(mine_spiders(data.graph, min_support=2, max_spider_size=4)))
        assert counts[1] > counts[0]
