"""Unit tests for the single-graph baselines: SUBDUE, SEuS, MoSS, GREW."""

from __future__ import annotations


from repro.baselines import (
    Moss,
    MossConfig,
    Seus,
    SeusConfig,
    Subdue,
    SubdueConfig,
    SummaryGraph,
    run_grew,
    run_moss,
    run_seus,
    run_subdue,
)
from repro.graph import LabeledGraph, subgraph_exists
from tests.conftest import build_path


def repeated_motif_graph(copies: int = 3) -> LabeledGraph:
    """``copies`` disjoint copies of a 4-vertex motif plus some noise edges."""
    graph = LabeledGraph()
    for c in range(copies):
        base = 10 * c
        graph.add_vertex(base + 0, "A")
        graph.add_vertex(base + 1, "B")
        graph.add_vertex(base + 2, "C")
        graph.add_vertex(base + 3, "D")
        graph.add_edge(base + 0, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base + 2, base + 3)
        graph.add_edge(base + 0, base + 2)
    # Noise: a couple of vertices with unique labels.
    graph.add_vertex(900, "X")
    graph.add_vertex(901, "Y")
    graph.add_edge(900, 901)
    return graph


class TestSubdue:
    def test_finds_repeated_motif_structure(self):
        graph = repeated_motif_graph()
        result = run_subdue(graph, num_best=5)
        assert result.algorithm == "SUBDUE"
        assert result.patterns
        best = result.patterns[0]
        # The best-compressing substructure must occur inside the motif copies.
        assert subgraph_exists(best.graph, graph)
        assert best.num_vertices >= 2

    def test_num_best_respected(self):
        result = run_subdue(repeated_motif_graph(), num_best=3)
        assert len(result.patterns) <= 3

    def test_prefers_frequent_small_over_rare_large(self):
        """The paper's observation: SUBDUE output shifts toward small patterns
        when small patterns are highly frequent."""
        graph = repeated_motif_graph(copies=2)
        # Add a very frequent tiny motif (E-F edge, 8 copies).
        for i in range(8):
            graph.add_vertex(500 + 2 * i, "E")
            graph.add_vertex(501 + 2 * i, "F")
            graph.add_edge(500 + 2 * i, 501 + 2 * i)
        result = run_subdue(graph, num_best=1)
        labels = set(result.patterns[0].graph.label_set())
        assert labels <= {"E", "F"}

    def test_min_instances_filter(self):
        graph = repeated_motif_graph(copies=2)
        result = Subdue(graph, SubdueConfig(min_instances=3, num_best=5)).mine()
        # Motif-only structures appear twice; with min_instances=3 only
        # sub-structures occurring three times (single labels/edges across noise)
        # can be reported; the 4-vertex motif cannot.
        assert all(p.num_vertices < 4 for p in result.patterns)

    def test_runtime_recorded(self):
        result = run_subdue(repeated_motif_graph(), num_best=2)
        assert result.runtime_seconds > 0


class TestSeus:
    def test_summary_graph_counts(self):
        graph = repeated_motif_graph(copies=2)
        summary = SummaryGraph(graph)
        assert summary.vertex_bound("A") == 2
        assert summary.edge_bound("A", "B") == 2
        assert summary.edge_bound("A", "D") == 0

    def test_summary_pattern_bound(self):
        graph = repeated_motif_graph(copies=2)
        summary = SummaryGraph(graph)
        pattern = build_path(["A", "B", "C"])
        assert summary.pattern_bound(pattern) == 2
        rare = build_path(["A", "X"])
        assert summary.pattern_bound(rare) == 0

    def test_finds_frequent_patterns(self):
        graph = repeated_motif_graph()
        result = run_seus(graph, min_support=2)
        assert result.algorithm == "SEuS"
        assert result.patterns
        for pattern in result.patterns:
            assert subgraph_exists(pattern.graph, graph)

    def test_returns_small_structures(self):
        """The paper: SEuS returns mostly small structures."""
        graph = repeated_motif_graph()
        result = Seus(graph, SeusConfig(min_support=2, max_pattern_edges=4)).mine()
        assert result.largest_size_vertices <= 5

    def test_support_threshold_prunes(self):
        graph = repeated_motif_graph(copies=2)
        loose = run_seus(graph, min_support=2)
        strict = run_seus(graph, min_support=3)
        assert len(strict.patterns) <= len(loose.patterns)


class TestMoss:
    def test_complete_enumeration_on_tiny_graph(self, two_copy_graph):
        result = run_moss(two_copy_graph, min_support=2, max_edges=3)
        # Frequent patterns in two disjoint triangles: A-B, B-C, A-C edges,
        # three 2-edge paths, and the triangle itself (plus nothing else).
        assert result.parameters["completed"] is True
        assert len(result.patterns) == 7

    def test_finds_largest_pattern(self, two_copy_graph):
        result = run_moss(two_copy_graph, min_support=2, max_edges=4)
        assert result.largest_size_vertices == 3

    def test_time_budget_marks_incomplete(self):
        graph = repeated_motif_graph(copies=4)
        result = run_moss(graph, min_support=2, max_edges=30, time_budget_seconds=0.0)
        assert result.parameters["completed"] is False

    def test_max_edges_budget(self):
        graph = repeated_motif_graph()
        result = run_moss(graph, min_support=2, max_edges=2)
        assert all(p.num_edges <= 2 for p in result.patterns)

    def test_patterns_meet_support(self, two_copy_graph):
        result = run_moss(two_copy_graph, min_support=2, max_edges=3)
        for pattern in result.patterns:
            assert len(pattern.embeddings) >= 2

    def test_closed_only_filter(self, two_copy_graph):
        config = MossConfig(min_support=2, max_edges=3, closed_only=True)
        result = Moss(two_copy_graph, config).mine()
        # Only the triangle is closed: every smaller pattern has a superpattern
        # with identical support.
        assert len(result.patterns) == 1
        assert result.patterns[0].num_edges == 3


class TestGrew:
    def test_finds_vertex_disjoint_motifs(self):
        graph = repeated_motif_graph()
        result = run_grew(graph, min_support=2)
        assert result.algorithm == "GREW"
        assert result.patterns
        for pattern in result.patterns:
            assert subgraph_exists(pattern.graph, graph)

    def test_iterative_merging_grows_patterns(self):
        graph = repeated_motif_graph(copies=4)
        shallow = run_grew(graph, min_support=2, max_iterations=1)
        deep = run_grew(graph, min_support=2, max_iterations=6)
        assert deep.largest_size_vertices >= shallow.largest_size_vertices

    def test_min_support_respected(self):
        graph = repeated_motif_graph(copies=2)
        result = run_grew(graph, min_support=3)
        # Only structures with >= 3 vertex-disjoint instances can be reported;
        # the motif itself appears only twice.
        assert all(p.num_vertices < 4 for p in result.patterns)
