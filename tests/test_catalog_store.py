"""The content-addressed catalog store (repro.catalog.store)."""

from __future__ import annotations

import json

import pytest

from repro.catalog import CatalogError, CatalogStore
from repro.catalog.formats import graph_digest
from repro.graph import FrozenGraph, LabeledGraph, freeze


def two_triangles() -> LabeledGraph:
    graph = LabeledGraph()
    for base in (0, 10):
        graph.add_vertex(base + 0, "A")
        graph.add_vertex(base + 1, "B")
        graph.add_vertex(base + 2, "C")
        graph.add_edge(base + 0, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base + 0, base + 2)
    return graph


class TestGraphObjects:
    def test_put_get_round_trip_both_backends(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        graph = two_triangles()
        digest = store.put_graph(graph)
        assert digest == graph_digest(graph)
        assert store.has_graph(digest)

        as_dict = store.get_graph(digest, backend="dict")
        as_csr = store.get_graph(digest, backend="csr")
        assert isinstance(as_dict, LabeledGraph)
        assert isinstance(as_csr, FrozenGraph)
        assert as_dict == graph
        assert as_csr == graph

    def test_content_addressing_deduplicates(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        digest_a = store.put_graph(two_triangles())
        digest_b = store.put_graph(freeze(two_triangles()))
        assert digest_a == digest_b
        assert len(list(store.graphs_dir.glob("*.json"))) == 1

    def test_missing_graph_raises(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        with pytest.raises(CatalogError):
            store.get_graph("0" * 64)

    def test_pinned_flag_sticks(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        digest = store.put_graph(two_triangles(), pinned=True)
        store.put_graph(two_triangles())  # unpinned re-put must not unpin
        assert store.list_graphs()[digest]["pinned"] is True


class TestRunObjects:
    def test_put_get_list(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        payload = {"format": 1, "kind": "result", "result": {"patterns": []}}
        meta = {"kind": "result", "graph_digest": "g" * 64, "num_patterns": 0}
        run_id = store.put_run("r1", payload, meta)
        assert run_id == "r1"
        assert store.has_run("r1")
        assert store.get_run_payload("r1") == payload
        runs = store.list_runs()
        assert len(runs) == 1
        assert runs[0]["run_id"] == "r1"
        assert runs[0]["kind"] == "result"
        assert "created_at" in runs[0]

    def test_list_filters_by_kind(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        store.put_run("a", {"x": 1}, {"kind": "result"})
        store.put_run("b", {"x": 2}, {"kind": "spiders"})
        assert [r["run_id"] for r in store.list_runs(kind="spiders")] == ["b"]

    def test_missing_run_raises(self, tmp_path):
        with pytest.raises(CatalogError):
            CatalogStore(tmp_path / "cat").get_run_payload("nope")

    def test_index_survives_reopen(self, tmp_path):
        root = tmp_path / "cat"
        CatalogStore(root).put_run("a", {"x": 1}, {"kind": "result"})
        reopened = CatalogStore(root)
        assert reopened.has_run("a")
        assert reopened.list_runs()[0]["run_id"] == "a"

    def test_corrupt_index_raises_catalog_error(self, tmp_path):
        root = tmp_path / "cat"
        store = CatalogStore(root)
        store.put_run("a", {"x": 1}, {"kind": "result"})
        store.index_path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CatalogError):
            CatalogStore(root).list_runs()


class TestGc:
    def test_drops_index_entries_without_files(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        store.put_run("a", {"x": 1}, {"kind": "result"})
        (store.runs_dir / "a.json").unlink()
        removed = store.gc()
        assert removed["runs"] == 1
        assert store.list_runs() == []

    def test_deletes_stray_files(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        store.put_run("a", {"x": 1}, {"kind": "result"})
        stray = store.runs_dir / "deadbeef.json"
        stray.write_text("{}", encoding="utf-8")
        removed = store.gc()
        assert removed["stray_files"] == 1
        assert not stray.exists()
        assert store.has_run("a")

    def test_unreferenced_unpinned_graph_is_collected(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        unpinned = store.put_graph(two_triangles())
        pinned_graph = LabeledGraph()
        pinned_graph.add_vertex(0, "X")
        pinned = store.put_graph(pinned_graph, pinned=True)

        removed = store.gc()
        assert removed["graphs"] == 1
        assert not store.has_graph(unpinned)
        assert store.has_graph(pinned)

    def test_run_referenced_graph_survives(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        digest = store.put_graph(two_triangles())
        store.put_run(
            "a", {"x": 1}, {"kind": "result", "graph_digest": digest}
        )
        removed = store.gc()
        assert removed["graphs"] == 0
        assert store.has_graph(digest)

    def test_recovers_valid_unindexed_run(self, tmp_path):
        """A lost index update (concurrent writers) is repaired, not evicted."""
        from repro import CachePolicy, SpiderMine, SpiderMineConfig

        root = tmp_path / "cat"
        graph = two_triangles()
        config = SpiderMineConfig(
            min_support=2, k=2, d_max=2, seed=0, cache=CachePolicy.at(root)
        )
        SpiderMine(graph, config).mine()
        store = CatalogStore(root)
        before = {run["run_id"]: run for run in store.list_runs()}
        assert before

        # Simulate the lost update: wipe the index, keep the objects.
        store.index_path.write_text(
            '{"format": 1, "graphs": {}, "runs": {}}', encoding="utf-8"
        )
        assert store.list_runs() == []

        removed = store.gc()
        assert removed["recovered"] >= len(before)
        after = {run["run_id"]: run for run in store.list_runs()}
        assert set(after) == set(before)
        for run_id, meta in before.items():
            rebuilt = dict(after[run_id])
            original = dict(meta)
            rebuilt.pop("created_at")
            original.pop("created_at")
            assert rebuilt == original

    def test_misnamed_run_file_is_deleted_not_recovered(self, tmp_path):
        """A run object whose filename is not its key's content address is a
        stray: re-indexing it would poison lookups of the squatted id."""
        from repro import CachePolicy, SpiderMine, SpiderMineConfig

        root = tmp_path / "cat"
        config = SpiderMineConfig(
            min_support=2, k=2, d_max=2, seed=0, cache=CachePolicy.at(root)
        )
        SpiderMine(two_triangles(), config).mine()
        store = CatalogStore(root)
        run_id = store.list_runs()[0]["run_id"]

        misnamed = store.runs_dir / f"{'f' * 64}.json"
        (store.runs_dir / f"{run_id}.json").rename(misnamed)
        store.index_path.write_text(
            '{"format": 1, "graphs": {}, "runs": {}}', encoding="utf-8"
        )
        removed = store.gc()
        assert not misnamed.exists()
        assert removed["stray_files"] >= 1
        assert all(run["run_id"] != "f" * 64 for run in store.list_runs())

    def test_recovered_graph_comes_back_unpinned(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        digest = store.put_graph(two_triangles(), pinned=True)
        store.index_path.write_text(
            '{"format": 1, "graphs": {}, "runs": {}}', encoding="utf-8"
        )
        removed = store.gc()
        # Recovered (unpinned), then collected in the same pass: no run
        # references it, so the orphaned snapshot ages out.
        assert removed["recovered"] == 1
        assert removed["graphs"] == 1
        assert not store.has_graph(digest)

    def test_index_files_are_sorted_json(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        store.put_run("b", {"x": 1}, {"kind": "result"})
        store.put_run("a", {"x": 2}, {"kind": "spiders"})
        text = store.index_path.read_text(encoding="utf-8")
        data = json.loads(text)
        assert list(data["runs"]) == sorted(data["runs"])
