"""Unit tests for the single-graph support measures."""

from __future__ import annotations

import pytest

from repro.graph import LabeledGraph
from repro.patterns import (
    Embedding,
    Pattern,
    SupportMeasure,
    compute_support,
    edge_disjoint_support,
    embedding_image_support,
    harmful_overlap_support,
    is_frequent,
    select_disjoint_embeddings,
)
from tests.conftest import build_path


def chain_graph(length: int, label: str = "A") -> LabeledGraph:
    """A path of ``length`` vertices all with the same label."""
    graph = LabeledGraph()
    for i in range(length):
        graph.add_vertex(i, label)
    for i in range(length - 1):
        graph.add_edge(i, i + 1)
    return graph


def edge_pattern(label: str = "A") -> Pattern:
    pattern = Pattern(graph=build_path([label, label]))
    return pattern


class TestEmbeddingImageSupport:
    def test_counts_distinct_images(self):
        embeddings = [
            Embedding.from_dict({0: 1, 1: 2}),
            Embedding.from_dict({0: 2, 1: 1}),   # same image, other direction
            Embedding.from_dict({0: 3, 1: 4}),
        ]
        assert embedding_image_support(embeddings) == 2

    def test_empty(self):
        assert embedding_image_support([]) == 0


class TestOverlapAwareSupport:
    def test_chain_of_three_vertices(self):
        """A-A-A chain: 2 embeddings of the A-A edge overlap on the middle vertex."""
        graph = chain_graph(3)
        pattern = edge_pattern()
        pattern.recompute_embeddings(graph)
        assert embedding_image_support(pattern.embeddings) == 2
        # Vertex-overlap (harmful) MIS: the two embeddings share vertex 1.
        assert harmful_overlap_support(pattern.embeddings, pattern.graph) == 1
        # Edge-disjoint MIS: the two embeddings use different edges.
        assert edge_disjoint_support(pattern.embeddings, pattern.graph) == 2

    def test_chain_of_five_vertices(self):
        graph = chain_graph(5)
        pattern = edge_pattern()
        pattern.recompute_embeddings(graph)
        assert harmful_overlap_support(pattern.embeddings, pattern.graph) == 2
        assert edge_disjoint_support(pattern.embeddings, pattern.graph) == 4

    def test_disjoint_copies(self, two_copy_graph):
        pattern = Pattern(graph=build_path(["A", "B"]))
        pattern.recompute_embeddings(two_copy_graph)
        assert harmful_overlap_support(pattern.embeddings, pattern.graph) == 2
        assert edge_disjoint_support(pattern.embeddings, pattern.graph) == 2

    def test_single_vertex_pattern_edge_disjoint(self, two_copy_graph):
        pattern = Pattern.single_vertex("A", two_copy_graph)
        assert edge_disjoint_support(pattern.embeddings, pattern.graph) == 2

    def test_empty_embeddings(self):
        pattern = edge_pattern()
        assert harmful_overlap_support([], pattern.graph) == 0
        assert edge_disjoint_support([], pattern.graph) == 0

    def test_edge_disjoint_counts_same_vertex_different_edge_embeddings(self):
        """Regression: dedup must be by *edge* image for the edge-disjoint MIS.

        Pattern 2K2 (two disjoint A-A edges) in a 4-cycle of A vertices has
        two embeddings covering the same four vertices through disjoint edge
        pairs — {01, 23} and {12, 30}.  Deduplicating by vertex image silently
        dropped one of them and reported support 1; the Vanetik-style measure
        counts both.
        """
        cycle = LabeledGraph()
        for i in range(4):
            cycle.add_vertex(i, "A")
        for i in range(4):
            cycle.add_edge(i, (i + 1) % 4)
        two_edges = LabeledGraph()
        for i in range(4):
            two_edges.add_vertex(i, "A")
        two_edges.add_edge(0, 1)
        two_edges.add_edge(2, 3)
        pattern = Pattern(graph=two_edges)
        emb_a = Embedding.from_dict({0: 0, 1: 1, 2: 2, 3: 3})  # edges {01, 23}
        emb_b = Embedding.from_dict({0: 1, 1: 2, 2: 3, 3: 0})  # edges {12, 30}
        assert emb_a.is_valid(pattern.graph, cycle) and emb_b.is_valid(pattern.graph, cycle)
        assert emb_a.image == emb_b.image
        assert not (emb_a.edge_image(pattern.graph) & emb_b.edge_image(pattern.graph))
        embeddings = [emb_a, emb_b]
        assert edge_disjoint_support(embeddings, pattern.graph) == 2
        # Sharing every vertex still collapses the vertex-overlap measures.
        assert harmful_overlap_support(embeddings, pattern.graph) == 1
        assert embedding_image_support(embeddings) == 1
        # And the witnesses themselves are selectable.
        chosen = select_disjoint_embeddings(embeddings, pattern.graph, edge_based=True)
        assert sorted(chosen, key=repr) == sorted(embeddings, key=repr)

    def test_anti_monotonicity_on_chain(self):
        """Harmful-overlap support never increases when the pattern grows."""
        graph = chain_graph(7)
        small = edge_pattern()
        small.recompute_embeddings(graph)
        big = Pattern(graph=build_path(["A", "A", "A"]))
        big.recompute_embeddings(graph)
        assert harmful_overlap_support(big.embeddings, big.graph) <= harmful_overlap_support(
            small.embeddings, small.graph
        )


class TestComputeSupportAndFrequency:
    def test_compute_support_dispatch(self, two_copy_graph):
        pattern = Pattern(graph=build_path(["A", "B"]))
        pattern.recompute_embeddings(two_copy_graph)
        assert compute_support(pattern, SupportMeasure.EMBEDDING_IMAGES) == 2
        assert compute_support(pattern, SupportMeasure.EDGE_DISJOINT) == 2
        assert compute_support(pattern, SupportMeasure.HARMFUL_OVERLAP) == 2

    def test_compute_support_unknown_measure(self, two_copy_graph):
        pattern = Pattern(graph=build_path(["A", "B"]))
        with pytest.raises(ValueError):
            compute_support(pattern, "not-a-measure")  # type: ignore[arg-type]

    def test_is_frequent_threshold(self):
        graph = chain_graph(3)
        pattern = edge_pattern()
        pattern.recompute_embeddings(graph)
        assert is_frequent(pattern, 1)
        assert not is_frequent(pattern, 2)  # harmful overlap collapses to 1
        assert is_frequent(pattern, 2, measure=SupportMeasure.EDGE_DISJOINT)

    def test_is_frequent_zero_threshold(self):
        """A pattern with no embeddings is never frequent, even at threshold <= 0."""
        pattern = edge_pattern()
        assert not is_frequent(pattern, 0)
        assert not is_frequent(pattern, -1)
        pattern.add_embedding(Embedding.from_dict({0: 1, 1: 2}))
        assert is_frequent(pattern, 0)
        assert is_frequent(pattern, -1)

    def test_is_frequent_short_circuits_on_raw_count(self):
        pattern = edge_pattern()
        pattern.add_embedding(Embedding.from_dict({0: 1, 1: 2}))
        assert not is_frequent(pattern, 5)

    def test_string_measure_coerced_by_enum(self):
        assert SupportMeasure("harmful_overlap") is SupportMeasure.HARMFUL_OVERLAP


class TestDisjointSelection:
    def test_select_vertex_disjoint(self):
        graph = chain_graph(5)
        pattern = edge_pattern()
        pattern.recompute_embeddings(graph)
        chosen = select_disjoint_embeddings(pattern.embeddings, pattern.graph)
        assert len(chosen) == 2
        images = [set(e.image) for e in chosen]
        assert not (images[0] & images[1])

    def test_select_edge_disjoint(self):
        graph = chain_graph(4)
        pattern = edge_pattern()
        pattern.recompute_embeddings(graph)
        chosen = select_disjoint_embeddings(pattern.embeddings, pattern.graph, edge_based=True)
        assert len(chosen) == 3

    def test_select_empty(self):
        pattern = edge_pattern()
        assert select_disjoint_embeddings([], pattern.graph) == []
