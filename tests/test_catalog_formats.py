"""Canonical serialisation and digest stability (repro.catalog.formats)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import SpiderMine, SpiderMineConfig, CachePolicy, ExecutionPolicy
from repro.catalog.formats import (
    CatalogFormatError,
    canonical_json,
    config_digest,
    config_payload,
    graph_digest,
    pattern_from_payload,
    pattern_payload,
    payload_digest,
    result_digest,
    result_from_payload,
    result_payload,
    spider_from_payload,
    spider_payload,
    stage1_config_digest,
)
from repro.graph import LabeledGraph, freeze, synthetic_single_graph
from repro.patterns.support import SupportMeasure


def small_mining_graph(seed: int = 5):
    return synthetic_single_graph(
        num_vertices=150, num_labels=25, average_degree=2.0,
        num_large_patterns=1, large_pattern_vertices=8, large_pattern_support=2,
        num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
        seed=seed,
    ).graph


class TestCanonicalJson:
    def test_sorted_keys_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]}) == (
            '{"a":[2,{"c":4,"d":3}],"b":1}'
        )

    def test_non_serialisable_raises_format_error(self):
        with pytest.raises(CatalogFormatError):
            canonical_json({"x": object()})

    def test_payload_digest_is_sha256_hex(self):
        digest = payload_digest({"a": 1})
        assert len(digest) == 64
        assert digest == payload_digest({"a": 1})
        assert digest != payload_digest({"a": 2})


class TestGraphDigest:
    def test_backend_independent(self):
        graph = small_mining_graph()
        assert graph_digest(graph) == graph_digest(freeze(graph))

    def test_insertion_order_independent(self):
        graph = small_mining_graph()
        reordered = LabeledGraph()
        for v in sorted(graph.vertices(), key=repr, reverse=True):
            reordered.add_vertex(v, graph.label(v))
        for u, v in sorted(graph.edges(), key=repr, reverse=True):
            reordered.add_edge(u, v)
        assert graph_digest(graph) == graph_digest(reordered)

    def test_structure_sensitive(self):
        a = LabeledGraph()
        a.add_vertex(0, "A")
        a.add_vertex(1, "B")
        a.add_edge(0, 1)
        b = LabeledGraph()
        b.add_vertex(0, "A")
        b.add_vertex(1, "B")
        c = LabeledGraph()
        c.add_vertex(0, "A")
        c.add_vertex(1, "C")
        c.add_edge(0, 1)
        digests = {graph_digest(g) for g in (a, b, c)}
        assert len(digests) == 3


class TestConfigDigest:
    def test_execution_and_cache_are_neutral(self):
        base = SpiderMineConfig(min_support=2, k=4)
        parallel = SpiderMineConfig(
            min_support=2, k=4, execution=ExecutionPolicy.process_pool(4)
        )
        cached = SpiderMineConfig(
            min_support=2, k=4, cache=CachePolicy.at("/tmp/nowhere")
        )
        assert config_digest(base) == config_digest(parallel) == config_digest(cached)

    def test_result_affecting_fields_invalidate(self):
        base = SpiderMineConfig(min_support=2, k=4)
        assert config_digest(base) != config_digest(SpiderMineConfig(min_support=3, k=4))
        assert config_digest(base) != config_digest(SpiderMineConfig(min_support=2, k=5))
        assert config_digest(base) != config_digest(
            SpiderMineConfig(min_support=2, k=4, seed=1)
        )

    def test_stage1_digest_ignores_later_stage_knobs(self):
        base = SpiderMineConfig(min_support=2, k=4)
        other_k = SpiderMineConfig(min_support=2, k=9, d_max=8)
        assert stage1_config_digest(base) == stage1_config_digest(other_k)
        assert stage1_config_digest(base) != stage1_config_digest(
            SpiderMineConfig(min_support=2, k=4, radius=2)
        )

    def test_config_field_partition_via_reprolint(self):
        """Every config field is classified in exactly one cache-key partition.

        The single source of truth for this invariant is reprolint's CACHE001
        rule (``repro.lint.rules.cachekey``), which checks the declared
        partition sets in catalog/formats.py against SpiderMineConfig
        statically.  If this fails because you added a SpiderMineConfig
        field: add it to exactly one of STAGE1_CONFIG_FIELDS,
        STAGE2_ONLY_CONFIG_FIELDS or _RESULT_NEUTRAL_CONFIG_FIELDS.  Never
        let a Stage-I-relevant field into STAGE2_ONLY_CONFIG_FIELDS: that
        would serve stale spiders.
        """
        from repro.lint import LintConfig, Project, lint_project

        src_root = Path(__file__).resolve().parents[1] / "src" / "repro"
        project = Project.load(
            [
                src_root / "core" / "config.py",
                src_root / "catalog" / "formats.py",
            ]
        )
        diagnostics = lint_project(project, LintConfig(select=("CACHE001",)))
        assert diagnostics == [], "\n".join(str(d) for d in diagnostics)

    def test_stage1_key_is_deny_list_based(self):
        """Runtime check that the payload matches the declared partition.

        Thin wrapper over the CACHE001-declared sets: the payload builders
        are deny-list-based (a new field lands in BOTH keys until someone
        classifies it), so the Stage-I payload must equal the declared
        STAGE1_CONFIG_FIELDS exactly.
        """
        from dataclasses import fields as dataclass_fields

        from repro.catalog.formats import (
            _RESULT_NEUTRAL_CONFIG_FIELDS,
            STAGE1_CONFIG_FIELDS,
            STAGE2_ONLY_CONFIG_FIELDS,
            stage1_config_payload,
        )

        config = SpiderMineConfig()
        payload = stage1_config_payload(config)
        every_field = {f.name for f in dataclass_fields(config)}
        assert set(payload) == (
            every_field - _RESULT_NEUTRAL_CONFIG_FIELDS - STAGE2_ONLY_CONFIG_FIELDS
        )
        assert set(payload) == STAGE1_CONFIG_FIELDS

    def test_support_measure_serialised_by_value(self):
        config = SpiderMineConfig(support_measure=SupportMeasure.EDGE_DISJOINT)
        assert (
            config_payload(config)["support_measure"]
            == SupportMeasure.EDGE_DISJOINT.value
        )


class TestRoundTrips:
    @pytest.fixture(scope="class")
    def mined(self):
        graph = freeze(small_mining_graph())
        config = SpiderMineConfig(min_support=2, k=4, d_max=6, seed=0)
        return SpiderMine(graph, config).mine()

    def test_pattern_round_trip(self, mined):
        for pattern in mined.patterns:
            rebuilt = pattern_from_payload(pattern_payload(pattern))
            assert rebuilt.graph == pattern.graph
            assert rebuilt.embeddings == pattern.embeddings
            assert rebuilt.code == pattern.code
            assert pattern_payload(rebuilt) == pattern_payload(pattern)

    def test_spider_round_trip(self):
        from repro.core import mine_spiders

        spiders = mine_spiders(freeze(small_mining_graph()), min_support=2)
        assert spiders
        for spider in spiders[:20]:
            rebuilt = spider_from_payload(spider_payload(spider))
            assert rebuilt.graph == spider.graph
            assert rebuilt.head == spider.head
            assert rebuilt.radius == spider.radius
            assert rebuilt.embeddings == spider.embeddings
            assert rebuilt.spider_code() == spider.spider_code()

    def test_result_round_trip_preserves_digest(self, mined):
        payload = result_payload(mined)
        rebuilt = result_from_payload(payload)
        assert result_payload(rebuilt) == payload
        assert result_digest(rebuilt) == result_digest(mined)
        assert rebuilt.runtime_seconds == mined.runtime_seconds
        assert rebuilt.statistics.to_dict() == mined.statistics.to_dict()
        assert rebuilt.parameters == mined.parameters

    def test_result_digest_ignores_wall_clock_and_execution(self, mined):
        payload = result_payload(mined)
        tweaked = dict(payload)
        tweaked["runtime_seconds"] = 123.456
        tweaked["statistics"] = dict(payload["statistics"])
        tweaked["statistics"]["stage_durations"] = {"stage1_spiders": 9.9}
        tweaked["parameters"] = dict(payload["parameters"])
        tweaked["parameters"]["execution_mode"] = "process"
        tweaked["parameters"]["workers"] = 8
        assert result_digest(tweaked) == result_digest(payload)

    def test_result_digest_sees_pattern_changes(self, mined):
        payload = result_payload(mined)
        truncated = dict(payload)
        truncated["patterns"] = payload["patterns"][:-1]
        assert result_digest(truncated) != result_digest(payload)

    def test_to_json_dict_matches_formats(self, mined):
        assert mined.to_json_dict() == result_payload(mined)
        assert mined.digest() == result_digest(mined)


class TestCrossProcessStability:
    """Digests are stable under string-hash randomisation (satellite task)."""

    PROBE = """
import sys
sys.path.insert(0, {src!r})
from repro import SpiderMine, SpiderMineConfig
from repro.catalog.formats import graph_digest, result_digest
from repro.graph import freeze, synthetic_single_graph

graph = synthetic_single_graph(
    num_vertices=150, num_labels=25, average_degree=2.0,
    num_large_patterns=1, large_pattern_vertices=8, large_pattern_support=2,
    num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
    seed=5,
).graph
result = SpiderMine(freeze(graph), SpiderMineConfig(min_support=2, k=4, d_max=6, seed=0)).mine()
print(graph_digest(graph))
print(result_digest(result))
"""

    def test_digests_stable_across_hash_seeds(self):
        src = str(Path(__file__).resolve().parents[1] / "src")
        outputs = []
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            proc = subprocess.run(
                [sys.executable, "-c", self.PROBE.format(src=src)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout.strip().splitlines())
        assert outputs[0] == outputs[1] == outputs[2]
        assert len(outputs[0]) == 2
