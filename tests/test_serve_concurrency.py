"""Scrape stability under concurrency (the observability regression gate).

The serving tier's contract: ``/metrics`` and ``/stats`` are *unmetered*
(scraping them never changes what they return) and the server's registry is
private when process telemetry is off — so a mine running elsewhere in the
process cannot leak into the scrape.  This suite pins both properties the way
an operator would notice them breaking: sixteen concurrent scrapes during a
live mine must come back byte-identical.

Rides along: the ``--workers`` CLI validation (a bad worker count must die
with an actionable message before any mining work starts).
"""

from __future__ import annotations

import json
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro import open_catalog
from repro.cli import main as cli_main
from repro.graph import synthetic_single_graph
from repro.obs import get_registry


def _mining_graph(seed: int):
    return synthetic_single_graph(
        num_vertices=150, num_labels=20, average_degree=2.0,
        num_large_patterns=1, large_pattern_vertices=9, large_pattern_support=2,
        num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
        seed=seed,
    ).graph


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as resp:
        assert resp.status == 200
        return resp.read()


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    store = tmp_path_factory.mktemp("served-conc") / "cat"
    repro.mine(_mining_graph(11), min_support=2, k=4, d_max=6, catalog=store)
    catalog = open_catalog(store, read_only=True)
    handle = catalog.serve(port=0, background=True)
    yield handle
    handle.close()


class TestScrapeStability:
    def test_process_registry_is_disabled(self):
        # The premise of the isolation below: telemetry defaults to the
        # NullRegistry, so the server builds its own private registry.
        assert not get_registry().enabled

    def test_metrics_and_stats_stable_under_concurrent_scrape_during_mine(
        self, served
    ):
        """16-way concurrent /metrics and /stats during a live mine.

        Every /metrics response must be byte-identical — scrapes are
        unmetered and the mine (separate graph, cache off, Null process
        registry) has no path into the server's private registry.  /stats
        carries two honestly volatile fields (requests_served,
        uptime_seconds); everything else must agree across all responses.
        """
        mine_done = threading.Event()
        mine_error = []

        def background_mine():
            try:
                repro.mine(_mining_graph(23), min_support=2, k=3, d_max=4)
            except Exception as error:  # pragma: no cover - diagnostic only
                mine_error.append(error)
            finally:
                mine_done.set()

        baseline_metrics = _get(f"{served.url}/metrics")

        miner = threading.Thread(target=background_mine)
        miner.start()
        try:
            with ThreadPoolExecutor(max_workers=16) as pool:
                metrics_bodies = list(
                    pool.map(lambda _: _get(f"{served.url}/metrics"), range(16))
                )
                stats_bodies = list(
                    pool.map(lambda _: _get(f"{served.url}/stats"), range(16))
                )
        finally:
            miner.join(timeout=120)
        assert mine_done.is_set() and not mine_error, mine_error

        assert len(set(metrics_bodies)) == 1, "concurrent /metrics diverged"
        assert metrics_bodies[0] == baseline_metrics, (
            "scraping /metrics (or a mine in another thread) changed /metrics"
        )
        after_metrics = _get(f"{served.url}/metrics")
        assert after_metrics == baseline_metrics

        stable_sections = []
        for body in stats_bodies:
            payload = json.loads(body)
            assert set(payload) == {
                "metrics", "caches", "index_stats",
                "requests_served", "uptime_seconds",
            }
            stable_sections.append(
                (payload["metrics"], payload["caches"], payload["index_stats"])
            )
        assert all(s == stable_sections[0] for s in stable_sections), (
            "concurrent /stats diverged outside the volatile fields"
        )

    def test_scrapes_are_not_counted_in_http_metrics(self, served):
        # /metrics and /stats are in the server's _UNMETERED set: their
        # request counters must not exist no matter how often they are hit.
        for _ in range(3):
            _get(f"{served.url}/metrics")
        flat = json.loads(_get(f"{served.url}/metrics"))
        scrape_keys = [k for k in flat if "metrics" in k or "stats" in k]
        assert scrape_keys == [], scrape_keys


class TestWorkersValidation:
    def run_mine(self, *argv):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["mine", "ignored.lg", *argv])
        return str(excinfo.value)

    def test_zero_workers_is_rejected_before_loading(self):
        message = self.run_mine("--workers", "0")
        assert "--workers must be at least 1" in message

    def test_negative_workers_is_rejected(self):
        message = self.run_mine("--workers", "-3")
        assert "--workers must be at least 1" in message

    def test_oversubscription_is_rejected(self):
        message = self.run_mine("--workers", "4096")
        assert "exceeds" in message and "CPU" in message
