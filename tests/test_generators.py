"""Unit tests for the random graph models and pattern injection."""

from __future__ import annotations

import pytest

from repro.graph import (
    assign_random_labels,
    barabasi_albert_graph,
    erdos_renyi_graph,
    find_embeddings,
    inject_pattern,
    is_connected,
    label_alphabet,
    random_connected_pattern,
    synthetic_single_graph,
    diameter,
)


class TestLabelHelpers:
    def test_label_alphabet(self):
        assert label_alphabet(3) == ["L0", "L1", "L2"]
        assert label_alphabet(2, prefix="X") == ["X0", "X1"]

    def test_label_alphabet_invalid(self):
        with pytest.raises(ValueError):
            label_alphabet(0)

    def test_assign_random_labels_preserves_structure(self, triangle):
        edges_before = set(map(tuple, map(sorted, triangle.edges())))
        assign_random_labels(triangle, ["X", "Y"], seed=1)
        assert set(map(tuple, map(sorted, triangle.edges()))) == edges_before
        assert triangle.label_set() <= {"X", "Y"}


class TestErdosRenyi:
    def test_vertex_and_edge_counts(self):
        graph = erdos_renyi_graph(100, 3.0, 10, seed=1)
        assert graph.num_vertices == 100
        assert abs(graph.average_degree() - 3.0) < 0.5

    def test_labels_from_alphabet(self):
        graph = erdos_renyi_graph(50, 2.0, 5, seed=2)
        assert graph.label_set() <= set(label_alphabet(5))

    def test_determinism(self):
        a = erdos_renyi_graph(60, 2.0, 8, seed=3)
        b = erdos_renyi_graph(60, 2.0, 8, seed=3)
        assert a == b

    def test_zero_degree(self):
        graph = erdos_renyi_graph(10, 0.0, 3, seed=1)
        assert graph.num_edges == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(0, 1.0, 3)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, -1.0, 3)


class TestBarabasiAlbert:
    def test_sizes(self):
        graph = barabasi_albert_graph(80, 2, 10, seed=1)
        assert graph.num_vertices == 80
        # m edges per new vertex beyond the seed core.
        assert graph.num_edges >= 2 * (80 - 3)

    def test_heavy_tail(self):
        graph = barabasi_albert_graph(300, 2, 10, seed=4)
        assert graph.max_degree() > 3 * graph.average_degree()

    def test_connected(self):
        graph = barabasi_albert_graph(100, 1, 5, seed=2)
        assert is_connected(graph)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 0, 3)
        with pytest.raises(ValueError):
            barabasi_albert_graph(2, 3, 3)


class TestRandomConnectedPattern:
    def test_connected_and_sized(self):
        labels = label_alphabet(10)
        pattern = random_connected_pattern(12, labels, seed=1)
        assert pattern.num_vertices == 12
        assert is_connected(pattern)

    def test_single_vertex(self):
        pattern = random_connected_pattern(1, ["A"], seed=1)
        assert pattern.num_vertices == 1
        assert pattern.num_edges == 0

    def test_max_diameter_respected(self):
        labels = label_alphabet(20)
        for seed in range(5):
            pattern = random_connected_pattern(15, labels, seed=seed, max_diameter=4)
            assert diameter(pattern) <= 4

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_connected_pattern(0, ["A"])


class TestInjection:
    def test_injected_pattern_is_embedded(self):
        background = erdos_renyi_graph(80, 2.0, 20, seed=5)
        pattern = random_connected_pattern(6, label_alphabet(20), seed=6)
        record = inject_pattern(background, pattern, copies=3, seed=7)
        assert record.support == 3
        embeddings = find_embeddings(pattern, background, limit=10)
        assert len(embeddings) >= 3

    def test_injected_copies_disjoint(self):
        background = erdos_renyi_graph(80, 2.0, 20, seed=8)
        pattern = random_connected_pattern(5, label_alphabet(20), seed=9)
        record = inject_pattern(background, pattern, copies=4, seed=10)
        images = [set(m.values()) for m in record.embeddings]
        for i in range(len(images)):
            for j in range(i + 1, len(images)):
                assert not (images[i] & images[j])

    def test_injection_capacity_error(self):
        background = erdos_renyi_graph(10, 1.0, 5, seed=1)
        pattern = random_connected_pattern(6, label_alphabet(5), seed=2)
        with pytest.raises(ValueError):
            inject_pattern(background, pattern, copies=3, seed=3)

    def test_injection_with_overlap_allowed(self):
        background = erdos_renyi_graph(12, 1.0, 5, seed=1)
        pattern = random_connected_pattern(6, label_alphabet(5), seed=2)
        record = inject_pattern(background, pattern, copies=3, seed=3, allow_overlap=True)
        assert record.support == 3


class TestSyntheticSingleGraph:
    def test_full_recipe(self):
        data = synthetic_single_graph(
            num_vertices=150, num_labels=30, average_degree=2.0,
            num_large_patterns=2, large_pattern_vertices=10, large_pattern_support=2,
            num_small_patterns=3, small_pattern_vertices=3, small_pattern_support=2,
            seed=11,
        )
        assert data.graph.num_vertices == 150
        assert len(data.large_patterns) == 2
        assert len(data.small_patterns) == 3
        assert data.planted_large_sizes == [10, 10]

    def test_planted_patterns_recoverable_by_matching(self):
        data = synthetic_single_graph(
            num_vertices=120, num_labels=25, average_degree=2.0,
            num_large_patterns=1, large_pattern_vertices=8, large_pattern_support=2,
            num_small_patterns=0, small_pattern_vertices=3, small_pattern_support=2,
            seed=12,
        )
        planted = data.large_patterns[0].pattern
        embeddings = find_embeddings(planted, data.graph, limit=5)
        assert len(embeddings) >= 2

    def test_scale_free_background(self):
        data = synthetic_single_graph(
            num_vertices=150, num_labels=30, average_degree=3.0,
            num_large_patterns=1, large_pattern_vertices=8, large_pattern_support=2,
            num_small_patterns=0, small_pattern_vertices=3, small_pattern_support=2,
            seed=13, model="barabasi_albert",
        )
        assert data.graph.num_vertices == 150

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            synthetic_single_graph(
                num_vertices=50, num_labels=10, average_degree=2.0,
                num_large_patterns=0, large_pattern_vertices=5, large_pattern_support=2,
                num_small_patterns=0, small_pattern_vertices=3, small_pattern_support=2,
                model="unknown",
            )

    def test_max_pattern_diameter_applied(self):
        data = synthetic_single_graph(
            num_vertices=200, num_labels=40, average_degree=2.0,
            num_large_patterns=2, large_pattern_vertices=12, large_pattern_support=2,
            num_small_patterns=0, small_pattern_vertices=3, small_pattern_support=2,
            seed=14, max_pattern_diameter=4,
        )
        for record in data.large_patterns:
            assert diameter(record.pattern) <= 4
