"""Unit tests for the Embedding value object."""

from __future__ import annotations

import pytest

from repro.patterns import Embedding
from tests.conftest import build_path, build_triangle


class TestConstruction:
    def test_from_dict_and_back(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding.to_dict() == {0: 10, 1: 11}
        assert len(embedding) == 2

    def test_order_insensitive_equality(self):
        a = Embedding.from_dict({0: 10, 1: 11})
        b = Embedding.from_dict({1: 11, 0: 10})
        assert a == b
        assert hash(a) == hash(b)

    def test_getitem(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding[1] == 11
        with pytest.raises(KeyError):
            _ = embedding[5]

    def test_iteration(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert dict(iter(embedding)) == {0: 10, 1: 11}


class TestImages:
    def test_vertex_image(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding.image == frozenset({10, 11})

    def test_edge_image(self):
        pattern = build_path(["A", "B", "C"])
        embedding = Embedding.from_dict({0: 5, 1: 6, 2: 7})
        assert embedding.edge_image(pattern) == frozenset({(5, 6), (6, 7)})

    def test_images_are_memoised(self):
        pattern = build_path(["A", "B"])
        embedding = Embedding.from_dict({0: 1, 1: 2})
        assert embedding.image is embedding.image
        assert embedding.edge_image(pattern) is embedding.edge_image(pattern)

    def test_edge_image_cache_invalidated_by_pattern_growth(self):
        pattern = build_path(["A", "B", "C"])
        embedding = Embedding.from_dict({0: 5, 1: 6, 2: 7})
        assert embedding.edge_image(pattern) == frozenset({(5, 6), (6, 7)})
        pattern.add_edge(0, 2)  # in-place growth must not serve the stale image
        assert embedding.edge_image(pattern) == frozenset({(5, 6), (6, 7), (5, 7)})

    def test_edge_image_cache_invalidated_by_constant_count_rewrite(self):
        """A remove+add rewrite keeps num_edges constant; the cache must still miss."""
        pattern = build_path(["A", "B", "C"])
        embedding = Embedding.from_dict({0: 5, 1: 6, 2: 7})
        assert embedding.edge_image(pattern) == frozenset({(5, 6), (6, 7)})
        pattern.remove_edge(1, 2)
        pattern.add_edge(0, 2)
        assert embedding.edge_image(pattern) == frozenset({(5, 6), (5, 7)})

    def test_edge_image_matches_occurrence_normalisation(self):
        """One shared normalise_edge: Embedding and Occurrence can never drift."""
        from repro.core import Occurrence

        pattern = build_path(["A", "A"])
        embedding = Embedding.from_dict({0: 9, 1: 2})  # repr order flips the endpoints
        occurrence = Occurrence.from_embedding(pattern, embedding)
        assert embedding.edge_image(pattern) == occurrence.edges

    def test_pickle_drops_derived_caches(self):
        import pickle

        pattern = build_path(["A", "B"])
        embedding = Embedding.from_dict({0: 1, 1: 2})
        _ = embedding.image, embedding.edge_image(pattern), embedding[0]
        clone = pickle.loads(pickle.dumps(embedding))
        assert clone == embedding
        assert "_image_cache" not in clone.__dict__
        assert "_edge_image_cache" not in clone.__dict__
        assert clone.image == embedding.image  # re-derived on demand

    def test_overlap_detection(self):
        a = Embedding.from_dict({0: 1, 1: 2})
        b = Embedding.from_dict({0: 2, 1: 3})
        c = Embedding.from_dict({0: 4, 1: 5})
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_shares_edge(self):
        pattern = build_path(["A", "B"])
        a = Embedding.from_dict({0: 1, 1: 2})
        b = Embedding.from_dict({0: 2, 1: 1})
        c = Embedding.from_dict({0: 2, 1: 3})
        assert a.shares_edge(b, pattern, pattern)
        assert not a.shares_edge(c, pattern, pattern)


class TestTransformations:
    def test_restrict(self):
        embedding = Embedding.from_dict({0: 10, 1: 11, 2: 12})
        restricted = embedding.restrict([0, 2])
        assert restricted.to_dict() == {0: 10, 2: 12}

    def test_compose_rename(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        renamed = embedding.compose_rename({0: "a", 1: "b"})
        assert renamed.to_dict() == {"a": 10, "b": 11}


class TestValidity:
    def test_is_injective(self):
        assert Embedding.from_dict({0: 1, 1: 2}).is_injective()
        assert not Embedding.from_dict({0: 1, 1: 1}).is_injective()

    def test_is_valid_true(self, triangle):
        pattern = build_triangle()
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 2})
        assert embedding.is_valid(pattern, triangle)

    def test_is_valid_missing_vertex(self, triangle):
        pattern = build_triangle()
        embedding = Embedding.from_dict({0: 0, 1: 1})
        assert not embedding.is_valid(pattern, triangle)

    def test_is_valid_label_mismatch(self, triangle):
        pattern = build_triangle(("A", "B", "Z"))
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 2})
        assert not embedding.is_valid(pattern, triangle)

    def test_is_valid_missing_edge(self, path4):
        pattern = build_triangle(("A", "B", "C"))
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 2})
        assert not embedding.is_valid(pattern, path4)

    def test_is_valid_non_injective(self, triangle):
        pattern = build_triangle(("A", "B", "A"))
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 0})
        assert not embedding.is_valid(pattern, triangle)

    def test_is_valid_vertex_not_in_graph(self, triangle):
        pattern = build_triangle()
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 42})
        assert not embedding.is_valid(pattern, triangle)
