"""Unit tests for the Embedding value object."""

from __future__ import annotations

import pytest

from repro.patterns import Embedding
from tests.conftest import build_path, build_triangle


class TestConstruction:
    def test_from_dict_and_back(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding.to_dict() == {0: 10, 1: 11}
        assert len(embedding) == 2

    def test_order_insensitive_equality(self):
        a = Embedding.from_dict({0: 10, 1: 11})
        b = Embedding.from_dict({1: 11, 0: 10})
        assert a == b
        assert hash(a) == hash(b)

    def test_getitem(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding[1] == 11
        with pytest.raises(KeyError):
            _ = embedding[5]

    def test_iteration(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert dict(iter(embedding)) == {0: 10, 1: 11}


class TestImages:
    def test_vertex_image(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        assert embedding.image == frozenset({10, 11})

    def test_edge_image(self):
        pattern = build_path(["A", "B", "C"])
        embedding = Embedding.from_dict({0: 5, 1: 6, 2: 7})
        assert embedding.edge_image(pattern) == frozenset({(5, 6), (6, 7)})

    def test_overlap_detection(self):
        a = Embedding.from_dict({0: 1, 1: 2})
        b = Embedding.from_dict({0: 2, 1: 3})
        c = Embedding.from_dict({0: 4, 1: 5})
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_shares_edge(self):
        pattern = build_path(["A", "B"])
        a = Embedding.from_dict({0: 1, 1: 2})
        b = Embedding.from_dict({0: 2, 1: 1})
        c = Embedding.from_dict({0: 2, 1: 3})
        assert a.shares_edge(b, pattern, pattern)
        assert not a.shares_edge(c, pattern, pattern)


class TestTransformations:
    def test_restrict(self):
        embedding = Embedding.from_dict({0: 10, 1: 11, 2: 12})
        restricted = embedding.restrict([0, 2])
        assert restricted.to_dict() == {0: 10, 2: 12}

    def test_compose_rename(self):
        embedding = Embedding.from_dict({0: 10, 1: 11})
        renamed = embedding.compose_rename({0: "a", 1: "b"})
        assert renamed.to_dict() == {"a": 10, "b": 11}


class TestValidity:
    def test_is_injective(self):
        assert Embedding.from_dict({0: 1, 1: 2}).is_injective()
        assert not Embedding.from_dict({0: 1, 1: 1}).is_injective()

    def test_is_valid_true(self, triangle):
        pattern = build_triangle()
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 2})
        assert embedding.is_valid(pattern, triangle)

    def test_is_valid_missing_vertex(self, triangle):
        pattern = build_triangle()
        embedding = Embedding.from_dict({0: 0, 1: 1})
        assert not embedding.is_valid(pattern, triangle)

    def test_is_valid_label_mismatch(self, triangle):
        pattern = build_triangle(("A", "B", "Z"))
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 2})
        assert not embedding.is_valid(pattern, triangle)

    def test_is_valid_missing_edge(self, path4):
        pattern = build_triangle(("A", "B", "C"))
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 2})
        assert not embedding.is_valid(pattern, path4)

    def test_is_valid_non_injective(self, triangle):
        pattern = build_triangle(("A", "B", "A"))
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 0})
        assert not embedding.is_valid(pattern, triangle)

    def test_is_valid_vertex_not_in_graph(self, triangle):
        pattern = build_triangle()
        embedding = Embedding.from_dict({0: 0, 1: 1, 2: 42})
        assert not embedding.is_valid(pattern, triangle)
