"""Unit tests for the Pattern object and pattern collections."""

from __future__ import annotations

import pytest

from repro.patterns import (
    Embedding,
    Pattern,
    deduplicate_patterns,
    sort_patterns_by_size,
    top_k_patterns,
)
from tests.conftest import build_path, build_star, build_triangle


class TestConstruction:
    def test_from_subgraph(self, two_copy_graph):
        pattern = Pattern.from_subgraph(two_copy_graph, [0, 1, 2])
        assert pattern.num_vertices == 3
        assert pattern.num_edges == 3
        assert pattern.support == 1
        assert pattern.verify_embeddings(two_copy_graph)

    def test_single_vertex_with_data_graph(self, two_copy_graph):
        pattern = Pattern.single_vertex("A", two_copy_graph)
        assert pattern.num_vertices == 1
        assert pattern.support == 2

    def test_single_vertex_without_data_graph(self):
        pattern = Pattern.single_vertex("A")
        assert pattern.support == 0

    def test_size_is_edge_count(self, triangle):
        pattern = Pattern(graph=build_triangle())
        assert pattern.size == 3

    def test_diameter(self):
        assert Pattern(graph=build_path(["A", "B", "C"])).diameter() == 2
        assert Pattern(graph=build_triangle()).diameter() == 1


class TestCode:
    def test_code_cached_and_isomorphism(self):
        a = Pattern(graph=build_triangle())
        b = Pattern(graph=build_triangle().relabeled({0: 5, 1: 6, 2: 7}))
        assert a.code == b.code
        assert a.is_isomorphic_to(b)

    def test_invalidate_code(self):
        pattern = Pattern(graph=build_path(["A", "B"]))
        first = pattern.code
        pattern.graph.add_vertex(9, "C")
        pattern.graph.add_edge(1, 9)
        pattern.invalidate_code()
        assert pattern.code != first

    def test_not_isomorphic_different_size(self):
        a = Pattern(graph=build_path(["A", "B"]))
        b = Pattern(graph=build_path(["A", "B", "C"]))
        assert not a.is_isomorphic_to(b)


class TestEmbeddingManagement:
    def test_add_and_dedupe(self, two_copy_graph):
        pattern = Pattern.single_vertex("A", two_copy_graph)
        pattern.add_embedding(Embedding.from_dict({0: 0}))
        assert pattern.support == 3
        pattern.deduplicate_embeddings()
        assert pattern.support == 2

    def test_covered_vertices(self, two_copy_graph):
        pattern = Pattern.single_vertex("A", two_copy_graph)
        assert pattern.covered_vertices() == {0, 10}

    def test_recompute_embeddings(self, two_copy_graph):
        pattern = Pattern(graph=build_triangle())
        pattern.recompute_embeddings(two_copy_graph)
        assert pattern.support == 2
        assert pattern.verify_embeddings(two_copy_graph)

    def test_verify_embeddings_detects_bad_mapping(self, two_copy_graph):
        pattern = Pattern(graph=build_triangle())
        pattern.add_embedding(Embedding.from_dict({0: 0, 1: 1, 2: 99}))
        assert not pattern.verify_embeddings(two_copy_graph)

    def test_contains_pattern(self):
        triangle = Pattern(graph=build_triangle(("A", "A", "A")))
        edge = Pattern(graph=build_path(["A", "A"]))
        assert triangle.contains_pattern(edge)
        assert not edge.contains_pattern(triangle)

    def test_copy_is_shallow_embedding_list(self, two_copy_graph):
        pattern = Pattern.single_vertex("A", two_copy_graph)
        clone = pattern.copy()
        clone.add_embedding(Embedding.from_dict({0: 1}))
        assert pattern.support == 2
        assert clone.support == 3


class TestCollections:
    def make_patterns(self):
        return [
            Pattern(graph=build_path(["A", "B"])),                  # 2 vertices, 1 edge
            Pattern(graph=build_triangle()),                        # 3 vertices, 3 edges
            Pattern(graph=build_star("H", ("A", "B", "C", "D"))),   # 5 vertices, 4 edges
            Pattern(graph=build_path(["A", "B", "C"])),             # 3 vertices, 2 edges
        ]

    def test_sort_by_vertices(self):
        ranked = sort_patterns_by_size(self.make_patterns(), by="vertices")
        assert [p.num_vertices for p in ranked] == [5, 3, 3, 2]

    def test_sort_by_edges(self):
        ranked = sort_patterns_by_size(self.make_patterns(), by="edges")
        assert [p.num_edges for p in ranked] == [4, 3, 2, 1]

    def test_sort_by_both(self):
        ranked = sort_patterns_by_size(self.make_patterns(), by="both")
        assert ranked[0].num_vertices == 5

    def test_sort_invalid_key(self):
        with pytest.raises(ValueError):
            sort_patterns_by_size(self.make_patterns(), by="weight")

    def test_top_k(self):
        top = top_k_patterns(self.make_patterns(), 2)
        assert len(top) == 2
        assert top[0].num_vertices == 5

    def test_top_k_negative(self):
        with pytest.raises(ValueError):
            top_k_patterns(self.make_patterns(), -1)

    def test_top_k_larger_than_population(self):
        top = top_k_patterns(self.make_patterns(), 50)
        assert len(top) == 4

    def test_deduplicate_merges_embeddings(self, two_copy_graph):
        first = Pattern(graph=build_triangle())
        first.recompute_embeddings(two_copy_graph, limit=1)
        second = Pattern(graph=build_triangle().relabeled({0: 7, 1: 8, 2: 9}))
        second.recompute_embeddings(two_copy_graph)
        merged = deduplicate_patterns([first, second])
        assert len(merged) == 1
        assert merged[0].support == 2
