"""Unit tests for the VF2-style subgraph isomorphism matcher."""

from __future__ import annotations


from repro.graph import (
    LabeledGraph,
    SubgraphMatcher,
    are_isomorphic,
    count_automorphisms,
    embedding_edge_image,
    embedding_image,
    find_embeddings,
    subgraph_exists,
)
from tests.conftest import build_path, build_star, build_triangle


class TestFindEmbeddings:
    def test_single_vertex_pattern(self, two_copy_graph):
        pattern = LabeledGraph()
        pattern.add_vertex("p", "A")
        embeddings = find_embeddings(pattern, two_copy_graph)
        assert {e["p"] for e in embeddings} == {0, 10}

    def test_edge_pattern_counts(self, two_copy_graph):
        pattern = build_path(["A", "B"])
        embeddings = find_embeddings(pattern, two_copy_graph)
        assert len(embeddings) == 2

    def test_triangle_in_two_copies(self, two_copy_graph):
        pattern = build_triangle()
        embeddings = find_embeddings(pattern, two_copy_graph)
        images = {frozenset(e.values()) for e in embeddings}
        assert images == {frozenset({0, 1, 2}), frozenset({10, 11, 12})}

    def test_no_embedding_when_label_missing(self, triangle):
        pattern = LabeledGraph()
        pattern.add_vertex(0, "MISSING")
        assert find_embeddings(pattern, triangle) == []

    def test_pattern_larger_than_target(self, triangle):
        pattern = build_path(["A", "B", "C", "D", "E"])
        assert find_embeddings(pattern, triangle) == []

    def test_limit_caps_results(self, two_copy_graph):
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        assert len(find_embeddings(pattern, two_copy_graph, limit=1)) == 1

    def test_empty_pattern_yields_nothing(self, triangle):
        assert find_embeddings(LabeledGraph(), triangle) == []

    def test_embeddings_are_valid_maps(self, two_copy_graph):
        pattern = build_path(["A", "B", "C"])
        for mapping in find_embeddings(pattern, two_copy_graph):
            for u, v in pattern.edges():
                assert two_copy_graph.has_edge(mapping[u], mapping[v])
            for p, g in mapping.items():
                assert pattern.label(p) == two_copy_graph.label(g)

    def test_anchor_restricts_head(self, two_copy_graph):
        pattern = build_path(["A", "B"])
        matcher = SubgraphMatcher(pattern, two_copy_graph)
        anchored = matcher.find_embeddings(anchor=(0, 0))
        assert len(anchored) == 1
        assert anchored[0][0] == 0

    def test_anchor_wrong_label_gives_nothing(self, two_copy_graph):
        pattern = build_path(["A", "B"])
        matcher = SubgraphMatcher(pattern, two_copy_graph)
        assert matcher.find_embeddings(anchor=(0, 1)) == []  # vertex 1 has label B

    def test_anchor_unknown_vertices(self, two_copy_graph):
        pattern = build_path(["A", "B"])
        matcher = SubgraphMatcher(pattern, two_copy_graph)
        assert matcher.find_embeddings(anchor=(0, 777)) == []

    def test_disconnected_pattern(self, two_copy_graph):
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "Z")
        embeddings = find_embeddings(pattern, two_copy_graph)
        assert len(embeddings) == 2  # A can map to 0 or 10, Z only to 99


class TestInducedSemantics:
    def test_non_induced_finds_path_in_triangle(self, triangle):
        pattern = build_path(["A", "B", "C"])
        assert subgraph_exists(pattern, triangle)

    def test_induced_rejects_path_in_triangle(self, triangle):
        pattern = build_path(["A", "B", "C"])
        matcher = SubgraphMatcher(pattern, triangle, induced=True)
        assert not matcher.exists()


class TestExistsAndCount:
    def test_exists(self, two_copy_graph):
        assert subgraph_exists(build_triangle(), two_copy_graph)
        assert not subgraph_exists(build_star("A", ("B", "B")), two_copy_graph)

    def test_count_with_limit(self, two_copy_graph):
        pattern = build_path(["A", "B"])
        matcher = SubgraphMatcher(pattern, two_copy_graph)
        assert matcher.count() == 2
        assert matcher.count(limit=1) == 1


class TestGraphIsomorphism:
    def test_isomorphic_relabeled(self, triangle):
        other = triangle.relabeled({0: "x", 1: "y", 2: "z"})
        assert are_isomorphic(triangle, other)

    def test_not_isomorphic_different_edges(self):
        assert not are_isomorphic(build_path(["A", "B", "C"]), build_triangle())

    def test_not_isomorphic_different_labels(self):
        assert not are_isomorphic(build_path(["A", "B"]), build_path(["A", "C"]))

    def test_not_isomorphic_different_degree_sequence(self):
        star = build_star("A", ("A", "A", "A"))
        path = build_path(["A", "A", "A", "A"])
        assert not are_isomorphic(star, path)

    def test_automorphism_counts(self):
        symmetric_star = build_star("H", ("L", "L", "L"))
        assert count_automorphisms(symmetric_star) == 6  # 3! leaf permutations
        asymmetric = build_star("H", ("A", "B", "C"))
        assert count_automorphisms(asymmetric) == 1

    def test_automorphism_triangle_same_labels(self):
        tri = build_triangle(("A", "A", "A"))
        assert count_automorphisms(tri) == 6


class TestEmbeddingImages:
    def test_embedding_image(self):
        assert embedding_image({0: 5, 1: 7}) == frozenset({5, 7})

    def test_embedding_edge_image_normalised(self, triangle):
        pattern = build_path(["A", "B"])
        mapping = {0: 0, 1: 1}
        edges = embedding_edge_image(pattern, mapping)
        assert edges == frozenset({(0, 1)})
