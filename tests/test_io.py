"""Unit tests for graph serialisation (.lg edge-list and JSON formats)."""

from __future__ import annotations

import pytest

from repro.graph import GraphError, LabeledGraph, are_isomorphic, erdos_renyi_graph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    graphs_from_lg,
    graphs_to_lg,
    read_json,
    read_lg,
    write_json,
    write_lg,
)


class TestLgFormat:
    def test_roundtrip_single_graph(self, triangle):
        text = graphs_to_lg([triangle])
        parsed = graphs_from_lg(text)
        assert len(parsed) == 1
        assert are_isomorphic(parsed[0], triangle)

    def test_roundtrip_multiple_graphs(self, triangle, star3):
        parsed = graphs_from_lg(graphs_to_lg([triangle, star3]))
        assert len(parsed) == 2
        assert are_isomorphic(parsed[0], triangle)
        assert are_isomorphic(parsed[1], star3)

    def test_roundtrip_random_graph(self):
        graph = erdos_renyi_graph(40, 2.0, 6, seed=1)
        parsed = graphs_from_lg(graphs_to_lg([graph]))[0]
        assert parsed.num_vertices == graph.num_vertices
        assert parsed.num_edges == graph.num_edges
        assert parsed.label_counts() == graph.label_counts()

    def test_labels_with_spaces_preserved(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "class java.util.Calendar")
        graph.add_vertex(1, "class java.util.Calendar")
        graph.add_edge(0, 1)
        parsed = graphs_from_lg(graphs_to_lg([graph]))[0]
        assert parsed.label(0) == "class java.util.Calendar"

    def test_blank_and_comment_lines_ignored(self):
        text = "t # 0\n\n# a comment\nv 0 A\nv 1 B\ne 0 1\n"
        parsed = graphs_from_lg(text)
        assert parsed[0].num_edges == 1

    def test_malformed_vertex_raises(self):
        with pytest.raises(GraphError):
            graphs_from_lg("t # 0\nv 0\n")

    def test_malformed_edge_raises(self):
        with pytest.raises(GraphError):
            graphs_from_lg("t # 0\nv 0 A\ne 0\n")

    def test_unknown_record_raises(self):
        with pytest.raises(GraphError):
            graphs_from_lg("t # 0\nx nonsense\n")

    def test_empty_text(self):
        assert graphs_from_lg("") == []

    def test_file_roundtrip(self, tmp_path, triangle):
        path = tmp_path / "graphs.lg"
        write_lg([triangle], path)
        parsed = read_lg(path)
        assert are_isomorphic(parsed[0], triangle)


class TestJsonFormat:
    def test_dict_roundtrip(self, star3):
        data = graph_to_dict(star3)
        rebuilt = graph_from_dict(data)
        assert rebuilt == star3

    def test_string_vertex_ids(self):
        graph = LabeledGraph()
        graph.add_vertex("alice", "P")
        graph.add_vertex("bob", "S")
        graph.add_edge("alice", "bob")
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.has_edge("alice", "bob")

    def test_file_roundtrip(self, tmp_path, triangle, star3):
        path = tmp_path / "graphs.json"
        write_json([triangle, star3], path)
        parsed = read_json(path)
        assert len(parsed) == 2
        assert parsed[0] == triangle
        assert parsed[1] == star3

    def test_negative_integer_ids(self):
        graph = LabeledGraph()
        graph.add_vertex(-1, "A")
        graph.add_vertex(2, "B")
        graph.add_edge(-1, 2)
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.has_edge(-1, 2)
