"""Unit tests for graph serialisation (.lg edge-list and JSON formats)."""

from __future__ import annotations

import pytest

from repro.graph import (
    FrozenGraph,
    GraphError,
    LabeledGraph,
    are_isomorphic,
    erdos_renyi_graph,
    freeze,
)
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    graphs_from_lg,
    graphs_to_lg,
    read_json,
    read_lg,
    write_json,
    write_lg,
)


class TestLgFormat:
    def test_roundtrip_single_graph(self, triangle):
        text = graphs_to_lg([triangle])
        parsed = graphs_from_lg(text)
        assert len(parsed) == 1
        assert are_isomorphic(parsed[0], triangle)

    def test_roundtrip_multiple_graphs(self, triangle, star3):
        parsed = graphs_from_lg(graphs_to_lg([triangle, star3]))
        assert len(parsed) == 2
        assert are_isomorphic(parsed[0], triangle)
        assert are_isomorphic(parsed[1], star3)

    def test_roundtrip_random_graph(self):
        graph = erdos_renyi_graph(40, 2.0, 6, seed=1)
        parsed = graphs_from_lg(graphs_to_lg([graph]))[0]
        assert parsed.num_vertices == graph.num_vertices
        assert parsed.num_edges == graph.num_edges
        assert parsed.label_counts() == graph.label_counts()

    def test_labels_with_spaces_preserved(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "class java.util.Calendar")
        graph.add_vertex(1, "class java.util.Calendar")
        graph.add_edge(0, 1)
        parsed = graphs_from_lg(graphs_to_lg([graph]))[0]
        assert parsed.label(0) == "class java.util.Calendar"

    def test_blank_and_comment_lines_ignored(self):
        text = "t # 0\n\n# a comment\nv 0 A\nv 1 B\ne 0 1\n"
        parsed = graphs_from_lg(text)
        assert parsed[0].num_edges == 1

    def test_malformed_vertex_raises(self):
        with pytest.raises(GraphError):
            graphs_from_lg("t # 0\nv 0\n")

    def test_malformed_edge_raises(self):
        with pytest.raises(GraphError):
            graphs_from_lg("t # 0\nv 0 A\ne 0\n")

    def test_unknown_record_raises(self):
        with pytest.raises(GraphError):
            graphs_from_lg("t # 0\nx nonsense\n")

    def test_empty_text(self):
        assert graphs_from_lg("") == []

    def test_file_roundtrip(self, tmp_path, triangle):
        path = tmp_path / "graphs.lg"
        write_lg([triangle], path)
        parsed = read_lg(path)
        assert are_isomorphic(parsed[0], triangle)


class TestJsonFormat:
    def test_dict_roundtrip(self, star3):
        data = graph_to_dict(star3)
        rebuilt = graph_from_dict(data)
        assert rebuilt == star3

    def test_string_vertex_ids(self):
        graph = LabeledGraph()
        graph.add_vertex("alice", "P")
        graph.add_vertex("bob", "S")
        graph.add_edge("alice", "bob")
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.has_edge("alice", "bob")

    def test_file_roundtrip(self, tmp_path, triangle, star3):
        path = tmp_path / "graphs.json"
        write_json([triangle, star3], path)
        parsed = read_json(path)
        assert len(parsed) == 2
        assert parsed[0] == triangle
        assert parsed[1] == star3

    def test_negative_integer_ids(self):
        graph = LabeledGraph()
        graph.add_vertex(-1, "A")
        graph.add_vertex(2, "B")
        graph.add_edge(-1, 2)
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.has_edge(-1, 2)

    def test_emission_is_canonical(self):
        """Backend and insertion order never change the serialised bytes."""
        graph = erdos_renyi_graph(30, 2.0, 5, seed=3)
        reordered = LabeledGraph()
        for v in sorted(graph.vertices(), key=repr, reverse=True):
            reordered.add_vertex(v, graph.label(v))
        for u, v in sorted(graph.edges(), key=repr, reverse=True):
            reordered.add_edge(u, v)
        payloads = {
            str(graph_to_dict(g)) for g in (graph, reordered, freeze(graph))
        }
        assert len(payloads) == 1


def graph_with_isolated_vertices() -> LabeledGraph:
    graph = LabeledGraph()
    graph.add_vertex(0, "A")
    graph.add_vertex(1, "B")
    graph.add_vertex(2, "A")   # isolated
    graph.add_vertex(3, "C")   # isolated
    graph.add_edge(0, 1)
    return graph


class TestBackendRoundTrips:
    """dict ↔ csr ↔ disk ↔ back, for both formats (catalog satellite)."""

    def test_full_cycle_json_preserves_identity(self, tmp_path):
        """dict → disk → csr → disk → dict, vertex identities intact."""
        original = erdos_renyi_graph(40, 2.0, 6, seed=2)
        frozen = freeze(original)
        path = tmp_path / "g.json"

        write_json([original], path)
        from_disk_frozen = read_json(path, frozen=True)[0]
        assert isinstance(from_disk_frozen, FrozenGraph)
        assert from_disk_frozen == original

        write_json([from_disk_frozen], path)
        from_disk_mutable = read_json(path)[0]
        assert isinstance(from_disk_mutable, LabeledGraph)
        assert from_disk_mutable == original
        assert from_disk_mutable == frozen

    def test_full_cycle_lg_preserves_structure(self, tmp_path):
        """The .lg format renumbers vertices but keeps the labeled structure."""
        original = erdos_renyi_graph(40, 2.0, 6, seed=2)
        path = tmp_path / "g.lg"

        write_lg([original], path)
        from_disk_frozen = read_lg(path, frozen=True)[0]
        assert isinstance(from_disk_frozen, FrozenGraph)
        assert from_disk_frozen.num_edges == original.num_edges
        assert from_disk_frozen.label_counts() == original.label_counts()

        write_lg([from_disk_frozen], path)
        from_disk_mutable = read_lg(path)[0]
        assert isinstance(from_disk_mutable, LabeledGraph)
        assert are_isomorphic(from_disk_mutable, original)
        assert are_isomorphic(from_disk_mutable, from_disk_frozen.thaw())

    @pytest.mark.parametrize("via", ["lg", "json"])  # ids 0..3 are lg-stable
    def test_isolated_vertices_survive(self, tmp_path, via):
        graph = graph_with_isolated_vertices()
        path = tmp_path / f"iso.{via}"
        writer, reader = (write_lg, read_lg) if via == "lg" else (write_json, read_json)
        writer([graph], path)
        for frozen in (False, True):
            rebuilt = reader(path, frozen=frozen)[0]
            assert rebuilt.num_vertices == 4
            assert rebuilt.num_edges == 1
            assert rebuilt.label_counts() == graph.label_counts()
            assert rebuilt.degree(2) == 0 and rebuilt.degree(3) == 0

    def test_label_interning_after_disk_round_trip(self, tmp_path):
        """Labels shared by many vertices intern to one table entry on freeze."""
        graph = LabeledGraph()
        for i in range(10):
            graph.add_vertex(i, "shared-label" if i % 2 == 0 else f"own-{i}")
        for i in range(9):
            graph.add_edge(i, i + 1)
        path = tmp_path / "interned.json"
        write_json([graph], path)
        frozen = read_json(path, frozen=True)[0]
        assert isinstance(frozen, FrozenGraph)
        # 1 shared + 5 distinct own-* labels
        assert len(frozen.label_table) == 6
        assert frozen.label_counts()["shared-label"] == 5
        assert frozen.vertices_with_label("shared-label") == frozenset({0, 2, 4, 6, 8})

    def test_frozen_round_trip_preserves_csr_iteration(self, tmp_path):
        """The reloaded snapshot walks neighbors identically to the original."""
        original = freeze(erdos_renyi_graph(30, 2.5, 4, seed=9))
        path = tmp_path / "csr.json"
        write_json([original], path)
        reloaded = read_json(path, frozen=True)[0]
        for vertex in original.vertices():
            assert list(reloaded.neighbors(vertex)) == list(original.neighbors(vertex))
            assert reloaded.label(vertex) == original.label(vertex)
