"""End-to-end smoke of the HTTP serving tier (repro.catalog.server)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro import open_catalog
from repro.catalog import canonical_json
from repro.graph import LabeledGraph, synthetic_single_graph
from repro.graph.io import graph_to_dict


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read()


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, resp.read()


@pytest.fixture(scope="module")
def served_catalog(tmp_path_factory):
    """A mined catalog plus a live background server on an ephemeral port."""
    store = tmp_path_factory.mktemp("served") / "cat"
    graph = synthetic_single_graph(
        num_vertices=150, num_labels=20, average_degree=2.0,
        num_large_patterns=1, large_pattern_vertices=9, large_pattern_support=2,
        num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
        seed=11,
    ).graph
    repro.mine(graph, min_support=2, k=4, d_max=6, catalog=store)
    catalog = open_catalog(store, read_only=True)
    handle = catalog.serve(port=0, background=True)
    yield catalog, handle
    handle.close()


@pytest.fixture(scope="module")
def needle(served_catalog):
    """A 3-vertex connected subgraph of the best stored pattern."""
    catalog, _ = served_catalog
    best = catalog.load_pattern(catalog.top_k(k=1)[0]).graph
    start = next(iter(best.vertices()))
    keep = {start}
    frontier = [start]
    while frontier and len(keep) < 3:
        for n in best.neighbors(frontier.pop()):
            if len(keep) < 3 and n not in keep:
                keep.add(n)
                frontier.append(n)
    sub = LabeledGraph()
    for v in keep:
        sub.add_vertex(v, best.label(v))
    for u, v in best.edges():
        if u in keep and v in keep:
            sub.add_edge(u, v)
    return sub


class TestEndpoints:
    def test_root_lists_endpoints(self, served_catalog):
        _, handle = served_catalog
        status, body = _get(handle.url + "/")
        assert status == 200
        endpoints = json.loads(body)["endpoints"]
        assert "POST /contains/batch" in endpoints
        assert "GET /top-k" in endpoints

    def test_healthz(self, served_catalog):
        catalog, handle = served_catalog
        status, body = _get(handle.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["code_version"] == repro.__version__
        assert payload["num_runs"] == len(catalog.runs())

    def test_runs_matches_facade(self, served_catalog):
        catalog, handle = served_catalog
        status, body = _get(handle.url + "/runs?kind=result")
        assert status == 200
        assert body.decode() == canonical_json(catalog.runs(kind="result"))

    def test_top_k_bytes_equal_facade(self, served_catalog):
        catalog, handle = served_catalog
        status, body = _get(handle.url + "/top-k?k=3&by=edges")
        assert status == 200
        expect = canonical_json([r.to_dict() for r in catalog.top_k(k=3, by="edges")])
        assert body.decode() == expect

    def test_label_bytes_equal_facade(self, served_catalog):
        catalog, handle = served_catalog
        label = catalog.top_k(k=1)[0].labels[0]
        status, body = _get(handle.url + f"/label?label={label}")
        assert status == 200
        expect = canonical_json([r.to_dict() for r in catalog.with_label(label)])
        assert body.decode() == expect
        assert json.loads(body)  # the label exists, so matches are non-empty

    def test_contains_bytes_equal_facade(self, served_catalog, needle):
        catalog, handle = served_catalog
        status, body = _post(
            handle.url + "/contains", {"graph": graph_to_dict(needle)}
        )
        assert status == 200
        expect = canonical_json([r.to_dict() for r in catalog.contains(needle)])
        assert body.decode() == expect
        assert json.loads(body)  # a subgraph of a stored pattern must hit

    def test_contains_batch_bytes_equal_facade(self, served_catalog, needle):
        catalog, handle = served_catalog
        empty = LabeledGraph()
        empty.add_vertex(0, "no-such-label")
        payload = {"graphs": [graph_to_dict(needle), graph_to_dict(empty)]}
        status, body = _post(handle.url + "/contains/batch", payload)
        assert status == 200
        expect = canonical_json(
            [[r.to_dict() for r in grp] for grp in catalog.contains_batch([needle, empty])]
        )
        assert body.decode() == expect


class TestErrors:
    def _expect_error(self, fn, code):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fn()
        assert excinfo.value.code == code
        return json.loads(excinfo.value.read())

    def test_malformed_needle_is_400(self, served_catalog):
        _, handle = served_catalog
        error = self._expect_error(
            lambda: _post(handle.url + "/contains", {"graph": {"bogus": 1}}), 400
        )
        assert "malformed needle" in error["error"]

    def test_non_json_body_is_400(self, served_catalog):
        _, handle = served_catalog

        def go():
            request = urllib.request.Request(
                handle.url + "/contains", data=b"not json", method="POST"
            )
            urllib.request.urlopen(request, timeout=10)

        error = self._expect_error(go, 400)
        assert "not valid JSON" in error["error"]

    def test_batch_without_graphs_list_is_400(self, served_catalog):
        _, handle = served_catalog
        self._expect_error(
            lambda: _post(handle.url + "/contains/batch", {"graphs": "nope"}), 400
        )

    def test_bad_ranking_is_400(self, served_catalog):
        _, handle = served_catalog
        self._expect_error(lambda: _get(handle.url + "/top-k?by=colour"), 400)

    def test_unknown_endpoint_is_404(self, served_catalog):
        _, handle = served_catalog
        self._expect_error(lambda: _get(handle.url + "/nope"), 404)

    def test_wrong_method_is_405(self, served_catalog):
        _, handle = served_catalog
        self._expect_error(lambda: _get(handle.url + "/contains"), 405)


class TestConcurrency:
    def test_concurrent_batch_requests_agree(self, served_catalog, needle):
        catalog, handle = served_catalog
        expect = canonical_json(
            [[r.to_dict() for r in grp] for grp in catalog.contains_batch([needle])]
        )
        payload = {"graphs": [graph_to_dict(needle)]}

        def one(_):
            return _post(handle.url + "/contains/batch", payload)

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(one, range(16)))
        assert all(status == 200 for status, _ in outcomes)
        assert all(body.decode() == expect for _, body in outcomes)
