"""reprolint — the AST invariant checker (repro.lint).

Every rule is exercised three ways: a fixture that must fire, a fixture that
must stay silent, and the real tree (``repro lint src/`` must be clean — the
merge gate).  Fixtures go through :meth:`Project.from_sources`, which is the
same code path the CLI uses after loading, so the tests and the gate cannot
drift apart.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Diagnostic,
    LintConfig,
    Project,
    all_rules,
    get_rule,
    lint_project,
    run_lint,
)
from repro.lint.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def check(sources, select=(), ignore=()):
    """Lint a ``{qualpath: source}`` fixture tree and return diagnostics."""
    project = Project.from_sources(sources)
    return lint_project(project, LintConfig.from_options(select=select, ignore=ignore))


def codes(diagnostics):
    return [d.code for d in diagnostics]


# --------------------------------------------------------------------------- #
# the framework
# --------------------------------------------------------------------------- #
class TestFramework:
    def test_all_rules_registered_with_unique_codes(self):
        rules = all_rules()
        assert [r.code for r in rules] == sorted(r.code for r in rules)
        assert len({r.code for r in rules}) == len(rules) == 6
        assert {r.code for r in rules} == {
            "CACHE001", "DET001", "DET002", "KERN001", "LOCK001", "OBS001",
        }

    def test_get_rule(self):
        assert get_rule("DET001").code == "DET001"
        assert get_rule("det001").code == "DET001"
        assert get_rule("NOPE001") is None

    def test_diagnostics_sort_and_render(self):
        a = Diagnostic(path="a.py", line=2, column=0, code="DET001", message="x")
        b = Diagnostic(path="a.py", line=1, column=0, code="DET002", message="y")
        assert sorted([a, b]) == [b, a]
        assert str(a) == "a.py:2:0: DET001 x"

    def test_parse_failure_becomes_lint001(self, tmp_path):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def f(:\n")
        project = Project.load([bad.parent])
        diagnostics = lint_project(project, LintConfig())
        assert codes(diagnostics) == ["LINT001"]

    def test_select_and_ignore_filtering(self):
        sources = {
            "repro/core/foo.py": "import time\n\n\ndef f():\n    return time.time()\n",
            "repro/graph/canonical.py": (
                "def g(xs):\n    for x in set(xs):\n        print(x)\n"
            ),
        }
        assert set(codes(check(sources))) == {"DET001", "DET002"}
        assert codes(check(sources, select=("DET002",))) == ["DET002"]
        # Prefix selection takes the whole family; ignore prunes after.
        assert set(codes(check(sources, select=("DET",)))) == {"DET001", "DET002"}
        assert codes(check(sources, select=("DET",), ignore=("DET001",))) == ["DET002"]

    def test_unknown_selector_is_an_error(self):
        with pytest.raises(ValueError, match="matches no registered rule"):
            check({}, select=("BOGUS",))

    def test_inline_suppression_same_line(self):
        sources = {
            "repro/core/foo.py": (
                "import time\n\n\ndef f():\n"
                "    return time.time()  # reprolint: disable=DET002\n"
            ),
        }
        assert check(sources) == []

    def test_standalone_suppression_covers_next_line(self):
        sources = {
            "repro/core/foo.py": (
                "import time\n\n\ndef f():\n"
                "    # reprolint: disable=DET002\n"
                "    return time.time()\n"
            ),
        }
        assert check(sources) == []

    def test_suppression_is_code_specific(self):
        sources = {
            "repro/core/foo.py": (
                "import time\n\n\ndef f():\n"
                "    return time.time()  # reprolint: disable=DET001\n"
            ),
        }
        assert codes(check(sources)) == ["DET002"]

    def test_disable_all_suppresses_everything(self):
        sources = {
            "repro/core/foo.py": (
                "import time\n\n\ndef f():\n"
                "    return time.time()  # reprolint: disable=all\n"
            ),
        }
        assert check(sources) == []


# --------------------------------------------------------------------------- #
# DET001 — unordered iteration on the determinism surface
# --------------------------------------------------------------------------- #
class TestDet001:
    def test_for_loop_over_set_fires(self):
        sources = {
            "repro/graph/canonical.py": (
                "def f(xs):\n"
                "    s = set(xs)\n"
                "    for x in s:\n"
                "        print(x)\n"
            ),
        }
        found = check(sources, select=("DET001",))
        assert codes(found) == ["DET001"]
        assert found[0].line == 3

    def test_sorted_wrapper_is_silent(self):
        sources = {
            "repro/graph/canonical.py": (
                "def f(xs):\n"
                "    for x in sorted(set(xs)):\n"
                "        print(x)\n"
            ),
        }
        assert check(sources, select=("DET001",)) == []

    def test_neighbors_method_counts_as_set(self):
        sources = {
            "repro/parallel/driver.py": (
                "def f(graph, v):\n"
                "    out = []\n"
                "    for w in graph.neighbors(v):\n"
                "        out.append(w)\n"
                "    return out\n"
            ),
        }
        assert codes(check(sources, select=("DET001",))) == ["DET001"]

    def test_order_insensitive_consumer_is_silent(self):
        sources = {
            "repro/graph/canonical.py": (
                "def f(graph, v):\n"
                "    total = sum(1 for w in graph.neighbors(v))\n"
                "    biggest = max(graph.neighbors(v))\n"
                "    return total, biggest\n"
            ),
        }
        assert check(sources, select=("DET001",)) == []

    def test_comprehension_into_list_fires(self):
        sources = {
            "repro/catalog/formats.py": (
                "def f(xs):\n"
                "    s = frozenset(xs)\n"
                "    return [x for x in s]\n"
            ),
        }
        assert codes(check(sources, select=("DET001",))) == ["DET001"]

    def test_off_surface_module_is_out_of_scope(self):
        sources = {
            "repro/catalog/server.py": (
                "def f(xs):\n"
                "    for x in set(xs):\n"
                "        print(x)\n"
            ),
        }
        assert check(sources, select=("DET001",)) == []

    def test_dict_iteration_is_not_flagged(self):
        # Insertion-ordered dicts ARE the determinism contract (formats.py).
        sources = {
            "repro/graph/canonical.py": (
                "def f(d):\n"
                "    for k in d:\n"
                "        print(k)\n"
            ),
        }
        assert check(sources, select=("DET001",)) == []


# --------------------------------------------------------------------------- #
# DET002 — nondeterminism sources in result-affecting modules
# --------------------------------------------------------------------------- #
class TestDet002:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n\n\ndef f():\n    return time.time()\n",
            "import os\n\n\ndef f():\n    return os.urandom(8)\n",
            "from datetime import datetime\n\n\ndef f():\n    return datetime.now()\n",
            "import uuid\n\n\ndef f():\n    return uuid.uuid4()\n",
            "import random\n\n\ndef f():\n    return random.random()\n",
            "def f(key):\n    return hash(key)\n",
            "def f(obj):\n    return id(obj)\n",
        ],
    )
    def test_banned_source_fires(self, snippet):
        assert codes(
            check({"repro/core/foo.py": snippet}, select=("DET002",))
        ) == ["DET002"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # Monotonic timers feed digest-stripped runtime fields.
            "import time\n\n\ndef f():\n    return time.monotonic()\n",
            "import time\n\n\ndef f():\n    return time.perf_counter()\n",
            # A seeded RNG is the paper's own reproducible draw.
            "import random\n\n\ndef f(seed):\n    return random.Random(seed)\n",
        ],
    )
    def test_deterministic_alternatives_are_silent(self, snippet):
        assert check({"repro/core/foo.py": snippet}, select=("DET002",)) == []

    def test_result_neutral_layers_are_out_of_scope(self):
        snippet = "import time\n\n\ndef f():\n    return time.time()\n"
        for qualpath in ("repro/catalog/server.py", "repro/obs/metrics.py"):
            assert check({qualpath: snippet}, select=("DET002",)) == []


# --------------------------------------------------------------------------- #
# CACHE001 — the config-field cache-key partition
# --------------------------------------------------------------------------- #
CONFIG_SRC = """\
from dataclasses import dataclass


@dataclass
class SpiderMineConfig:
    min_support: int = 2
    k: int = 10
    execution: object = None
"""

GOOD_FORMATS_SRC = """\
_RESULT_NEUTRAL_CONFIG_FIELDS = frozenset({"execution"})
STAGE1_CONFIG_FIELDS = frozenset({"min_support"})
STAGE2_ONLY_CONFIG_FIELDS = frozenset({"k"})
"""


class TestCache001:
    def fixture(self, formats_src, config_src=CONFIG_SRC):
        return check(
            {
                "repro/core/config.py": config_src,
                "repro/catalog/formats.py": formats_src,
            },
            select=("CACHE001",),
        )

    def test_total_disjoint_partition_is_silent(self):
        assert self.fixture(GOOD_FORMATS_SRC) == []

    def test_unclassified_field_fires_at_the_field(self):
        config = CONFIG_SRC.replace(
            "    k: int = 10\n", "    k: int = 10\n    radius: int = 1\n"
        )
        found = self.fixture(GOOD_FORMATS_SRC, config_src=config)
        assert codes(found) == ["CACHE001"]
        assert found[0].path == "repro/core/config.py"
        assert "radius" in found[0].message

    def test_doubly_classified_field_fires(self):
        formats = GOOD_FORMATS_SRC.replace(
            'STAGE2_ONLY_CONFIG_FIELDS = frozenset({"k"})',
            'STAGE2_ONLY_CONFIG_FIELDS = frozenset({"k", "min_support"})',
        )
        found = self.fixture(formats)
        assert codes(found) == ["CACHE001"]
        assert "2 partitions" in found[0].message

    def test_stale_entry_fires_at_the_set(self):
        formats = GOOD_FORMATS_SRC.replace(
            'STAGE2_ONLY_CONFIG_FIELDS = frozenset({"k"})',
            'STAGE2_ONLY_CONFIG_FIELDS = frozenset({"k", "ghost"})',
        )
        found = self.fixture(formats)
        assert codes(found) == ["CACHE001"]
        assert found[0].path == "repro/catalog/formats.py"
        assert "ghost" in found[0].message

    def test_missing_partition_set_fires(self):
        formats = GOOD_FORMATS_SRC.replace(
            'STAGE1_CONFIG_FIELDS = frozenset({"min_support"})\n', ""
        )
        found = self.fixture(formats)
        assert any("STAGE1_CONFIG_FIELDS" in d.message for d in found)

    def test_subset_without_both_modules_is_silent(self):
        # Linting only one side of the contract proves nothing either way.
        assert check(
            {"repro/core/config.py": CONFIG_SRC}, select=("CACHE001",)
        ) == []

    def test_real_tree_partition_is_total(self):
        project = Project.load(
            [SRC / "repro" / "core" / "config.py",
             SRC / "repro" / "catalog" / "formats.py"]
        )
        found = lint_project(project, LintConfig(select=("CACHE001",)))
        assert found == [], "\n".join(str(d) for d in found)


# --------------------------------------------------------------------------- #
# OBS001 — telemetry neutrality
# --------------------------------------------------------------------------- #
class TestObs001:
    def test_obs_importing_config_fires(self):
        sources = {
            "repro/obs/bad.py": "from repro.core.config import SpiderMineConfig\n",
        }
        assert codes(check(sources, select=("OBS001",))) == ["OBS001"]

    def test_obs_referencing_config_class_fires(self):
        sources = {
            "repro/obs/bad.py": (
                "import repro.core as core\n\n\ndef f():\n"
                "    return core.SpiderMineConfig\n"
            ),
        }
        assert "OBS001" in codes(check(sources, select=("OBS001",)))

    def test_unguarded_registry_call_fires(self):
        sources = {
            "repro/patterns/hot.py": (
                "from repro.obs import get_registry\n\n\ndef f():\n"
                "    registry = get_registry()\n"
                "    registry.counter('x')\n"
            ),
        }
        found = check(sources, select=("OBS001",))
        assert codes(found) == ["OBS001"]
        assert "enabled" in found[0].message

    def test_enabled_guard_is_silent(self):
        sources = {
            "repro/patterns/hot.py": (
                "from repro.obs import get_registry\n\n\ndef f():\n"
                "    registry = get_registry()\n"
                "    if registry.enabled:\n"
                "        registry.counter('x')\n"
            ),
        }
        assert check(sources, select=("OBS001",)) == []

    def test_early_return_guard_is_silent(self):
        sources = {
            "repro/patterns/hot.py": (
                "from repro.obs import get_registry\n\n\ndef f():\n"
                "    registry = get_registry()\n"
                "    if not registry.enabled:\n"
                "        return\n"
                "    registry.counter('x')\n"
            ),
        }
        assert check(sources, select=("OBS001",)) == []


# --------------------------------------------------------------------------- #
# LOCK001 — lock discipline
# --------------------------------------------------------------------------- #
LOCKED_CLASS = """\
import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.counters = {}

    def bump(self, key):
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + 1
"""


def locked_class(extra=""):
    return LOCKED_CLASS + extra


class TestLock001:
    def test_unlocked_mutation_of_lock_owned_attr_fires(self):
        extra = (
            "\n    def reset(self, key):\n"
            "        self.counters[key] = 0\n"
        )
        sources = {"repro/obs/reg.py": locked_class(extra)}
        found = check(sources, select=("LOCK001",))
        assert codes(found) == ["LOCK001"]
        assert "counters" in found[0].message

    def test_locked_mutation_is_silent(self):
        extra = (
            "\n    def reset(self, key):\n"
            "        with self._lock:\n"
            "            self.counters[key] = 0\n"
        )
        sources = {"repro/obs/reg.py": locked_class(extra)}
        assert check(sources, select=("LOCK001",)) == []

    def test_init_is_exempt(self):
        # Construction happens-before sharing; __init__ writes are legal.
        sources = {"repro/obs/reg.py": locked_class()}
        assert check(sources, select=("LOCK001",)) == []

    def test_blocking_call_under_lock_fires(self):
        extra = (
            "\n    def dump(self, path):\n"
            "        with self._lock:\n"
            "            open(path)\n"
        )
        sources = {"repro/obs/reg.py": locked_class(extra)}
        found = check(sources, select=("LOCK001",))
        assert codes(found) == ["LOCK001"]
        assert "blocking" in found[0].message

    def test_blocking_call_outside_lock_is_silent(self):
        extra = (
            "\n    def dump(self, path):\n"
            "        with self._lock:\n"
            "            snapshot = dict(self.counters)\n"
            "        open(path)\n"
            "        return snapshot\n"
        )
        sources = {"repro/obs/reg.py": locked_class(extra)}
        assert check(sources, select=("LOCK001",)) == []

    def test_lockless_class_is_out_of_scope(self):
        sources = {
            "repro/obs/reg.py": (
                "class Plain:\n"
                "    def __init__(self):\n"
                "        self.counters = {}\n\n"
                "    def bump(self, key):\n"
                "        self.counters[key] = 1\n"
            ),
        }
        assert check(sources, select=("LOCK001",)) == []


# --------------------------------------------------------------------------- #
# KERN001 — numpy confinement and guarded dispatch
# --------------------------------------------------------------------------- #
KERNELS_STUB = """\
def numpy_available():
    return True


def ac_filter(a):
    return a
"""


class TestKern001:
    def test_numpy_import_outside_kernels_fires(self):
        sources = {
            "repro/graph/kernels.py": "import numpy\n" + KERNELS_STUB,
            "repro/patterns/overlap.py": "import numpy as np\n",
        }
        found = check(sources, select=("KERN001",))
        assert codes(found) == ["KERN001"]
        assert found[0].path == "repro/patterns/overlap.py"

    def test_numpy_import_inside_kernels_is_silent(self):
        sources = {"repro/graph/kernels.py": "import numpy\n" + KERNELS_STUB}
        assert check(sources, select=("KERN001",)) == []

    def test_unguarded_kernel_call_fires(self):
        sources = {
            "repro/graph/kernels.py": KERNELS_STUB,
            "repro/graph/other.py": (
                "from . import kernels\n\n\ndef f(a):\n"
                "    return kernels.ac_filter(a)\n"
            ),
        }
        found = check(sources, select=("KERN001",))
        assert codes(found) == ["KERN001"]
        assert "ac_filter" in found[0].message

    def test_direct_guard_is_silent(self):
        sources = {
            "repro/graph/kernels.py": KERNELS_STUB,
            "repro/graph/other.py": (
                "from . import kernels\n\n\ndef f(a):\n"
                "    if kernels.numpy_available():\n"
                "        return kernels.ac_filter(a)\n"
                "    return a\n"
            ),
        }
        assert check(sources, select=("KERN001",)) == []

    def test_guard_derived_attribute_is_silent(self):
        sources = {
            "repro/graph/kernels.py": KERNELS_STUB,
            "repro/graph/other.py": (
                "from . import kernels\n\n\n"
                "class M:\n"
                "    def __init__(self, csr):\n"
                "        self._use_kernels = csr is not None and kernels.numpy_available()\n\n"
                "    def run(self, a):\n"
                "        if self._use_kernels:\n"
                "            return kernels.ac_filter(a)\n"
                "        return a\n"
            ),
        }
        assert check(sources, select=("KERN001",)) == []

    def test_interprocedural_guard_is_silent(self):
        # A helper whose every call site is guarded needs no inner guard.
        sources = {
            "repro/graph/kernels.py": KERNELS_STUB,
            "repro/graph/other.py": (
                "from . import kernels\n\n\n"
                "class M:\n"
                "    def __init__(self, csr):\n"
                "        self._use_kernels = csr is not None and kernels.numpy_available()\n\n"
                "    def run(self, a):\n"
                "        if self._use_kernels:\n"
                "            return self._fast(a)\n"
                "        return a\n\n"
                "    def _fast(self, a):\n"
                "        return kernels.ac_filter(a)\n"
            ),
        }
        assert check(sources, select=("KERN001",)) == []

    def test_one_unguarded_call_site_breaks_protection(self):
        sources = {
            "repro/graph/kernels.py": KERNELS_STUB,
            "repro/graph/other.py": (
                "from . import kernels\n\n\n"
                "class M:\n"
                "    def __init__(self, csr):\n"
                "        self._use_kernels = csr is not None and kernels.numpy_available()\n\n"
                "    def run(self, a):\n"
                "        if self._use_kernels:\n"
                "            return self._fast(a)\n"
                "        return a\n\n"
                "    def sneaky(self, a):\n"
                "        return self._fast(a)\n\n"
                "    def _fast(self, a):\n"
                "        return kernels.ac_filter(a)\n"
            ),
        }
        assert codes(check(sources, select=("KERN001",))) == ["KERN001"]


# --------------------------------------------------------------------------- #
# reporters and the CLI
# --------------------------------------------------------------------------- #
class TestReporting:
    FINDINGS = [
        Diagnostic(path="a.py", line=1, column=0, code="DET001", message="m1"),
        Diagnostic(path="a.py", line=2, column=4, code="DET002", message="m2"),
    ]

    def test_text_report_shape(self):
        text = render_text(self.FINDINGS, files_scanned=3)
        assert text.splitlines() == [
            "a.py:1:0: DET001 m1",
            "a.py:2:4: DET002 m2",
            "reprolint: 2 finding(s) in 3 file(s) (DET001 x1, DET002 x1)",
        ]
        assert render_text([], 3) == "reprolint: clean (3 file(s) checked)"

    def test_json_report_shape_is_stable(self):
        payload = json.loads(render_json(self.FINDINGS, files_scanned=3))
        assert payload == {
            "version": 1,
            "files_scanned": 3,
            "counts": {"DET001": 1, "DET002": 1},
            "diagnostics": [
                {"path": "a.py", "line": 1, "column": 0,
                 "code": "DET001", "message": "m1"},
                {"path": "a.py", "line": 2, "column": 4,
                 "code": "DET002", "message": "m2"},
            ],
        }
        # Byte-stable across renders: CI diffs the artifact between builds.
        assert render_json(self.FINDINGS, 3) == render_json(self.FINDINGS, 3)


class TestCli:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", *argv],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )

    def test_clean_tree_exits_zero(self):
        result = self.run_cli("src/")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "reprolint: clean" in result.stdout

    def test_violation_exits_one(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
        result = self.run_cli(str(bad))
        assert result.returncode == 1
        assert "DET002" in result.stdout

    def test_unknown_selector_exits_two(self):
        result = self.run_cli("src/", "--select", "BOGUS")
        assert result.returncode == 2
        assert "matches no registered rule" in result.stderr

    def test_missing_path_exits_two(self):
        result = self.run_cli("definitely/not/here")
        assert result.returncode == 2

    def test_json_flag_emits_the_stable_shape(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(obj):\n    return id(obj)\n")
        result = self.run_cli(str(bad), "--json")
        payload = json.loads(result.stdout)
        assert payload["version"] == 1
        assert payload["counts"] == {"DET002": 1}
        assert payload["diagnostics"][0]["code"] == "DET002"


# --------------------------------------------------------------------------- #
# the merge gate itself
# --------------------------------------------------------------------------- #
class TestGate:
    def test_src_tree_is_clean(self):
        found = run_lint(paths=(SRC,))
        assert found == [], "\n".join(str(d) for d in found)
