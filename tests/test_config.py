"""Unit tests for SpiderMineConfig validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.core import SpiderMineConfig
from repro.patterns import SupportMeasure


class TestValidation:
    def test_defaults_valid(self):
        config = SpiderMineConfig()
        assert config.min_support == 2
        assert config.k == 10
        assert config.radius == 1
        assert config.support_measure is SupportMeasure.HARMFUL_OVERLAP

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_support": 0},
            {"k": 0},
            {"epsilon": 0.0},
            {"epsilon": 1.0},
            {"epsilon": -0.5},
            {"d_max": 0},
            {"radius": 0},
            {"v_min": 0},
            {"max_spider_size": 0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            SpiderMineConfig(**kwargs)

    def test_support_measure_coerced_from_string(self):
        config = SpiderMineConfig(support_measure="edge_disjoint")
        assert config.support_measure is SupportMeasure.EDGE_DISJOINT

    def test_invalid_support_measure_string(self):
        with pytest.raises(ValueError):
            SpiderMineConfig(support_measure="nonsense")


class TestDerivedQuantities:
    @pytest.mark.parametrize(
        "d_max, radius, expected",
        [
            (4, 1, 2),    # Dmax / 2r = 2
            (10, 1, 5),
            (6, 2, 2),    # ceil(6/4) = 2
            (1, 1, 1),
            (3, 1, 2),    # ceil(3/2)
            (8, 2, 2),
        ],
    )
    def test_growth_iterations(self, d_max, radius, expected):
        config = SpiderMineConfig(d_max=d_max, radius=radius)
        assert config.growth_iterations == expected

    def test_resolved_v_min_default_is_tenth(self):
        config = SpiderMineConfig()
        assert config.resolved_v_min(1000) == 100
        assert config.resolved_v_min(5) == 1

    def test_resolved_v_min_explicit(self):
        config = SpiderMineConfig(v_min=30)
        assert config.resolved_v_min(1000) == 30
