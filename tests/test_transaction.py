"""Unit tests for the graph-transaction setting (database + SpiderMine adapter)."""

from __future__ import annotations


from repro.transaction import (
    GraphDatabase,
    database_from_graphs,
    mine_transaction_top_k,
    union_as_single_graph,
)
from tests.conftest import build_path, build_star


def motif_database(num_graphs: int = 5) -> GraphDatabase:
    """Each transaction contains the same 4-vertex motif plus unique noise."""
    graphs = []
    for i in range(num_graphs):
        graph = build_star("H", ("A", "B", "C"))
        graph.add_vertex(50, f"NOISE{i}")
        graph.add_vertex(51, f"NOISE{i}b")
        graph.add_edge(50, 51)
        graphs.append(graph)
    return GraphDatabase(graphs=graphs)


class TestGraphDatabase:
    def test_basic_accessors(self):
        database = motif_database(3)
        assert len(database) == 3
        assert database.total_vertices == 3 * 6
        assert database.total_edges == 3 * 4
        assert database[0].num_vertices == 6
        assert "H" in database.label_set()

    def test_add_and_iterate(self, triangle):
        database = GraphDatabase()
        database.add(triangle)
        assert len(database) == 1
        assert list(database)[0] is triangle

    def test_database_from_graphs(self, triangle, star3):
        database = database_from_graphs([triangle, star3])
        assert len(database) == 2

    def test_transaction_support(self):
        database = motif_database(4)
        star = build_star("H", ("A", "B", "C"))
        assert database.transaction_support(star) == 4
        assert database.supporting_transactions(star) == [0, 1, 2, 3]
        missing = build_path(["Q", "R"])
        assert database.transaction_support(missing) == 0

    def test_is_frequent_early_exit(self):
        database = motif_database(4)
        star = build_star("H", ("A", "B", "C"))
        assert database.is_frequent(star, 3)
        assert not database.is_frequent(star, 5)
        assert database.is_frequent(build_path(["H", "A"]), 4)


class TestUnionAsSingleGraph:
    def test_vertices_renamed_per_transaction(self):
        database = motif_database(2)
        union = union_as_single_graph(database)
        assert union.num_vertices == database.total_vertices
        assert union.num_edges == database.total_edges
        assert (0, 0) in union
        assert (1, 0) in union

    def test_no_cross_transaction_edges(self):
        database = motif_database(2)
        union = union_as_single_graph(database)
        for u, v in union.edges():
            assert u[0] == v[0], "edges must stay within one transaction"


class TestTransactionAdapter:
    def test_mines_common_motif(self):
        database = motif_database(5)
        result = mine_transaction_top_k(database, min_support=4, k=3, d_max=4, seed=0)
        assert result.patterns
        best = result.patterns[0]
        assert best.num_vertices >= 4
        assert all(s >= 4 for s in result.transaction_supports)

    def test_supports_align_with_patterns(self):
        database = motif_database(4)
        result = mine_transaction_top_k(database, min_support=3, k=2, d_max=4, seed=1)
        assert len(result.transaction_supports) == len(result.patterns)

    def test_k_limit(self):
        database = motif_database(4)
        result = mine_transaction_top_k(database, min_support=3, k=1, d_max=4, seed=1)
        assert len(result.patterns) <= 1

    def test_parameters_mark_transaction_setting(self):
        database = motif_database(4)
        result = mine_transaction_top_k(database, min_support=3, k=2, d_max=4, seed=1)
        assert result.result.parameters["setting"] == "graph-transaction"
