"""The persisted needle-side domain index (repro.catalog.pattern_index)."""

from __future__ import annotations

import json

import pytest

from repro import CachePolicy, SpiderMine, SpiderMineConfig, open_catalog
from repro.catalog import CatalogStore, code_version
from repro.catalog.lru import LRUCache
from repro.catalog.pattern_index import (
    PATTERN_INDEX_KIND,
    entry_admits,
    entry_from_graph,
    entry_from_pattern_payload,
    needle_requirements,
    run_index_from_payload,
    run_index_payload,
)
from repro.graph import LabeledGraph, synthetic_single_graph


def path_graph(labels):
    g = LabeledGraph()
    for i, label in enumerate(labels):
        g.add_vertex(i, label)
    for i in range(len(labels) - 1):
        g.add_edge(i, i + 1)
    return g


def pattern_payload_for(graph):
    """A minimal stored-pattern payload (the part the index reads)."""
    return {
        "graph": {
            "vertices": [[str(v), graph.label(v)] for v in sorted(graph.vertices())],
            "edges": [[str(u), str(v)] for u, v in graph.edges()],
        }
    }


@pytest.fixture(scope="module")
def mined_catalog(tmp_path_factory):
    root = tmp_path_factory.mktemp("index-catalog")
    graph = synthetic_single_graph(
        num_vertices=150, num_labels=20, average_degree=2.0,
        num_large_patterns=1, large_pattern_vertices=9, large_pattern_support=2,
        num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
        seed=11,
    ).graph
    cfg = SpiderMineConfig(
        min_support=2, k=4, d_max=6, seed=0, cache=CachePolicy.at(root)
    )
    result = SpiderMine(graph, cfg).mine()
    return CatalogStore(root), result


class TestEntryBuilding:
    def test_payload_and_graph_agree(self):
        g = path_graph(["A", "B", "A"])
        from_graph = entry_from_graph(0, g)
        from_payload = entry_from_pattern_payload(0, pattern_payload_for(g))
        assert from_graph.num_vertices == from_payload.num_vertices == 3
        assert from_graph.num_edges == from_payload.num_edges == 2
        assert from_graph.label_counts == from_payload.label_counts == {"A": 2, "B": 1}
        for label in ("A", "B"):
            assert sorted(from_graph.classes[label]) == sorted(
                from_payload.classes[label]
            )

    def test_signature_counts_neighbor_labels(self):
        g = path_graph(["A", "B", "A"])
        entry = entry_from_graph(0, g)
        # The middle B vertex sees two A neighbors.
        assert (2, {"A": 2}) in entry.classes["B"]
        # End vertices each see one B.
        assert entry.classes["A"].count((1, {"B": 1})) == 2


class TestAdmission:
    def test_identical_graph_is_admitted(self):
        g = path_graph(["A", "B", "C"])
        entry = entry_from_graph(0, g)
        assert entry_admits(entry, needle_requirements(g), {"A": 1, "B": 1, "C": 1})

    def test_missing_label_rejects(self):
        entry = entry_from_graph(0, path_graph(["A", "B"]))
        needle = path_graph(["A", "Z"])
        assert not entry_admits(entry, needle_requirements(needle), {"A": 1, "Z": 1})

    def test_label_multiplicity_rejects(self):
        """Injectivity: two needle A's cannot share the pattern's single A."""
        entry = entry_from_graph(0, path_graph(["A", "B"]))
        needle = LabeledGraph()
        needle.add_vertex(0, "A")
        needle.add_vertex(1, "A")
        assert not entry_admits(entry, needle_requirements(needle), {"A": 2})

    def test_degree_rejects(self):
        entry = entry_from_graph(0, path_graph(["A", "B", "A"]))
        star = LabeledGraph()  # a B with three neighbors: no such vertex exists
        star.add_vertex(0, "B")
        for i, label in enumerate(["A", "A", "A"], start=1):
            star.add_vertex(i, label)
            star.add_edge(0, i)
        assert not entry_admits(entry, needle_requirements(star), {"A": 3, "B": 1})

    def test_neighbor_signature_rejects(self):
        """Degree alone would pass; the neighbor-label multiset catches it."""
        entry = entry_from_graph(0, path_graph(["A", "B", "A"]))
        needle = path_graph(["B", "A", "B"])  # needs an A with two B neighbors
        assert not entry_admits(entry, needle_requirements(needle), {"A": 1, "B": 2})

    def test_empty_needle_has_no_requirements(self):
        assert needle_requirements(LabeledGraph()) is None


class TestSidecarPayload:
    def test_round_trip(self):
        g = path_graph(["A", "B", "A"])
        payload = run_index_payload("run-1", [pattern_payload_for(g)], "1.0")
        text = json.dumps(payload)  # must be JSON-native throughout
        entries = run_index_from_payload(json.loads(text), "run-1", "1.0")
        assert entries is not None and len(entries) == 1
        expect = entry_from_graph(0, g)
        assert entries[0].label_counts == expect.label_counts
        assert sorted(entries[0].classes["A"]) == sorted(expect.classes["A"])

    def test_non_string_labels_survive(self):
        g = LabeledGraph()
        g.add_vertex(0, 7)
        g.add_vertex(1, 7)
        g.add_edge(0, 1)
        payload = run_index_payload("run-1", [pattern_payload_for(g)], "1.0")
        entries = run_index_from_payload(
            json.loads(json.dumps(payload)), "run-1", "1.0"
        )
        assert entries[0].label_counts == {7: 2}
        assert entry_admits(entries[0], needle_requirements(g), {7: 2})

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda p: p.update(code_version="other"),
            lambda p: p.update(run_id="someone-else"),
            lambda p: p.update(kind="result"),
            lambda p: p.update(format=999),
            lambda p: p.update(patterns=[{"broken": True}]),
        ],
    )
    def test_stale_or_malformed_reads_as_absent(self, corrupt):
        payload = run_index_payload(
            "run-1", [pattern_payload_for(path_graph(["A"]))], "1.0"
        )
        corrupt(payload)
        assert run_index_from_payload(payload, "run-1", "1.0") is None


class TestSidecarLifecycle:
    def test_mining_persists_the_sidecar(self, mined_catalog):
        store, _ = mined_catalog
        (run,) = store.list_runs(kind="result")
        assert store.has_pattern_index(run["run_id"])
        payload = store.get_pattern_index(run["run_id"])
        assert payload["kind"] == PATTERN_INDEX_KIND
        assert payload["code_version"] == code_version()
        assert len(payload["patterns"]) == run["num_patterns"]

    def test_stale_sidecar_is_rebuilt_and_overwritten(self, mined_catalog):
        store, _ = mined_catalog
        (run,) = store.list_runs(kind="result")
        run_id = run["run_id"]
        stale = store.get_pattern_index(run_id)
        stale["code_version"] = "0.0.0"
        store.put_pattern_index(run_id, stale)

        catalog = open_catalog(store.root)
        needle = LabeledGraph()
        needle.add_vertex(0, "no-such-label")
        catalog.contains(needle)
        assert catalog.stats.index_builds + catalog.stats.index_loads <= 1
        # Force an index read even if the needle prefiltered everything.
        record = catalog.top_k(k=1)[0]
        catalog.query._run_index(record.run_id)
        assert catalog.stats.index_builds == 1
        # Self-healed: the store now holds a current-version sidecar.
        assert store.get_pattern_index(run_id)["code_version"] == code_version()

    def test_read_only_catalog_never_writes(self, mined_catalog, tmp_path):
        store, _ = mined_catalog
        (run,) = store.list_runs(kind="result")
        run_id = run["run_id"]
        current = store.get_pattern_index(run_id)
        stale = dict(current, code_version="0.0.0")
        store.put_pattern_index(run_id, stale)
        try:
            catalog = open_catalog(store.root, read_only=True)
            catalog.query._run_index(run_id)
            assert catalog.stats.index_builds == 1
            assert store.get_pattern_index(run_id)["code_version"] == "0.0.0"
        finally:
            store.put_pattern_index(run_id, current)

    def test_gc_drops_orphaned_sidecars(self, tmp_path):
        store = CatalogStore(tmp_path / "cat")
        store.put_run("a" * 8, {"x": 1}, {"kind": "result"})
        store.put_pattern_index("a" * 8, {"kind": PATTERN_INDEX_KIND})
        store.put_pattern_index("gone", {"kind": PATTERN_INDEX_KIND})
        removed = store.gc()
        assert removed["indexes"] == 1
        assert store.has_pattern_index("a" * 8)
        assert not store.has_pattern_index("gone")


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_zero_capacity_stores_nothing(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_get_or_build_builds_once(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_build("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1
