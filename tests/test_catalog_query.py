"""The catalog query layer (repro.catalog.query)."""

from __future__ import annotations

import pytest

from repro import CachePolicy, SpiderMine, SpiderMineConfig
from repro.catalog import CatalogQuery, CatalogStore
from repro.graph import LabeledGraph, synthetic_single_graph


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    """A catalog holding the runs of two different configs on one graph."""
    root = tmp_path_factory.mktemp("catalog")
    graph = synthetic_single_graph(
        num_vertices=200, num_labels=30, average_degree=2.0,
        num_large_patterns=2, large_pattern_vertices=10, large_pattern_support=2,
        num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
        seed=5,
    ).graph
    results = {}
    for k in (2, 4):
        cfg = SpiderMineConfig(
            min_support=2, k=k, d_max=6, seed=0, cache=CachePolicy.at(root)
        )
        results[k] = SpiderMine(graph, cfg).mine()
    return CatalogStore(root), results


class TestRecords:
    def test_every_stored_pattern_is_enumerated(self, populated_store):
        store, results = populated_store
        records = list(CatalogQuery(store).records())
        expected = sum(len(r.patterns) for r in results.values())
        assert len(records) == expected
        assert all(r.num_vertices >= 1 and r.support >= 1 for r in records)
        assert all(r.algorithm == "SpiderMine" for r in records)

    def test_restrict_to_one_run(self, populated_store):
        store, results = populated_store
        query = CatalogQuery(store)
        run_ids = {r["run_id"] for r in store.list_runs(kind="result")}
        assert len(run_ids) == 2
        for run_id in run_ids:
            records = list(query.records(run_id=run_id))
            assert records
            assert {r.run_id for r in records} == {run_id}


class TestTopK:
    def test_by_vertices_is_sorted_and_capped(self, populated_store):
        store, _ = populated_store
        top = CatalogQuery(store).top_k(3, by="vertices")
        assert len(top) == 3
        sizes = [(r.num_vertices, r.num_edges) for r in top]
        assert sizes == sorted(sizes, reverse=True)

    def test_by_support(self, populated_store):
        store, _ = populated_store
        top = CatalogQuery(store).top_k(5, by="support")
        supports = [r.support for r in top]
        assert supports == sorted(supports, reverse=True)

    def test_by_edges(self, populated_store):
        store, _ = populated_store
        top = CatalogQuery(store).top_k(5, by="edges")
        edges = [r.num_edges for r in top]
        assert edges == sorted(edges, reverse=True)

    def test_deterministic_order(self, populated_store):
        store, _ = populated_store
        query = CatalogQuery(store)
        first = [(r.run_id, r.index) for r in query.top_k(10)]
        second = [(r.run_id, r.index) for r in query.top_k(10)]
        assert first == second

    def test_unknown_ranking_raises(self, populated_store):
        store, _ = populated_store
        with pytest.raises(ValueError):
            CatalogQuery(store).top_k(3, by="colour")

    def test_empty_store(self, tmp_path):
        assert CatalogQuery(tmp_path / "empty").top_k(5) == []


class TestLabelFilter:
    def test_with_label_matches_metadata(self, populated_store):
        store, results = populated_store
        query = CatalogQuery(store)
        some_label = next(iter(results[4].patterns[0].graph.labels().values()))
        records = query.with_label(some_label)
        assert records
        assert all(some_label in r.labels for r in records)

    def test_absent_label_matches_nothing(self, populated_store):
        store, _ = populated_store
        assert CatalogQuery(store).with_label("no-such-label") == []

    def test_top_k_with_label_filter(self, populated_store):
        store, results = populated_store
        some_label = next(iter(results[4].patterns[0].graph.labels().values()))
        top = CatalogQuery(store).top_k(2, label=some_label)
        assert top
        assert all(some_label in r.labels for r in top)


class TestContainment:
    def test_single_vertex_needle(self, populated_store):
        store, results = populated_store
        query = CatalogQuery(store)
        pattern = results[4].patterns[0]
        label = next(iter(pattern.graph.labels().values()))
        needle = LabeledGraph()
        needle.add_vertex(0, label)
        matches = query.containing(needle)
        assert matches
        assert all(label in r.labels for r in matches)

    def test_whole_pattern_contains_itself(self, populated_store):
        store, results = populated_store
        query = CatalogQuery(store)
        pattern = results[4].patterns[0]
        matches = query.containing(pattern)
        assert any(
            r.num_vertices == pattern.num_vertices
            and r.num_edges == pattern.num_edges
            for r in matches
        )

    def test_impossible_needle_matches_nothing(self, populated_store):
        store, _ = populated_store
        needle = LabeledGraph()
        needle.add_vertex(0, "no-such-label")
        needle.add_vertex(1, "no-such-label")
        needle.add_edge(0, 1)
        assert CatalogQuery(store).containing(needle) == []


class TestLoadPattern:
    def test_materialises_graph_and_embeddings(self, populated_store):
        store, results = populated_store
        query = CatalogQuery(store)
        record = query.top_k(1)[0]
        pattern = query.load_pattern(record)
        assert pattern.num_vertices == record.num_vertices
        assert pattern.num_edges == record.num_edges
        assert pattern.support == record.support
        assert pattern.embeddings
