"""The catalog query layer (repro.catalog.query)."""

from __future__ import annotations

import pytest

from repro import CachePolicy, SpiderMine, SpiderMineConfig, open_catalog
from repro.catalog import CatalogQuery, CatalogStore
from repro.graph import LabeledGraph, synthetic_single_graph


def query_for(store):
    """A CatalogQuery via the supported facade (no deprecation warning)."""
    return open_catalog(store).query


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    """A catalog holding the runs of two different configs on one graph."""
    root = tmp_path_factory.mktemp("catalog")
    graph = synthetic_single_graph(
        num_vertices=200, num_labels=30, average_degree=2.0,
        num_large_patterns=2, large_pattern_vertices=10, large_pattern_support=2,
        num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
        seed=5,
    ).graph
    results = {}
    for k in (2, 4):
        cfg = SpiderMineConfig(
            min_support=2, k=k, d_max=6, seed=0, cache=CachePolicy.at(root)
        )
        results[k] = SpiderMine(graph, cfg).mine()
    return CatalogStore(root), results


class TestRecords:
    def test_every_stored_pattern_is_enumerated(self, populated_store):
        store, results = populated_store
        records = list(query_for(store).records())
        expected = sum(len(r.patterns) for r in results.values())
        assert len(records) == expected
        assert all(r.num_vertices >= 1 and r.support >= 1 for r in records)
        assert all(r.algorithm == "SpiderMine" for r in records)

    def test_restrict_to_one_run(self, populated_store):
        store, results = populated_store
        query = query_for(store)
        run_ids = {r["run_id"] for r in store.list_runs(kind="result")}
        assert len(run_ids) == 2
        for run_id in run_ids:
            records = list(query.records(run_id=run_id))
            assert records
            assert {r.run_id for r in records} == {run_id}


class TestTopK:
    def test_by_vertices_is_sorted_and_capped(self, populated_store):
        store, _ = populated_store
        top = query_for(store).top_k(3, by="vertices")
        assert len(top) == 3
        sizes = [(r.num_vertices, r.num_edges) for r in top]
        assert sizes == sorted(sizes, reverse=True)

    def test_by_support(self, populated_store):
        store, _ = populated_store
        top = query_for(store).top_k(5, by="support")
        supports = [r.support for r in top]
        assert supports == sorted(supports, reverse=True)

    def test_by_edges(self, populated_store):
        store, _ = populated_store
        top = query_for(store).top_k(5, by="edges")
        edges = [r.num_edges for r in top]
        assert edges == sorted(edges, reverse=True)

    def test_deterministic_order(self, populated_store):
        store, _ = populated_store
        query = query_for(store)
        first = [(r.run_id, r.index) for r in query.top_k(10)]
        second = [(r.run_id, r.index) for r in query.top_k(10)]
        assert first == second

    def test_unknown_ranking_raises(self, populated_store):
        store, _ = populated_store
        with pytest.raises(ValueError):
            query_for(store).top_k(3, by="colour")

    def test_empty_store(self, tmp_path):
        assert query_for(tmp_path / "empty").top_k(5) == []


class TestLabelFilter:
    def test_with_label_matches_metadata(self, populated_store):
        store, results = populated_store
        query = query_for(store)
        some_label = next(iter(results[4].patterns[0].graph.labels().values()))
        records = query.with_label(some_label)
        assert records
        assert all(some_label in r.labels for r in records)

    def test_absent_label_matches_nothing(self, populated_store):
        store, _ = populated_store
        assert query_for(store).with_label("no-such-label") == []

    def test_top_k_with_label_filter(self, populated_store):
        store, results = populated_store
        some_label = next(iter(results[4].patterns[0].graph.labels().values()))
        top = query_for(store).top_k(2, label=some_label)
        assert top
        assert all(some_label in r.labels for r in top)


class TestContainment:
    def test_single_vertex_needle(self, populated_store):
        store, results = populated_store
        query = query_for(store)
        pattern = results[4].patterns[0]
        label = next(iter(pattern.graph.labels().values()))
        needle = LabeledGraph()
        needle.add_vertex(0, label)
        matches = query.containing(needle)
        assert matches
        assert all(label in r.labels for r in matches)

    def test_whole_pattern_contains_itself(self, populated_store):
        store, results = populated_store
        query = query_for(store)
        pattern = results[4].patterns[0]
        matches = query.containing(pattern)
        assert any(
            r.num_vertices == pattern.num_vertices
            and r.num_edges == pattern.num_edges
            for r in matches
        )

    def test_impossible_needle_matches_nothing(self, populated_store):
        store, _ = populated_store
        needle = LabeledGraph()
        needle.add_vertex(0, "no-such-label")
        needle.add_vertex(1, "no-such-label")
        needle.add_edge(0, 1)
        assert query_for(store).containing(needle) == []


class TestLoadPattern:
    def test_materialises_graph_and_embeddings(self, populated_store):
        store, results = populated_store
        query = query_for(store)
        record = query.top_k(1)[0]
        pattern = query.load_pattern(record)
        assert pattern.num_vertices == record.num_vertices
        assert pattern.num_edges == record.num_edges
        assert pattern.support == record.support
        assert pattern.embeddings


class TestBatchContainment:
    def _needles(self, results):
        """A mixed bag: pattern subgraph, single vertex, impossible label."""
        pattern = results[4].patterns[0]
        label = next(iter(pattern.graph.labels().values()))
        single = LabeledGraph()
        single.add_vertex(0, label)
        impossible = LabeledGraph()
        impossible.add_vertex(0, "no-such-label")
        impossible.add_vertex(1, "no-such-label")
        impossible.add_edge(0, 1)
        return [pattern, single, impossible]

    def test_batch_equals_independent_calls(self, populated_store):
        store, results = populated_store
        needles = self._needles(results)
        batch = query_for(store).contains_batch(needles)
        fresh = query_for(store)
        singles = [fresh.containing(n) for n in needles]
        assert [[r.to_dict() for r in group] for group in batch] == [
            [r.to_dict() for r in group] for group in singles
        ]

    def test_batch_matches_unindexed_reference(self, populated_store):
        store, results = populated_store
        needles = self._needles(results)
        batch = query_for(store).contains_batch(needles)
        reference = query_for(store)
        expected = [reference._containing_unindexed(n) for n in needles]
        assert batch == expected

    def test_batch_loads_each_run_index_once(self, populated_store):
        """N needles must not re-seed domains per (pattern, needle) pair:
        one sidecar load per stored run answers the whole batch."""
        store, results = populated_store
        query = query_for(store)
        needles = self._needles(results) * 3
        query.contains_batch(needles)
        num_runs = len(store.list_runs(kind="result"))
        index_reads = query.stats.index_loads + query.stats.index_builds
        assert 1 <= index_reads <= num_runs
        # Mined runs persisted their sidecar, so nothing was rebuilt.
        assert query.stats.index_builds == 0
        # Every matcher call was admitted by a prior index seed check.
        assert query.stats.seed_checks >= query.stats.matcher_calls > 0

    def test_empty_batch(self, populated_store):
        store, _ = populated_store
        assert query_for(store).contains_batch([]) == []

    def test_empty_needle_matches_nothing(self, populated_store):
        store, _ = populated_store
        assert query_for(store).contains_batch([LabeledGraph()]) == [[]]


class TestDeprecationShim:
    def test_direct_construction_warns(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="open_catalog"):
            query = CatalogQuery(tmp_path / "cat")
        assert query.top_k(1) == []

    def test_facade_construction_does_not_warn(self, tmp_path, recwarn):
        query_for(tmp_path / "cat").top_k(1)
        assert not [w for w in recwarn if w.category is DeprecationWarning]
