"""Tests for the shared overlap engine (repro.patterns.overlap).

The engine is digest-critical: every support value — hence every mining
result digest and catalog cache key — flows through its conflict graphs.
The property tests here pin the two parity contracts the refactor rests on:

* the inverted-index conflict graph equals the all-pairs reference
  construction (same adjacency, same 0..n-1 key order), and
* ``occurrence_support`` agrees with ``harmful_overlap_support`` when both
  are computed from the same embeddings.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Occurrence, occurrence_support
from repro.graph import (
    LabeledGraph,
    degeneracy_ordered_independent_set,
    greedy_maximum_independent_set,
)
from repro.patterns import (
    EmbeddingIndex,
    Embedding,
    Pattern,
    SupportMeasure,
    conflict_digest,
    harmful_overlap_support,
    independent_set_size,
    max_independent_set,
)

COMMON_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

LABELS = ["A", "B"]


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
@st.composite
def embedded_patterns(draw):
    """A small dense-ish labeled graph plus a tiny pattern with its embeddings."""
    n = draw(st.integers(min_value=2, max_value=7))
    graph = LabeledGraph()
    for i in range(n):
        graph.add_vertex(i, draw(st.sampled_from(LABELS)))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                graph.add_edge(i, j)
    size = draw(st.integers(min_value=1, max_value=3))
    pattern_graph = LabeledGraph()
    for i in range(size):
        pattern_graph.add_vertex(i, draw(st.sampled_from(LABELS)))
        if i:
            pattern_graph.add_edge(i - 1, i)
    pattern = Pattern(graph=pattern_graph)
    pattern.recompute_embeddings(graph, limit=40)
    return pattern


@st.composite
def conflict_graphs(draw):
    """Random undirected adjacency dicts keyed 0..n-1."""
    n = draw(st.integers(min_value=0, max_value=12))
    adjacency = {i: set() for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                adjacency[i].add(j)
                adjacency[j].add(i)
    return adjacency


# --------------------------------------------------------------------------- #
# EmbeddingIndex basics
# --------------------------------------------------------------------------- #
class TestEmbeddingIndex:
    def _chain_pattern_and_embeddings(self):
        pattern = LabeledGraph()
        pattern.add_vertex(0, "A")
        pattern.add_vertex(1, "A")
        pattern.add_edge(0, 1)
        embeddings = [
            Embedding.from_dict({0: 0, 1: 1}),
            Embedding.from_dict({0: 1, 1: 2}),
            Embedding.from_dict({0: 3, 1: 4}),
        ]
        return pattern, embeddings

    def test_inverted_maps(self):
        pattern, embeddings = self._chain_pattern_and_embeddings()
        index = EmbeddingIndex.from_embeddings(embeddings, pattern)
        assert len(index) == 3
        assert index.vertex_map[1] == [0, 1]
        assert index.vertex_map[3] == [2]
        assert index.edge_map[(0, 1)] == [0]
        assert index.edge_map[(1, 2)] == [1]

    def test_conflict_graph_vertex_based(self):
        pattern, embeddings = self._chain_pattern_and_embeddings()
        index = EmbeddingIndex.from_embeddings(embeddings, pattern)
        assert index.conflict_graph(edge_based=False) == {0: {1}, 1: {0}, 2: set()}
        assert index.conflict_graph(edge_based=True) == {0: set(), 1: set(), 2: set()}

    def test_from_occurrences(self):
        occs = [
            Occurrence.from_vertices_edges({1, 2}, {(1, 2)}),
            Occurrence.from_vertices_edges({2, 3}, {(2, 3)}),
        ]
        index = EmbeddingIndex.from_occurrences(occs)
        assert index.conflict_graph(edge_based=False) == {0: {1}, 1: {0}}
        assert index.conflict_graph(edge_based=True) == {0: set(), 1: set()}

    def test_pair_stats_accounting(self):
        pattern, embeddings = self._chain_pattern_and_embeddings()
        index = EmbeddingIndex.from_embeddings(embeddings, pattern)
        stats = index.pair_stats(edge_based=False)
        assert stats["n"] == 3
        assert stats["all_pairs_tests"] == 3
        # Only the single shared vertex produces a pairing touch.
        assert stats["posting_pair_touches"] == 1
        assert stats["pair_tests_avoided"] == 2
        assert stats["conflict_edges"] == 1


# --------------------------------------------------------------------------- #
# parity properties
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(pattern=embedded_patterns(), edge_based=st.booleans())
def test_index_conflict_graph_equals_all_pairs(pattern, edge_based):
    """The tentpole contract: inverted-index build == O(n²) reference build."""
    index = EmbeddingIndex.from_embeddings(pattern.embeddings, pattern.graph)
    fast = index.conflict_graph(edge_based=edge_based)
    reference = index.conflict_graph_all_pairs(edge_based=edge_based)
    assert fast == reference
    assert list(fast) == list(reference)  # same 0..n-1 key insertion order
    assert conflict_digest(fast) == conflict_digest(reference)


@COMMON_SETTINGS
@given(pattern=embedded_patterns())
def test_occurrence_support_matches_harmful_overlap_support(pattern):
    """Occurrence-level and embedding-level harmful overlap must agree."""
    occurrences = [
        Occurrence.from_embedding(pattern.graph, e) for e in pattern.embeddings
    ]
    assert occurrence_support(
        occurrences, SupportMeasure.HARMFUL_OVERLAP
    ) == harmful_overlap_support(pattern.embeddings, pattern.graph)


@COMMON_SETTINGS
@given(pattern=embedded_patterns())
def test_edge_disjoint_occurrence_and_embedding_paths_agree(pattern):
    from repro.patterns import edge_disjoint_support

    occurrences = [
        Occurrence.from_embedding(pattern.graph, e) for e in pattern.embeddings
    ]
    assert occurrence_support(
        occurrences, SupportMeasure.EDGE_DISJOINT
    ) == edge_disjoint_support(pattern.embeddings, pattern.graph)


# --------------------------------------------------------------------------- #
# independent sets
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(adjacency=conflict_graphs())
def test_degeneracy_greedy_is_independent_and_bounded(adjacency):
    chosen = degeneracy_ordered_independent_set(adjacency)
    for v in chosen:
        assert not (adjacency[v] & chosen)
    # Lower-bounded by nothing smaller than... and never above the exact MIS.
    exact = max_independent_set(adjacency, exact_limit=12)
    assert len(chosen) <= len(exact)
    # Isolated vertices are always picked.
    isolated = {v for v, n in adjacency.items() if not n}
    assert isolated <= chosen


@COMMON_SETTINGS
@given(adjacency=conflict_graphs())
def test_degeneracy_greedy_is_deterministic(adjacency):
    assert degeneracy_ordered_independent_set(
        adjacency
    ) == degeneracy_ordered_independent_set({v: set(n) for v, n in adjacency.items()})


def test_degeneracy_greedy_beats_static_greedy_on_a_skewed_instance():
    """The motivating case: updating degrees after removals pays off.

    A hub adjacent to many leaves, where the leaves are also chained in
    pairs: after the first removals the static initial degrees mislead the
    classic greedy, while the degeneracy order re-ranks and picks more.
    """
    rng = random.Random(3)
    n = 40
    adjacency = {i: set() for i in range(n)}

    def connect(a, b):
        adjacency[a].add(b)
        adjacency[b].add(a)

    for i in range(1, n):
        if rng.random() < 0.4:
            connect(0, i)
    for i in range(1, n - 1, 2):
        connect(i, i + 1)
    degen = degeneracy_ordered_independent_set(adjacency)
    static = greedy_maximum_independent_set(adjacency)
    assert len(degen) >= len(static)


def test_independent_set_size_switches_to_greedy_above_limit():
    # A 20-clique: exact would find 1; the greedy fallback must also find 1.
    clique = {i: set(range(20)) - {i} for i in range(20)}
    assert independent_set_size(clique, exact_limit=18) == 1
    # An empty conflict graph of the same size keeps everything.
    empty = {i: set() for i in range(20)}
    assert independent_set_size(empty, exact_limit=18) == 20
