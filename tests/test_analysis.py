"""Unit tests for the analysis helpers (distributions, runtime tables, records)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    DID_NOT_FINISH,
    ExperimentRecord,
    RuntimeTable,
    SeriesReport,
    SizeDistributionComparison,
    recovery_rate,
    summarize_results,
    top_sizes,
)
from repro.core import MiningResult
from repro.patterns import Pattern
from tests.conftest import build_path


def result_with_sizes(name: str, vertex_sizes) -> MiningResult:
    patterns = []
    for size in vertex_sizes:
        labels = [f"L{i}" for i in range(size)]
        patterns.append(Pattern(graph=build_path(labels)))
    return MiningResult(algorithm=name, patterns=patterns, runtime_seconds=0.5)


class TestSizeDistributionComparison:
    def test_add_and_rows(self):
        comparison = SizeDistributionComparison()
        comparison.add(result_with_sizes("SpiderMine", [10, 10, 3]))
        comparison.add(result_with_sizes("SUBDUE", [3, 3, 2]))
        rows = comparison.rows()
        assert {row["size"] for row in rows} == {2, 3, 10}
        row10 = next(r for r in rows if r["size"] == 10)
        assert row10["SpiderMine"] == 2
        assert row10["SUBDUE"] == 0

    def test_add_raw(self):
        comparison = SizeDistributionComparison()
        comparison.add_raw("X", {5: 3})
        assert comparison.largest_size("X") == 5

    def test_largest_and_count_at_least(self):
        comparison = SizeDistributionComparison()
        comparison.add(result_with_sizes("A", [10, 8, 3]))
        assert comparison.largest_size("A") == 10
        assert comparison.count_at_least("A", 8) == 2
        assert comparison.largest_size("missing") == 0

    def test_to_text_contains_all_algorithms(self):
        comparison = SizeDistributionComparison()
        comparison.add(result_with_sizes("A", [4]))
        comparison.add(result_with_sizes("B", [2]))
        text = comparison.to_text("title")
        assert "title" in text and "A" in text and "B" in text

    def test_by_edges(self):
        comparison = SizeDistributionComparison(by="edges")
        comparison.add(result_with_sizes("A", [4]))   # 3 edges
        assert comparison.sizes() == [3]


class TestTopSizesAndRecovery:
    def test_top_sizes_descending(self):
        result = result_with_sizes("A", [3, 10, 7])
        assert top_sizes(result, 2) == [10, 7]

    def test_recovery_rate_full(self):
        result = result_with_sizes("A", [10, 12])
        assert recovery_rate(result, [10, 13]) == pytest.approx(0.5)
        assert recovery_rate(result, [10, 13], tolerance=1) == pytest.approx(1.0)

    def test_recovery_rate_empty_planted(self):
        assert recovery_rate(result_with_sizes("A", [3]), []) == 1.0

    def test_recovery_rate_zero(self):
        assert recovery_rate(result_with_sizes("A", [3]), [30]) == 0.0


class TestRuntimeTable:
    def test_record_and_text(self):
        table = RuntimeTable()
        table.record("GID1", "SpiderMine", 0.5)
        table.record("GID1", "MoSS", None)
        text = table.to_text()
        assert "GID1" in text
        assert DID_NOT_FINISH in text
        assert table.rows["GID1"]["MoSS"] == DID_NOT_FINISH

    def test_record_result(self):
        table = RuntimeTable()
        table.record_result("D", result_with_sizes("A", [3]))
        assert table.rows["D"]["A"] == 0.5
        table.record_result("D", result_with_sizes("B", [3]), completed=False)
        assert table.rows["D"]["B"] == DID_NOT_FINISH

    def test_algorithm_order_stable(self):
        table = RuntimeTable()
        table.record("D1", "Z", 1.0)
        table.record("D1", "A", 2.0)
        table.record("D2", "A", 3.0)
        assert table.algorithms() == ["Z", "A"]


class TestSeriesReport:
    def test_add_and_column(self):
        series = SeriesReport(x_label="|V|")
        series.add_point(100, runtime=1.0, largest=10)
        series.add_point(200, runtime=2.5, largest=20)
        assert series.column("runtime") == [1.0, 2.5]
        assert series.column("|V|") == [100, 200]

    def test_to_text(self):
        series = SeriesReport(x_label="size")
        series.add_point(10, runtime=0.1)
        text = series.to_text("Figure 11")
        assert "Figure 11" in text and "runtime" in text

    def test_to_text_empty(self):
        assert "(empty)" in SeriesReport(x_label="x").to_text("t")


class TestExperimentRecord:
    def test_roundtrip_json(self, tmp_path):
        record = ExperimentRecord(
            experiment_id="fig4",
            description="pattern distribution GID1",
            parameters={"sigma": 2},
        )
        record.add_measurement(algorithm="SpiderMine", size=30, count=10)
        path = record.save(tmp_path)
        loaded = json.loads(path.read_text())
        assert loaded["experiment_id"] == "fig4"
        assert loaded["measurements"][0]["size"] == 30

    def test_to_dict(self):
        record = ExperimentRecord(experiment_id="x", description="d")
        assert record.to_dict()["description"] == "d"


class TestSummaries:
    def test_summarize_results(self):
        text = summarize_results([result_with_sizes("A", [3]), result_with_sizes("B", [4])])
        assert "A:" in text and "B:" in text
