"""Tests for the command-line interface."""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.graph import LabeledGraph, io as graph_io


@pytest.fixture
def tiny_graph_file(tmp_path) -> Path:
    """A small graph file with two disjoint labeled triangles."""
    graph = LabeledGraph()
    for base in (0, 10):
        graph.add_vertex(base + 0, "A")
        graph.add_vertex(base + 1, "B")
        graph.add_vertex(base + 2, "C")
        graph.add_edge(base + 0, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base + 0, base + 2)
    path = tmp_path / "tiny.lg"
    graph_io.write_lg([graph], path)
    return path


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["mine", "g.lg", "--support", "3", "-k", "4"])
        assert args.command == "mine"
        assert args.support == 3
        assert args.k == 4

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "2", "out.lg"])
        assert args.gid == 2
        assert args.scale == 1.0

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMineCommand:
    def test_mine_runs_and_prints(self, tiny_graph_file, capsys):
        code = main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2", "--dmax", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SpiderMine" in out
        assert "#1" in out

    def test_mine_writes_output(self, tiny_graph_file, tmp_path, capsys):
        out_file = tmp_path / "patterns.json"
        code = main([
            "mine", str(tiny_graph_file), "--support", "2", "-k", "1", "--dmax", "2",
            "--output", str(out_file),
        ])
        assert code == 0
        saved = graph_io.read_json(out_file)
        assert saved
        assert saved[0].num_vertices >= 2

    def test_missing_file_errors(self):
        with pytest.raises(SystemExit):
            main(["mine", "does-not-exist.lg"])


class TestBackendOption:
    def test_backend_defaults_to_csr(self):
        args = build_parser().parse_args(["mine", "g.lg"])
        assert args.backend == "csr"
        args = build_parser().parse_args(["spiders", "g.lg", "--backend", "dict"])
        assert args.backend == "dict"

    def test_mine_output_identical_across_backends(self, tiny_graph_file, capsys):
        outputs = {}
        for backend in ("dict", "csr"):
            code = main([
                "mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                "--dmax", "2", "--backend", backend,
            ])
            assert code == 0
            printed = capsys.readouterr().out
            # Drop the summary line, whose runtime field is nondeterministic.
            outputs[backend] = [l for l in printed.splitlines() if l.startswith("  #")]
        assert outputs["dict"] == outputs["csr"]
        assert outputs["csr"]


class TestWorkersOption:
    def test_workers_defaults_to_serial(self):
        args = build_parser().parse_args(["mine", "g.lg"])
        assert args.workers == 1
        args = build_parser().parse_args(["spiders", "g.lg", "--workers", "1"])
        assert args.workers == 1

    @pytest.mark.parametrize("command", ["mine", "spiders", "compare"])
    def test_zero_workers_exits_with_message(self, command, tiny_graph_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, str(tiny_graph_file), "--workers", "0"])
        assert excinfo.value.code not in (0, None)
        assert "--workers must be at least 1" in str(excinfo.value)

    def test_negative_workers_exits_with_message(self, tiny_graph_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(tiny_graph_file), "--workers", "-3"])
        assert "--workers must be at least 1" in str(excinfo.value)

    def test_oversubscribed_workers_exits_with_message(self, tiny_graph_file):
        too_many = (os.cpu_count() or 1) + 1
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(tiny_graph_file), "--workers", str(too_many)])
        assert excinfo.value.code not in (0, None)
        assert "exceeds" in str(excinfo.value)

    def test_workers_validated_before_graph_is_loaded(self):
        """A bad worker count fails fast even when the input is also missing."""
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", "does-not-exist.lg", "--workers", "0"])
        assert "--workers" in str(excinfo.value)

    def test_single_worker_mines_serially(self, tiny_graph_file, capsys):
        code = main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                     "--dmax", "2", "--workers", "1"])
        assert code == 0
        assert "SpiderMine" in capsys.readouterr().out

    @pytest.mark.skipif((os.cpu_count() or 1) < 2, reason="needs >= 2 CPUs")
    def test_parallel_cli_output_matches_serial(self, tiny_graph_file, capsys):
        outputs = {}
        for workers in ("1", "2"):
            code = main([
                "mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                "--dmax", "2", "--workers", workers,
            ])
            assert code == 0
            printed = capsys.readouterr().out
            outputs[workers] = [l for l in printed.splitlines() if l.startswith("  #")]
        assert outputs["1"] == outputs["2"]


class TestGenerateCommand:
    def test_generate_writes_lg(self, tmp_path, capsys):
        out = tmp_path / "gid1.lg"
        code = main(["generate", "1", str(out), "--scale", "0.3", "--seed", "1"])
        assert code == 0
        graphs = graph_io.read_lg(out)
        assert graphs[0].num_vertices == 120
        printed = capsys.readouterr().out
        assert "GID 1" in printed
        # The second line is JSON describing the planted patterns.
        planted = json.loads(printed.strip().splitlines()[-1])
        assert "large_sizes" in planted


class TestSpidersCommand:
    def test_spider_statistics(self, tiny_graph_file, capsys):
        code = main(["spiders", str(tiny_graph_file), "--support", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "frequent 1-spiders" in out
        assert "|V|=3" in out


class TestCompareCommand:
    def test_compare_runs(self, tiny_graph_file, capsys):
        code = main(["compare", str(tiny_graph_file), "--support", "2", "-k", "2", "--dmax", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SpiderMine" in out
        assert "SUBDUE" in out
        assert "SEuS" in out


class TestVersionFlag:
    def test_version_reports_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out == f"spidermine-repro {repro.__version__}"

    def test_dunder_version_matches_installed_metadata(self):
        """importlib.metadata is the source of truth when the dist exists."""
        from importlib import metadata

        import repro

        try:
            expected = metadata.version("spidermine-repro")
        except metadata.PackageNotFoundError:
            pytest.skip("package not installed; __version__ falls back to pyproject")
        assert repro.__version__ == expected


class TestCacheOption:
    def test_mine_cache_miss_then_hit(self, tiny_graph_file, tmp_path, capsys):
        store = tmp_path / "catalog"
        argv = ["mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                "--dmax", "2", "--cache", str(store)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache: stored" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache: hit" in second

        # Identical pattern listing either way.
        listing = lambda text: [l for l in text.splitlines() if l.startswith("  #")]  # noqa: E731
        assert listing(first) == listing(second)
        assert listing(first)

    def test_cache_mode_readonly_never_writes(self, tiny_graph_file, tmp_path, capsys):
        store = tmp_path / "catalog"
        code = main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                     "--dmax", "2", "--cache", str(store), "--cache-mode", "readonly"])
        assert code == 0
        assert "cache: miss" in capsys.readouterr().out
        assert not (store / "objects").exists()


class TestCatalogCommands:
    def test_ingest_list_query_gc_flow(self, tiny_graph_file, tmp_path, capsys):
        store = str(tmp_path / "catalog")

        assert main(["catalog", "ingest", store, str(tiny_graph_file)]) == 0
        out = capsys.readouterr().out
        assert "graph digest:" in out

        assert main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                     "--dmax", "2", "--cache", store]) == 0
        capsys.readouterr()

        assert main(["catalog", "list", store]) == 0
        out = capsys.readouterr().out
        assert "[pinned]" in out
        assert "SpiderMine" in out

        assert main(["catalog", "query", store, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "#1:" in out

        assert main(["catalog", "query", store, "--top", "2", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records and records[0]["num_vertices"] >= 2

        assert main(["catalog", "gc", store]) == 0
        out = capsys.readouterr().out
        assert "gc: removed" in out

    def test_query_contains(self, tiny_graph_file, tmp_path, capsys):
        store = str(tmp_path / "catalog")
        assert main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                     "--dmax", "2", "--cache", store]) == 0
        capsys.readouterr()
        # The mined triangle patterns contain an A-B edge.
        needle = LabeledGraph()
        needle.add_vertex(0, "A")
        needle.add_vertex(1, "B")
        needle.add_edge(0, 1)
        needle_file = tmp_path / "needle.lg"
        graph_io.write_lg([needle], needle_file)
        assert main(["catalog", "query", store, "--contains", str(needle_file)]) == 0
        out = capsys.readouterr().out
        assert "no matching patterns" not in out
        assert "#1:" in out

    def test_query_empty_store(self, tmp_path, capsys):
        assert main(["catalog", "query", str(tmp_path / "empty"), "--top", "3"]) == 0
        assert "no matching patterns" in capsys.readouterr().out

    def test_query_contains_composes_with_label(self, tiny_graph_file, tmp_path, capsys):
        store = str(tmp_path / "catalog")
        assert main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                     "--dmax", "2", "--cache", store]) == 0
        capsys.readouterr()
        needle = LabeledGraph()
        needle.add_vertex(0, "A")
        needle_file = tmp_path / "needle.lg"
        graph_io.write_lg([needle], needle_file)
        # Containment matches exist, but no stored pattern carries label Z.
        assert main(["catalog", "query", store, "--contains", str(needle_file),
                     "--label", "Z"]) == 0
        assert "no matching patterns" in capsys.readouterr().out

    def test_query_top_zero_returns_nothing(self, tiny_graph_file, tmp_path, capsys):
        store = str(tmp_path / "catalog")
        assert main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                     "--dmax", "2", "--cache", store]) == 0
        capsys.readouterr()
        assert main(["catalog", "query", store, "--top", "0"]) == 0
        assert "no matching patterns" in capsys.readouterr().out

    def test_query_negative_top_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["catalog", "query", str(tmp_path / "cat"), "--top", "-1"])
        assert "--top must be non-negative" in str(excinfo.value)

    def test_query_json_uses_record_schema(self, tiny_graph_file, tmp_path, capsys):
        """CLI --json emits exactly PatternRecord.to_dict — the HTTP schema."""
        from repro.catalog import PatternRecord

        store = str(tmp_path / "catalog")
        assert main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                     "--dmax", "2", "--cache", store]) == 0
        capsys.readouterr()
        assert main(["catalog", "query", store, "--top", "1", "--json"]) == 0
        (record,) = json.loads(capsys.readouterr().out)
        assert set(record) == set(PatternRecord.from_dict(record).to_dict())


class TestServeCommand:
    def test_serve_shares_query_options(self):
        args = build_parser().parse_args(
            ["serve", "cat", "--top", "5", "--by", "support", "--label", "A",
             "--port", "0"]
        )
        assert args.command == "serve"
        assert (args.top, args.by, args.label) == (5, "support", "A")
        assert args.host == "127.0.0.1" and args.port == 0

    def test_query_and_serve_accept_identical_shared_flags(self):
        shared = ["--top", "3", "--by", "edges", "--label", "A",
                  "--run", "abc", "--json"]
        q = build_parser().parse_args(["catalog", "query", "cat", *shared])
        s = build_parser().parse_args(["serve", "cat", *shared])
        for name in ("top", "by", "label", "run", "json"):
            assert getattr(q, name) == getattr(s, name)

    def test_serve_negative_top_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", str(tmp_path / "cat"), "--top", "-1"])
        assert "--top must be non-negative" in str(excinfo.value)
