"""Tests for the command-line interface."""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.graph import LabeledGraph, io as graph_io


@pytest.fixture
def tiny_graph_file(tmp_path) -> Path:
    """A small graph file with two disjoint labeled triangles."""
    graph = LabeledGraph()
    for base in (0, 10):
        graph.add_vertex(base + 0, "A")
        graph.add_vertex(base + 1, "B")
        graph.add_vertex(base + 2, "C")
        graph.add_edge(base + 0, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base + 0, base + 2)
    path = tmp_path / "tiny.lg"
    graph_io.write_lg([graph], path)
    return path


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["mine", "g.lg", "--support", "3", "-k", "4"])
        assert args.command == "mine"
        assert args.support == 3
        assert args.k == 4

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "2", "out.lg"])
        assert args.gid == 2
        assert args.scale == 1.0

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMineCommand:
    def test_mine_runs_and_prints(self, tiny_graph_file, capsys):
        code = main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2", "--dmax", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SpiderMine" in out
        assert "#1" in out

    def test_mine_writes_output(self, tiny_graph_file, tmp_path, capsys):
        out_file = tmp_path / "patterns.json"
        code = main([
            "mine", str(tiny_graph_file), "--support", "2", "-k", "1", "--dmax", "2",
            "--output", str(out_file),
        ])
        assert code == 0
        saved = graph_io.read_json(out_file)
        assert saved
        assert saved[0].num_vertices >= 2

    def test_missing_file_errors(self):
        with pytest.raises(SystemExit):
            main(["mine", "does-not-exist.lg"])


class TestBackendOption:
    def test_backend_defaults_to_csr(self):
        args = build_parser().parse_args(["mine", "g.lg"])
        assert args.backend == "csr"
        args = build_parser().parse_args(["spiders", "g.lg", "--backend", "dict"])
        assert args.backend == "dict"

    def test_mine_output_identical_across_backends(self, tiny_graph_file, capsys):
        outputs = {}
        for backend in ("dict", "csr"):
            code = main([
                "mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                "--dmax", "2", "--backend", backend,
            ])
            assert code == 0
            printed = capsys.readouterr().out
            # Drop the summary line, whose runtime field is nondeterministic.
            outputs[backend] = [l for l in printed.splitlines() if l.startswith("  #")]
        assert outputs["dict"] == outputs["csr"]
        assert outputs["csr"]


class TestWorkersOption:
    def test_workers_defaults_to_serial(self):
        args = build_parser().parse_args(["mine", "g.lg"])
        assert args.workers == 1
        args = build_parser().parse_args(["spiders", "g.lg", "--workers", "1"])
        assert args.workers == 1

    @pytest.mark.parametrize("command", ["mine", "spiders", "compare"])
    def test_zero_workers_exits_with_message(self, command, tiny_graph_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, str(tiny_graph_file), "--workers", "0"])
        assert excinfo.value.code not in (0, None)
        assert "--workers must be at least 1" in str(excinfo.value)

    def test_negative_workers_exits_with_message(self, tiny_graph_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(tiny_graph_file), "--workers", "-3"])
        assert "--workers must be at least 1" in str(excinfo.value)

    def test_oversubscribed_workers_exits_with_message(self, tiny_graph_file):
        too_many = (os.cpu_count() or 1) + 1
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(tiny_graph_file), "--workers", str(too_many)])
        assert excinfo.value.code not in (0, None)
        assert "exceeds" in str(excinfo.value)

    def test_workers_validated_before_graph_is_loaded(self):
        """A bad worker count fails fast even when the input is also missing."""
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", "does-not-exist.lg", "--workers", "0"])
        assert "--workers" in str(excinfo.value)

    def test_single_worker_mines_serially(self, tiny_graph_file, capsys):
        code = main(["mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                     "--dmax", "2", "--workers", "1"])
        assert code == 0
        assert "SpiderMine" in capsys.readouterr().out

    @pytest.mark.skipif((os.cpu_count() or 1) < 2, reason="needs >= 2 CPUs")
    def test_parallel_cli_output_matches_serial(self, tiny_graph_file, capsys):
        outputs = {}
        for workers in ("1", "2"):
            code = main([
                "mine", str(tiny_graph_file), "--support", "2", "-k", "2",
                "--dmax", "2", "--workers", workers,
            ])
            assert code == 0
            printed = capsys.readouterr().out
            outputs[workers] = [l for l in printed.splitlines() if l.startswith("  #")]
        assert outputs["1"] == outputs["2"]


class TestGenerateCommand:
    def test_generate_writes_lg(self, tmp_path, capsys):
        out = tmp_path / "gid1.lg"
        code = main(["generate", "1", str(out), "--scale", "0.3", "--seed", "1"])
        assert code == 0
        graphs = graph_io.read_lg(out)
        assert graphs[0].num_vertices == 120
        printed = capsys.readouterr().out
        assert "GID 1" in printed
        # The second line is JSON describing the planted patterns.
        planted = json.loads(printed.strip().splitlines()[-1])
        assert "large_sizes" in planted


class TestSpidersCommand:
    def test_spider_statistics(self, tiny_graph_file, capsys):
        code = main(["spiders", str(tiny_graph_file), "--support", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "frequent 1-spiders" in out
        assert "|V|=3" in out


class TestCompareCommand:
    def test_compare_runs(self, tiny_graph_file, capsys):
        code = main(["compare", str(tiny_graph_file), "--support", "2", "-k", "2", "--dmax", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SpiderMine" in out
        assert "SUBDUE" in out
        assert "SEuS" in out
