"""Unit tests for the transaction-setting baselines: ORIGAMI and gSpan."""

from __future__ import annotations

import pytest

from repro.baselines import Origami, OrigamiConfig, run_gspan, run_origami
from repro.graph import LabeledGraph
from repro.transaction import GraphDatabase
from tests.conftest import build_path, build_triangle


def small_database() -> GraphDatabase:
    """Four transactions, each containing an A-B-C triangle; two also contain a D-E edge."""
    graphs = []
    for i in range(4):
        graph = build_triangle(("A", "B", "C"))
        if i < 2:
            graph.add_vertex(10, "D")
            graph.add_vertex(11, "E")
            graph.add_edge(10, 11)
        graphs.append(graph)
    return GraphDatabase(graphs=graphs)


class TestGSpan:
    def test_complete_enumeration(self):
        database = small_database()
        result = run_gspan(database, min_support=4, max_edges=4)
        assert result.algorithm == "gSpan"
        assert result.parameters["completed"] is True
        codes = {p.code for p in result.patterns}
        # The triangle and all of its connected subpatterns are frequent in
        # every transaction: 3 edges, 3 paths, 1 triangle.
        assert len(codes) == 7

    def test_support_threshold(self):
        database = small_database()
        everything = run_gspan(database, min_support=2, max_edges=2)
        frequent_only = run_gspan(database, min_support=4, max_edges=2)
        assert len(frequent_only.patterns) < len(everything.patterns)

    def test_de_edge_found_at_low_support(self):
        database = small_database()
        result = run_gspan(database, min_support=2, max_edges=1)
        labels = {frozenset(p.graph.label_set()) for p in result.patterns}
        assert frozenset({"D", "E"}) in labels

    def test_time_budget_marks_incomplete(self):
        database = small_database()
        result = run_gspan(database, min_support=2, max_edges=20, time_budget_seconds=0.0)
        assert result.parameters["completed"] is False

    def test_patterns_sorted_largest_first(self):
        result = run_gspan(small_database(), min_support=4, max_edges=4)
        sizes = [p.num_edges for p in result.patterns]
        assert sizes == sorted(sizes, reverse=True)


class TestOrigami:
    def test_walks_reach_maximal_patterns(self):
        database = small_database()
        result = run_origami(database, min_support=4, num_walks=10, seed=1)
        assert result.algorithm == "ORIGAMI"
        assert result.patterns
        # A maximal frequent pattern here is the triangle itself.
        assert result.largest_size_vertices == 3

    def test_patterns_are_frequent(self):
        database = small_database()
        result = run_origami(database, min_support=2, num_walks=10, seed=2)
        for pattern in result.patterns:
            assert database.transaction_support(pattern.graph) >= 2

    def test_deterministic_with_seed(self):
        database = small_database()
        first = run_origami(database, min_support=2, num_walks=8, seed=3)
        second = run_origami(database, min_support=2, num_walks=8, seed=3)
        assert [p.code for p in first.patterns] == [p.code for p in second.patterns]

    def test_alpha_controls_orthogonality(self):
        database = small_database()
        strict_config = OrigamiConfig(min_support=2, num_walks=12, alpha=0.0, seed=4)
        strict = Origami(database, strict_config).mine()
        loose_config = OrigamiConfig(min_support=2, num_walks=12, alpha=1.0, seed=4)
        loose = Origami(database, loose_config).mine()
        assert len(strict.patterns) <= len(loose.patterns)

    def test_empty_database(self):
        result = run_origami(GraphDatabase(graphs=[LabeledGraph()]), min_support=1, num_walks=3)
        assert result.patterns == []

    def test_similarity_measure(self):
        database = small_database()
        miner = Origami(database)
        tri = build_triangle(("A", "B", "C"))
        assert miner._similarity(tri, tri.copy()) == pytest.approx(1.0)
        other = build_path(["D", "E"])
        assert miner._similarity(tri, other) == pytest.approx(0.0)
