"""Unit tests for canonical labeling of labeled graphs."""

from __future__ import annotations

import random


from repro.graph import (
    LabeledGraph,
    are_isomorphic,
    are_isomorphic_by_code,
    canonical_code,
    canonical_form,
    canonical_order,
)
from tests.conftest import build_path, build_star, build_triangle


def shuffled_copy(graph: LabeledGraph, seed: int) -> LabeledGraph:
    """An isomorphic copy of ``graph`` with randomly permuted vertex names."""
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    new_names = list(range(100, 100 + len(vertices)))
    rng.shuffle(new_names)
    mapping = dict(zip(vertices, new_names))
    return graph.relabeled(mapping)


class TestCanonicalCode:
    def test_code_is_deterministic(self, triangle):
        assert canonical_code(triangle) == canonical_code(triangle)

    def test_isomorphic_graphs_share_code(self, triangle):
        for seed in range(5):
            assert canonical_code(shuffled_copy(triangle, seed)) == canonical_code(triangle)

    def test_different_labels_different_code(self):
        a = build_triangle(("A", "B", "C"))
        b = build_triangle(("A", "B", "D"))
        assert canonical_code(a) != canonical_code(b)

    def test_different_structure_different_code(self):
        path = build_path(["A", "A", "A"])
        tri = build_triangle(("A", "A", "A"))
        assert canonical_code(path) != canonical_code(tri)

    def test_empty_graph_code(self):
        assert canonical_code(LabeledGraph()) == "|"

    def test_single_vertex_code_contains_label(self):
        graph = LabeledGraph()
        graph.add_vertex("x", "Hub")
        assert "Hub" in canonical_code(graph)

    def test_symmetric_star_code_stable(self):
        star = build_star("H", ("L",) * 6)
        for seed in range(4):
            assert canonical_code(shuffled_copy(star, seed)) == canonical_code(star)

    def test_code_distinguishes_star_sizes(self):
        assert canonical_code(build_star("H", ("L",) * 3)) != canonical_code(
            build_star("H", ("L",) * 4)
        )


class TestCanonicalFormAndOrder:
    def test_canonical_form_is_isomorphic(self, triangle):
        form = canonical_form(triangle)
        assert are_isomorphic(form, triangle)
        assert set(form.vertices()) == {0, 1, 2}

    def test_canonical_form_identical_across_copies(self, path4):
        forms = [canonical_form(shuffled_copy(path4, s)) for s in range(3)]
        first = forms[0]
        for other in forms[1:]:
            assert first == other

    def test_canonical_order_covers_all_vertices(self, star3):
        order = canonical_order(star3)
        assert sorted(order) == sorted(star3.vertices())

    def test_canonical_order_empty(self):
        assert canonical_order(LabeledGraph()) == []


class TestIsomorphismByCode:
    def test_matches_vf2_on_small_graphs(self):
        graphs = [
            build_triangle(("A", "A", "B")),
            build_path(["A", "B", "A"]),
            build_star("A", ("B", "B")),
            build_path(["A", "A", "B"]),
        ]
        for i, g in enumerate(graphs):
            for j, h in enumerate(graphs):
                assert are_isomorphic_by_code(g, h) == are_isomorphic(g, h), (i, j)

    def test_quick_rejection_on_size(self, triangle, path4):
        assert not are_isomorphic_by_code(triangle, path4)

    def test_quick_rejection_on_labels(self):
        a = build_path(["A", "B"])
        b = build_path(["A", "C"])
        assert not are_isomorphic_by_code(a, b)
