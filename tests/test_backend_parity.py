"""Mining is backend-identical: dict and csr produce the same results.

The acceptance bar for the pluggable-backend layer: for a fixed seed,
``SpiderMine.mine()`` must return the same top-K patterns — same canonical
codes *and* same supports — whether the data graph is the mutable
dict-of-sets builder or the frozen CSR snapshot.  Stage I alone is also
checked, since the seed draw of Stage II samples from its output order.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import run_grew, run_moss, run_seus, run_subdue
from repro.core import SpiderMine, SpiderMineConfig, mine_spiders
from repro.graph import LabeledGraph, freeze, io as graph_io, synthetic_single_graph
from repro.patterns.support import compute_support


@pytest.fixture(scope="module")
def planted():
    return synthetic_single_graph(
        num_vertices=150,
        num_labels=30,
        average_degree=2.0,
        num_large_patterns=2,
        large_pattern_vertices=10,
        large_pattern_support=2,
        num_small_patterns=2,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=7,
        max_pattern_diameter=6,
    )


def test_stage1_spiders_identical(planted):
    dict_spiders = mine_spiders(planted.graph, min_support=2, radius=1, max_spider_size=4)
    csr_spiders = mine_spiders(freeze(planted.graph), min_support=2, radius=1, max_spider_size=4)
    assert [s.spider_code() for s in dict_spiders] == [s.spider_code() for s in csr_spiders]
    assert [len(s.embeddings) for s in dict_spiders] == [len(s.embeddings) for s in csr_spiders]


@pytest.mark.parametrize("seed", [0, 3])
def test_mine_returns_identical_top_k(planted, seed):
    config = SpiderMineConfig(min_support=2, k=5, d_max=6, seed=seed)
    dict_result = SpiderMine(planted.graph, config).mine()
    csr_result = SpiderMine(freeze(planted.graph), config).mine()

    dict_report = [
        (p.code, compute_support(p, measure=config.support_measure))
        for p in dict_result.patterns
    ]
    csr_report = [
        (p.code, compute_support(p, measure=config.support_measure))
        for p in csr_result.patterns
    ]
    assert dict_report == csr_report
    assert dict_report  # the run actually found patterns


def scrambled_id_graph(seed: int) -> LabeledGraph:
    """A graph whose vertex ids are large random ints, so adjacency-set hash
    order has nothing to do with insertion or index order.  This is the shape
    that exposes any backend code path relying on incidental set ordering —
    contiguous 0..n-1 ids mask it."""
    rng = random.Random(seed)
    ids = [rng.randrange(10**9) for _ in range(50)]
    graph = LabeledGraph()
    for v in ids:
        graph.add_vertex(v, rng.choice("ABCD"))
    for _ in range(80):
        u, v = rng.sample(ids, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


@pytest.mark.parametrize("seed", [1, 2])
def test_edge_stream_identical_on_scrambled_ids(seed):
    graph = scrambled_id_graph(seed)
    assert list(freeze(graph).edges()) == list(graph.edges())


@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize(
    "runner",
    [
        lambda g: run_subdue(g),
        lambda g: run_seus(g, min_support=2),
        lambda g: run_moss(g, min_support=3, max_edges=3),
        lambda g: run_grew(g, min_support=2, max_iterations=3),
    ],
    ids=["subdue", "seus", "moss", "grew"],
)
def test_baselines_identical_on_scrambled_ids(runner, seed):
    """The single-graph baselines truncate candidate buckets in edge/discovery
    order, so they only stay backend-identical if that order is canonical."""
    graph = scrambled_id_graph(seed)
    dict_report = [(p.code, len(p.embeddings)) for p in runner(graph).patterns]
    csr_report = [(p.code, len(p.embeddings)) for p in runner(freeze(graph)).patterns]
    assert dict_report == csr_report


def test_spidermine_identical_on_scrambled_ids():
    graph = scrambled_id_graph(5)
    config = SpiderMineConfig(min_support=2, k=4, d_max=4, seed=1)
    dict_result = SpiderMine(graph, config).mine()
    csr_result = SpiderMine(freeze(graph), config).mine()
    assert [p.code for p in dict_result.patterns] == [p.code for p in csr_result.patterns]


def test_round_trip_through_disk_preserves_parity(planted, tmp_path):
    """.lg → load in both backends → mining agrees (ids are renumbered on disk,
    so the comparison is between the two backends on the *same* reloaded graph)."""
    path = tmp_path / "g.lg"
    graph_io.write_lg([planted.graph], path)
    mutable = graph_io.read_lg(path)[0]
    frozen = graph_io.read_lg(path, frozen=True)[0]
    assert frozen == mutable
    config = SpiderMineConfig(min_support=2, k=3, d_max=6, seed=0)
    dict_result = SpiderMine(mutable, config).mine()
    csr_result = SpiderMine(frozen, config).mine()
    assert [p.code for p in dict_result.patterns] == [p.code for p in csr_result.patterns]
