"""Telemetry is provably result-neutral: digests are bit-identical.

The load-bearing invariant of ``repro.obs``: enabling the metrics registry,
or the registry *and* the span tracer (the CLI's ``--trace``), must never
change what is mined.  This sweep pins ``MiningResult.digest()`` —
a SHA-256 over every pattern's canonical code, support and embeddings —
across telemetry × {off (NullRegistry), metrics, metrics+trace}, on both
graph backends and both execution modes (serial and a 2-worker process
pool, which exercises the worker span-tree merge path).
"""

from __future__ import annotations

import pytest

from repro.core import SpiderMine, SpiderMineConfig
from repro.graph import freeze, synthetic_single_graph
from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer
from repro.parallel import ExecutionPolicy

MODES = ("off", "metrics", "trace")


@pytest.fixture(scope="module")
def planted():
    return synthetic_single_graph(
        num_vertices=120,
        num_labels=30,
        average_degree=2.0,
        num_large_patterns=2,
        large_pattern_vertices=10,
        large_pattern_support=2,
        num_small_patterns=2,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=5,
        max_pattern_diameter=6,
    )


def _mine_digest(graph, workers: int, mode: str):
    """One mining run under the given telemetry mode; returns (digest, registry, tracer)."""
    execution = (
        ExecutionPolicy()
        if workers == 1
        else ExecutionPolicy(mode="process", n_workers=workers)
    )
    config = SpiderMineConfig(min_support=2, k=5, d_max=6, seed=0, execution=execution)
    registry = MetricsRegistry() if mode != "off" else None
    tracer = Tracer() if mode == "trace" else None
    with use_registry(registry), use_tracer(tracer):
        result = SpiderMine(graph, config).mine()
    return result.digest(), registry, tracer


@pytest.mark.parametrize("backend", ["dict", "csr"])
@pytest.mark.parametrize("workers", [1, 2])
def test_digests_identical_across_telemetry_modes(planted, backend, workers):
    graph = planted.graph if backend == "dict" else freeze(planted.graph)

    digests = {}
    collected = {}
    for mode in MODES:
        digests[mode], registry, tracer = _mine_digest(graph, workers, mode)
        collected[mode] = (registry, tracer)

    assert digests["metrics"] == digests["off"]
    assert digests["trace"] == digests["off"]

    # Guard against a vacuous pass: the instrumented runs must actually
    # have instrumented something.
    registry, _ = collected["metrics"]
    flat = registry.flat()
    assert flat["mine.runs"] == 1
    assert flat["mine.stage1.units"] > 0
    assert flat["mine.statistics.num_spiders"] > 0

    _, tracer = collected["trace"]
    roots = tracer.roots()
    assert [r.name for r in roots] == ["mine.stage1", "mine.stage2", "mine.stage3"]
    stage1 = roots[0]
    assert stage1.children, "per-unit spans missing (serial record / worker merge)"
    assert all(c.name == "mine.stage1.unit" for c in stage1.children)
    units = [c.attrs["unit"] for c in stage1.children]
    assert units == sorted(units)  # deterministic merge order


def test_cli_telemetry_matches_library_digest(planted, tmp_path):
    """mine --telemetry (registry + tracer + sidecar write) changes nothing."""
    import repro

    baseline = repro.mine(planted.graph, min_support=2, k=5, d_max=6).digest()
    with use_registry(MetricsRegistry()), use_tracer(Tracer()):
        instrumented = repro.mine(
            planted.graph, min_support=2, k=5, d_max=6, catalog=tmp_path / "cat"
        )
    assert instrumented.digest() == baseline
