"""Unit tests for r-spiders and the spider-set representation."""

from __future__ import annotations

import pytest

from repro.graph import LabeledGraph
from repro.patterns import (
    Embedding,
    Pattern,
    Spider,
    SpiderSet,
    SpiderSetIndex,
    extract_spider,
    extract_spider_from_data,
    head_distinguished_code,
)
from tests.conftest import build_path, build_star, build_triangle


class TestSpiderConstruction:
    def test_star_is_1_spider_from_center(self):
        spider = Spider(graph=build_star(), head=0, radius=1)
        assert spider.head_label == "H"
        assert spider.num_vertices == 4

    def test_star_not_1_spider_from_leaf(self):
        with pytest.raises(ValueError):
            Spider(graph=build_star(), head=1, radius=1)

    def test_head_required(self):
        with pytest.raises(ValueError):
            Spider(graph=build_star(), head=None, radius=1)

    def test_head_must_exist(self):
        with pytest.raises(ValueError):
            Spider(graph=build_star(), head=42, radius=1)

    def test_path_is_2_spider_from_middle(self):
        path = build_path(["A", "B", "C", "D", "E"])
        spider = Spider(graph=path, head=2, radius=2)
        assert spider.radius == 2

    def test_boundary_vertices_star(self):
        spider = Spider(graph=build_star(), head=0, radius=1)
        assert spider.boundary_vertices() == [1, 2, 3]

    def test_boundary_vertices_single_vertex(self):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        spider = Spider(graph=graph, head=0, radius=1)
        assert spider.boundary_vertices() == [0]

    def test_head_images(self, two_copy_graph):
        graph = LabeledGraph()
        graph.add_vertex(0, "A")
        graph.add_vertex(1, "B")
        graph.add_edge(0, 1)
        spider = Spider(
            graph=graph,
            embeddings=[Embedding.from_dict({0: 0, 1: 1}), Embedding.from_dict({0: 10, 1: 11})],
            head=0,
            radius=1,
        )
        assert spider.head_images() == [0, 10]

    def test_copy_preserves_head(self):
        spider = Spider(graph=build_star(), head=0, radius=1)
        clone = spider.copy()
        assert clone.head == 0
        assert clone.radius == 1
        assert clone.graph == spider.graph


class TestHeadDistinguishedCode:
    def test_same_graph_different_head_different_code(self):
        path = build_path(["A", "B", "A"])
        code_end = head_distinguished_code(path, 0)
        code_mid = head_distinguished_code(path, 1)
        assert code_end != code_mid

    def test_symmetric_heads_share_code(self):
        path = build_path(["A", "B", "A"])
        assert head_distinguished_code(path, 0) == head_distinguished_code(path, 2)

    def test_isomorphic_spiders_share_code(self):
        star_a = build_star("H", ("L", "L"))
        star_b = build_star("H", ("L", "L")).relabeled({0: 9, 1: 8, 2: 7})
        assert head_distinguished_code(star_a, 0) == head_distinguished_code(star_b, 9)


class TestExtraction:
    def test_extract_spider_within_pattern(self):
        path = build_path(["A", "B", "C", "D"])
        sub, head = extract_spider(path, 1, 1)
        assert head == 1
        assert set(sub.vertices()) == {0, 1, 2}

    def test_extract_spider_from_data(self, two_copy_graph):
        spider = extract_spider_from_data(two_copy_graph, 0, 1)
        assert spider.head == 0
        assert spider.num_vertices == 3  # triangle corner sees both others
        assert len(spider.embeddings) == 1


class TestSpiderSet:
    def test_multiset_size_equals_vertex_count(self):
        star = build_star()
        spider_set = SpiderSet.of(star, radius=1)
        assert len(spider_set) == star.num_vertices

    def test_isomorphic_patterns_equal_spider_sets(self):
        """Theorem 2: P isomorphic to Q implies S[P] == S[Q]."""
        tri_a = build_triangle(("A", "B", "C"))
        tri_b = tri_a.relabeled({0: 10, 1: 11, 2: 12})
        assert SpiderSet.of(tri_a) == SpiderSet.of(tri_b)
        assert hash(SpiderSet.of(tri_a)) == hash(SpiderSet.of(tri_b))

    def test_different_patterns_different_sets(self):
        assert SpiderSet.of(build_triangle(("A", "A", "A"))) != SpiderSet.of(
            build_path(["A", "A", "A"])
        )

    def test_distinct_spiders_counted(self):
        star = build_star("H", ("L", "L", "L"))
        spider_set = SpiderSet.of(star)
        # Head spider appears once; the three leaf spiders are identical.
        assert spider_set.distinct_spiders == 2
        assert spider_set.as_counter().most_common(1)[0][1] == 3

    def test_paper_figure3_radius_sensitivity(self):
        """Figure 3 (II): two different graphs can share the r=1 spider-set
        but are separated at r=2 — larger radius means stronger constraints."""
        # Graph (a): 6-cycle.  Graph (b): two triangles.  Same labels everywhere.
        cycle = LabeledGraph()
        for i in range(6):
            cycle.add_vertex(i, "X")
        for i in range(6):
            cycle.add_edge(i, (i + 1) % 6)
        two_triangles = LabeledGraph()
        for i in range(6):
            two_triangles.add_vertex(i, "X")
        for a, b in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
            two_triangles.add_edge(a, b)
        assert SpiderSet.of(cycle, radius=1) == SpiderSet.of(two_triangles, radius=1)
        assert SpiderSet.of(cycle, radius=2) != SpiderSet.of(two_triangles, radius=2)


class TestSpiderSetIndex:
    def test_new_spider_set_skips_isomorphism(self):
        index = SpiderSetIndex()
        index.add(Pattern(graph=build_triangle(("A", "B", "C"))))
        index.add(Pattern(graph=build_path(["A", "B", "C"])))
        assert len(index) == 2
        assert index.isomorphism_checks == 0

    def test_duplicate_pattern_merged(self, two_copy_graph):
        index = SpiderSetIndex()
        first = Pattern(graph=build_triangle())
        first.recompute_embeddings(two_copy_graph, limit=1)
        second = Pattern(graph=build_triangle().relabeled({0: 5, 1: 6, 2: 7}))
        second.recompute_embeddings(two_copy_graph)
        _, was_new_first = index.add(first)
        merged, was_new_second = index.add(second)
        assert was_new_first
        assert not was_new_second
        assert len(index) == 1
        assert merged.support == 2
        assert index.isomorphism_checks >= 1

    def test_might_be_isomorphic(self):
        index = SpiderSetIndex()
        a = Pattern(graph=build_triangle(("A", "A", "A")))
        b = Pattern(graph=build_path(["A", "A", "A"]))
        c = Pattern(graph=build_triangle(("A", "A", "A")).relabeled({0: 3, 1: 4, 2: 5}))
        assert not index.might_be_isomorphic(a, b)
        assert index.might_be_isomorphic(a, c)

    def test_patterns_listing(self):
        index = SpiderSetIndex()
        index.add(Pattern(graph=build_triangle()))
        index.add(Pattern(graph=build_star()))
        assert len(index.patterns()) == 2
