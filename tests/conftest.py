"""Shared fixtures for the test suite.

Fixtures build small, deterministic graphs so every test is reproducible and
fast; the heavier end-to-end fixtures are session-scoped so mining runs are
shared across the tests that inspect them.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installation.
SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.graph import LabeledGraph, synthetic_single_graph  # noqa: E402
from repro.core import SpiderMine, SpiderMineConfig  # noqa: E402


def build_triangle(labels=("A", "B", "C")) -> LabeledGraph:
    graph = LabeledGraph()
    for i, label in enumerate(labels):
        graph.add_vertex(i, label)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 2)
    return graph


def build_path(labels) -> LabeledGraph:
    graph = LabeledGraph()
    for i, label in enumerate(labels):
        graph.add_vertex(i, label)
    for i in range(len(labels) - 1):
        graph.add_edge(i, i + 1)
    return graph


def build_star(center_label="H", leaf_labels=("A", "B", "C")) -> LabeledGraph:
    graph = LabeledGraph()
    graph.add_vertex(0, center_label)
    for i, label in enumerate(leaf_labels, start=1):
        graph.add_vertex(i, label)
        graph.add_edge(0, i)
    return graph


@pytest.fixture
def triangle() -> LabeledGraph:
    return build_triangle()


@pytest.fixture
def path4() -> LabeledGraph:
    return build_path(["A", "B", "C", "D"])


@pytest.fixture
def star3() -> LabeledGraph:
    return build_star()


@pytest.fixture
def two_copy_graph() -> LabeledGraph:
    """Two disjoint copies of the same labeled triangle plus an isolated vertex."""
    graph = LabeledGraph()
    for base in (0, 10):
        graph.add_vertex(base + 0, "A")
        graph.add_vertex(base + 1, "B")
        graph.add_vertex(base + 2, "C")
        graph.add_edge(base + 0, base + 1)
        graph.add_edge(base + 1, base + 2)
        graph.add_edge(base + 0, base + 2)
    graph.add_vertex(99, "Z")
    return graph


@pytest.fixture(scope="session")
def planted_dataset():
    """A small synthetic single graph with two planted 10-vertex patterns."""
    return synthetic_single_graph(
        num_vertices=120,
        num_labels=30,
        average_degree=2.0,
        num_large_patterns=2,
        large_pattern_vertices=10,
        large_pattern_support=2,
        num_small_patterns=2,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=5,
        max_pattern_diameter=6,
    )


@pytest.fixture(scope="session")
def spidermine_result(planted_dataset):
    """A completed SpiderMine run on the planted dataset (shared across tests)."""
    config = SpiderMineConfig(min_support=2, k=5, d_max=6, seed=0)
    return SpiderMine(planted_dataset.graph, config).mine()
