"""Figures 14 and 15 — graph-transaction setting, SpiderMine vs ORIGAMI.

Paper setting: 10 ER graphs of 500 vertices (degree 5, 65 labels); five
distinct 30-vertex large patterns are injected.  Figure 14 has no extra small
patterns; Figure 15 injects 100 small 5-vertex patterns.

Expected shape: SpiderMine captures the large patterns in both settings;
ORIGAMI captures some large patterns when few small patterns exist (Fig. 14)
but leans strongly toward small patterns once many small patterns are present
(Fig. 15), missing the large ones.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SizeDistributionComparison
from repro.baselines import Origami, OrigamiConfig
from repro.datasets import transaction_database
from repro.transaction import mine_transaction_top_k

COMMON = dict(num_graphs=4, graph_vertices=90, average_degree=3.5, num_labels=35,
              num_large=2, large_vertices=12)
MIN_SUPPORT = 3
K = 10


def run_comparison(num_small: int, seed: int):
    database = transaction_database(num_small=num_small, small_vertices=5, seed=seed, **COMMON)
    spidermine = mine_transaction_top_k(database, min_support=MIN_SUPPORT, k=K, d_max=6, seed=0)
    origami_config = OrigamiConfig(min_support=MIN_SUPPORT, num_walks=12, max_edges=18, seed=0)
    origami = Origami(database, origami_config).mine()
    comparison = SizeDistributionComparison()
    comparison.add(spidermine.result, name="SpiderMine")
    comparison.add(origami, name="ORIGAMI")
    return database, comparison


@pytest.mark.figure("fig14")
def test_fig14_few_small_patterns(benchmark, results_dir):
    database, comparison = benchmark.pedantic(
        lambda: run_comparison(num_small=0, seed=61), rounds=1, iterations=1
    )
    record = ExperimentRecord(
        experiment_id="fig14_origami_few_small",
        description="Figure 14: transaction setting, few small patterns (SpiderMine vs ORIGAMI)",
        parameters={**COMMON, "num_small": 0, "min_support": MIN_SUPPORT},
    )
    for row in comparison.rows():
        record.add_measurement(**row)
    record.save(results_dir)
    print("\n" + comparison.to_text("Figure 14: few small patterns"))

    assert comparison.largest_size("SpiderMine") >= COMMON["large_vertices"] - 2
    # With few small patterns ORIGAMI's walks do reach medium/large maximal patterns.
    assert comparison.largest_size("ORIGAMI") >= 4


@pytest.mark.figure("fig15")
def test_fig15_many_small_patterns(benchmark, results_dir):
    database, comparison = benchmark.pedantic(
        lambda: run_comparison(num_small=15, seed=62), rounds=1, iterations=1
    )
    record = ExperimentRecord(
        experiment_id="fig15_origami_many_small",
        description="Figure 15: transaction setting, many small patterns (SpiderMine vs ORIGAMI)",
        parameters={**COMMON, "num_small": 15, "min_support": MIN_SUPPORT},
    )
    for row in comparison.rows():
        record.add_measurement(**row)
    record.save(results_dir)
    print("\n" + comparison.to_text("Figure 15: many small patterns"))

    # SpiderMine still reaches the large planted patterns...
    large_threshold = COMMON["large_vertices"] - 2
    assert comparison.largest_size("SpiderMine") >= large_threshold
    # ...and reports at least as many large patterns as ORIGAMI, whose output
    # leans toward the (now numerous) small patterns.
    assert comparison.count_at_least("SpiderMine", large_threshold) >= \
        comparison.count_at_least("ORIGAMI", large_threshold)
