"""Figure 17 — number of r-spiders and Stage-I runtime on scale-free networks.

The paper shows that on Barabási–Albert graphs the number of radius-1 spiders
grows sharply with graph size (high-degree hubs generate huge numbers of
small frequent patterns) and the runtime grows accordingly.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SeriesReport
from repro.core import SpiderMineConfig, SpiderMiner
from repro.datasets import scalability_series

SIZES = [60, 120, 200]
MIN_SUPPORT = 2
MAX_SPIDER_SIZE = 4


@pytest.mark.figure("fig17")
def test_scalefree_spider_counts(benchmark, results_dir):
    datasets = scalability_series(
        SIZES, average_degree=3.0, num_labels=100, num_large=2, large_vertices=12,
        seed=81, model="barabasi_albert",
    )
    series = SeriesReport(x_label="graph_edges")
    record = ExperimentRecord(
        experiment_id="fig17_scalefree_spiders",
        description="Figure 17: number of r-spiders (r=1) and Stage-I runtime on scale-free graphs",
        parameters={"sizes": SIZES, "min_support": MIN_SUPPORT, "max_spider_size": MAX_SPIDER_SIZE},
    )

    def sweep():
        import time
        rows = []
        for data in datasets:
            graph = data.graph
            config = SpiderMineConfig(
                min_support=MIN_SUPPORT, max_spider_size=MAX_SPIDER_SIZE, max_spiders=50000
            )
            start = time.perf_counter()
            spiders = SpiderMiner(graph, config).mine()
            elapsed = time.perf_counter() - start
            rows.append((graph.num_edges, len(spiders), elapsed, graph.max_degree()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for edges, num_spiders, runtime, max_degree in rows:
        series.add_point(edges, num_spiders=num_spiders,
                         stage1_seconds=round(runtime, 3), max_degree=max_degree)
        record.add_measurement(graph_edges=edges, num_spiders=num_spiders,
                               stage1_seconds=runtime, max_degree=max_degree)
    record.save(results_dir)
    print("\n" + series.to_text("Figure 17: #r-spiders and Stage-I runtime (scale-free)"))

    # Shape: spider count increases sharply with graph size.
    counts = [row[1] for row in rows]
    assert counts[-1] > counts[0]
    assert counts[-1] >= 2 * counts[0]
