"""Figure 21 — Jeti call graph: SpiderMine vs SUBDUE pattern sizes.

The paper mines the Jeti static call graph (835 methods, 267 class labels,
average degree 2.13) with minimum support 10; SpiderMine returns large
intra-class call clusters (~28-32 vertices) while SUBDUE reports small
patterns, and MoSS/SEuS do not finish.  The real call graph is replaced by
the synthetic stand-in of ``repro.datasets.jeti``.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SizeDistributionComparison
from repro.baselines import run_subdue
from repro.core import SpiderMine, SpiderMineConfig
from repro.datasets import generate_call_graph

MIN_SUPPORT = 10
K = 8


@pytest.mark.figure("fig21")
def test_jeti_distribution(benchmark, results_dir):
    data = generate_call_graph(
        num_methods=500, num_classes=160, num_call_motifs=3,
        motif_size=9, motif_support=MIN_SUPPORT, seed=121,
    )
    graph = data.graph

    def run_spidermine():
        config = SpiderMineConfig(min_support=MIN_SUPPORT, k=K, d_max=6, seed=0)
        return SpiderMine(graph, config).mine()

    spidermine_result = benchmark.pedantic(run_spidermine, rounds=1, iterations=1)
    subdue_result = run_subdue(graph, num_best=K, max_substructure_edges=10)

    comparison = SizeDistributionComparison()
    comparison.add(spidermine_result)
    comparison.add(subdue_result)

    record = ExperimentRecord(
        experiment_id="fig21_jeti",
        description="Figure 21: Jeti-like call graph, SpiderMine vs SUBDUE",
        parameters={"num_methods": graph.num_vertices, "num_classes": len(graph.label_set()),
                    "min_support": MIN_SUPPORT, "k": K},
    )
    for row in comparison.rows():
        record.add_measurement(**row)
    record.save(results_dir)
    print("\n" + comparison.to_text("Figure 21: Jeti-like call graph"))

    planted = max(r.pattern.num_vertices for r in data.call_motifs)
    assert comparison.largest_size("SpiderMine") >= planted - 3
    assert comparison.largest_size("SpiderMine") >= comparison.largest_size("SUBDUE")
