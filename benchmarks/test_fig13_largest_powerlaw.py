"""Figure 13 — largest pattern size discovered on power-law (scale-free) graphs.

The paper grows Barabási–Albert graphs and reports the size (in edges) of the
largest pattern found at each graph size (17 … 132 as |E| grows).  Expected
shape: the largest discovered pattern grows with the graph.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SeriesReport
from repro.core import SpiderMine, SpiderMineConfig
from repro.datasets import scalability_series

SIZES = [70, 130, 200]
MIN_SUPPORT = 2
K = 10
D_MAX = 10


@pytest.mark.figure("fig13")
def test_largest_pattern_powerlaw(benchmark, results_dir):
    datasets = scalability_series(
        SIZES, average_degree=3.0, num_labels=100, num_large=3, large_vertices=20,
        seed=51, model="barabasi_albert",
    )
    series = SeriesReport(x_label="graph_edges")
    record = ExperimentRecord(
        experiment_id="fig13_largest_powerlaw",
        description="Figure 13: largest pattern size vs graph size (Barabasi-Albert)",
        parameters={"sizes": SIZES, "min_support": MIN_SUPPORT, "k": K, "d_max": D_MAX},
    )

    def sweep():
        rows = []
        for data in datasets:
            graph = data.graph
            config = SpiderMineConfig(min_support=MIN_SUPPORT, k=K, d_max=D_MAX, seed=0)
            result = SpiderMine(graph, config).mine()
            rows.append((graph.num_edges, result.largest_size_edges,
                         result.largest_size_vertices, result.runtime_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for edges, largest_e, largest_v, runtime in rows:
        series.add_point(edges, largest_pattern_edges=largest_e,
                         largest_pattern_vertices=largest_v,
                         runtime_seconds=round(runtime, 3))
        record.add_measurement(graph_edges=edges, largest_pattern_edges=largest_e,
                               largest_pattern_vertices=largest_v, runtime_seconds=runtime)
    record.save(results_dir)
    print("\n" + series.to_text("Figure 13: largest pattern (|E|) vs graph |E| (power-law)"))

    largest = [row[1] for row in rows]
    assert largest[-1] >= largest[0]
    assert all(value > 0 for value in largest)
