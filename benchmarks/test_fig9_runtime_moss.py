"""Figure 9 — runtime of SpiderMine vs the complete miner (MoSS) on low-degree graphs.

The paper lowers the average degree to 2 (f=70 labels) so MoSS can finish and
grows |V| from 100 to 500.  The expected shape: both curves grow, MoSS grows
faster (complete enumeration), SpiderMine stays below it on the larger sizes.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SeriesReport
from repro.baselines import run_moss
from repro.core import SpiderMine, SpiderMineConfig
from repro.graph import synthetic_single_graph

SIZES = [60, 100, 140, 180]
NUM_LABELS = 70
AVERAGE_DEGREE = 2.0
MIN_SUPPORT = 2
MOSS_TIME_BUDGET = 30.0


def build_graph(num_vertices: int, seed: int):
    return synthetic_single_graph(
        num_vertices=num_vertices,
        num_labels=NUM_LABELS,
        average_degree=AVERAGE_DEGREE,
        num_large_patterns=2,
        large_pattern_vertices=max(6, num_vertices // 12),
        large_pattern_support=2,
        num_small_patterns=2,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=seed,
        max_pattern_diameter=4,
    ).graph


@pytest.mark.figure("fig9")
def test_runtime_spidermine_vs_moss(benchmark, results_dir):
    series = SeriesReport(x_label="graph_vertices")
    record = ExperimentRecord(
        experiment_id="fig9_runtime_vs_moss",
        description="Figure 9: runtime vs graph size, SpiderMine vs MoSS (d=2, f=70)",
        parameters={"sizes": SIZES, "average_degree": AVERAGE_DEGREE, "num_labels": NUM_LABELS},
    )

    def sweep():
        rows = []
        for index, size in enumerate(SIZES):
            graph = build_graph(size, seed=100 + index)
            config = SpiderMineConfig(min_support=MIN_SUPPORT, k=10, d_max=4, seed=0)
            spidermine = SpiderMine(graph, config).mine()
            moss = run_moss(graph, min_support=MIN_SUPPORT, max_edges=20,
                            time_budget_seconds=MOSS_TIME_BUDGET)
            rows.append((size, spidermine.runtime_seconds, moss.runtime_seconds,
                         bool(moss.parameters["completed"])))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, spidermine_s, moss_s, moss_done in rows:
        series.add_point(size, spidermine_seconds=round(spidermine_s, 3),
                         moss_seconds=round(moss_s, 3), moss_completed=moss_done)
        record.add_measurement(graph_vertices=size, spidermine_seconds=spidermine_s,
                               moss_seconds=moss_s, moss_completed=moss_done)
    record.save(results_dir)
    print("\n" + series.to_text("Figure 9: runtime vs |V| (SpiderMine vs MoSS)"))

    # Shape: on the largest size MoSS costs at least as much as SpiderMine
    # (or failed to complete within its budget).
    last = rows[-1]
    assert (not last[3]) or last[2] >= last[1] * 0.5
    # Runtimes grow with graph size for SpiderMine (weakly).
    assert rows[-1][1] >= rows[0][1] * 0.5
