"""Ablation benches for the design choices DESIGN.md calls out.

* **Support measure** — SpiderMine adopts the harmful-overlap measure; this
  bench compares the three implemented measures (embedding images,
  edge-disjoint, harmful overlap) on the same data and confirms the
  containment ordering and its effect on the number of frequent spiders.
* **Spider-set pruning** — Theorem 2 lets the miner skip isomorphism tests
  between patterns with different spider-sets; this bench measures how many
  exact checks the :class:`SpiderSetIndex` avoids on a stream of mined
  patterns.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SeriesReport
from repro.core import SpiderMineConfig, SpiderMiner
from repro.datasets import GID_SETTINGS
from repro.patterns import Pattern, SpiderSetIndex, SupportMeasure

SCALE = 0.25


@pytest.mark.figure("ablation-support")
def test_ablation_support_measures(benchmark, results_dir):
    data = GID_SETTINGS[1].generate(seed=131, scale=SCALE)
    graph = data.graph
    record = ExperimentRecord(
        experiment_id="ablation_support_measures",
        description="Ablation: number of frequent spiders under each support measure",
        parameters={"scale": SCALE, "graph_vertices": graph.num_vertices, "min_support": 2},
    )
    series = SeriesReport(x_label="measure")

    def sweep():
        rows = []
        for measure in (SupportMeasure.EMBEDDING_IMAGES,
                        SupportMeasure.EDGE_DISJOINT,
                        SupportMeasure.HARMFUL_OVERLAP):
            config = SpiderMineConfig(min_support=2, support_measure=measure, max_spider_size=4)
            spiders = SpiderMiner(graph, config).mine()
            rows.append((measure.value, len(spiders)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    counts = {}
    for measure, count in rows:
        counts[measure] = count
        series.add_point(measure, num_frequent_spiders=count)
        record.add_measurement(measure=measure, num_frequent_spiders=count)
    record.save(results_dir)
    print("\n" + series.to_text("Ablation: frequent spiders per support measure"))

    # Harmful overlap is the strictest measure, embedding images the loosest.
    assert counts["harmful_overlap"] <= counts["edge_disjoint"] <= counts["embedding_images"]


@pytest.mark.figure("ablation-spiderset")
def test_ablation_spiderset_pruning(benchmark, results_dir):
    data = GID_SETTINGS[1].generate(seed=132, scale=SCALE)
    graph = data.graph
    config = SpiderMineConfig(min_support=2, max_spider_size=4)
    spiders = SpiderMiner(graph, config).mine()
    patterns = [Pattern(graph=s.graph.copy(), embeddings=list(s.embeddings)) for s in spiders]

    def index_all():
        index = SpiderSetIndex(radius=1)
        for pattern in patterns:
            index.add(pattern)
        return index

    index = benchmark.pedantic(index_all, rounds=1, iterations=1)

    naive_checks = len(patterns) * (len(patterns) - 1) // 2
    record = ExperimentRecord(
        experiment_id="ablation_spiderset_pruning",
        description="Ablation: isomorphism checks avoided by spider-set pruning",
        parameters={"scale": SCALE, "num_patterns": len(patterns)},
    )
    record.add_measurement(
        num_patterns=len(patterns),
        exact_checks_performed=index.isomorphism_checks,
        naive_pairwise_checks=naive_checks,
        distinct_patterns_indexed=len(index),
    )
    record.save(results_dir)
    print(f"\n[ablation] spider-set pruning: {index.isomorphism_checks} exact checks "
          f"vs {naive_checks} naive pairwise comparisons for {len(patterns)} patterns")

    # The pruning must eliminate the overwhelming majority of pairwise checks.
    assert index.isomorphism_checks <= naive_checks * 0.2
    # Distinct spiders can coincide as plain patterns (same graph, different
    # head), so the index may hold fewer entries than the spider count.
    assert 0 < len(index) <= len(patterns)
