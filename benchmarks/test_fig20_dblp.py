"""Figure 20 — DBLP co-authorship network: SpiderMine vs SUBDUE pattern sizes.

The paper mines the Database & Data Mining co-authorship graph (6 508
authors, 4 seniority labels) with minimum support 4 and K=20; SpiderMine
returns 20 large patterns (largest 25 vertices) while SUBDUE's results stay
small.  The real DBLP snapshot is replaced by the synthetic stand-in
described in ``repro.datasets.dblp`` (same labels, community structure and
planted collaboration motifs), scaled down.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SizeDistributionComparison
from repro.baselines import run_subdue
from repro.core import SpiderMine, SpiderMineConfig
from repro.datasets import generate_dblp_like_graph

NUM_AUTHORS = 300
MIN_SUPPORT = 4
K = 10


@pytest.mark.figure("fig20")
def test_dblp_distribution(benchmark, results_dir):
    data = generate_dblp_like_graph(
        num_authors=NUM_AUTHORS, num_communities=20, num_collaboration_patterns=4,
        pattern_size=12, pattern_support=MIN_SUPPORT, seed=111,
    )
    graph = data.graph

    def run_spidermine():
        # Label-poor graph (4 seniority labels): tighter growth budgets keep the
        # run within the harness budget without losing the planted motifs.
        config = SpiderMineConfig(
            min_support=MIN_SUPPORT, k=K, d_max=6, seed=0, max_spider_size=4,
            max_embeddings_per_pattern=120, max_patterns_per_iteration=400,
        )
        return SpiderMine(graph, config).mine()

    spidermine_result = benchmark.pedantic(run_spidermine, rounds=1, iterations=1)
    subdue_result = run_subdue(graph, num_best=K, max_substructure_edges=10)

    comparison = SizeDistributionComparison()
    comparison.add(spidermine_result)
    comparison.add(subdue_result)

    record = ExperimentRecord(
        experiment_id="fig20_dblp",
        description="Figure 20: DBLP-like co-authorship graph, SpiderMine vs SUBDUE",
        parameters={"num_authors": NUM_AUTHORS, "min_support": MIN_SUPPORT, "k": K,
                    "graph_edges": graph.num_edges},
    )
    for row in comparison.rows():
        record.add_measurement(**row)
    record.save(results_dir)
    print("\n" + comparison.to_text("Figure 20: DBLP-like graph"))

    planted = max(r.pattern.num_vertices for r in data.collaboration_patterns)
    # SpiderMine reaches large collaboration patterns; SUBDUE stays smaller.
    assert comparison.largest_size("SpiderMine") >= planted - 3
    assert comparison.largest_size("SpiderMine") >= comparison.largest_size("SUBDUE")
