"""Figure 19 — effect of the diameter bound Dmax on the top-5 largest patterns.

The paper varies d = Dmax/2 from 1 to 4 on a GID-7-like dataset and reports
the top-5 pattern sizes.  Expected shape: results are robust once Dmax is
large enough for the planted patterns; a too-small Dmax truncates the
patterns that can be reported (seeds cannot grow far enough to merge).
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SeriesReport, top_sizes
from repro.core import SpiderMine, SpiderMineConfig
from repro.datasets import GID_6_10_SETTINGS

SCALE = 0.008
K = 5
MIN_SUPPORT = 2
D_VALUES = [1, 2, 3, 4]     # d = Dmax / 2


@pytest.mark.figure("fig19")
def test_effect_of_dmax(benchmark, results_dir):
    data = GID_6_10_SETTINGS[7].generate(seed=97, scale=SCALE, max_pattern_diameter=6)
    graph = data.graph
    record = ExperimentRecord(
        experiment_id="fig19_dmax",
        description="Figure 19: top-5 pattern sizes for varied Dmax (GID-7-like data)",
        parameters={"scale": SCALE, "k": K, "min_support": MIN_SUPPORT,
                    "graph_vertices": graph.num_vertices},
    )
    series = SeriesReport(x_label="d_max")

    def sweep():
        rows = []
        for d in D_VALUES:
            d_max = 2 * d
            config = SpiderMineConfig(min_support=MIN_SUPPORT, k=K, d_max=d_max, seed=0)
            result = SpiderMine(graph, config).mine()
            rows.append((d_max, top_sizes(result, K)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for d_max, sizes in rows:
        series.add_point(d_max, top5_sizes=sizes)
        record.add_measurement(d_max=d_max, top5_sizes=sizes)
    record.save(results_dir)
    print("\n" + series.to_text("Figure 19: top-5 sizes for varied Dmax"))

    # Shape: larger Dmax never yields smaller best patterns, and the largest
    # Dmax value reaches at least the size found by the smallest.
    best_by_dmax = [sizes[0] if sizes else 0 for _, sizes in rows]
    assert best_by_dmax[-1] >= best_by_dmax[0]
    assert best_by_dmax[-1] > 0
