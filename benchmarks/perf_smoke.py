#!/usr/bin/env python3
"""Perf smoke test: graph backends, the parallel engine, the catalog, the
overlap engine, the candidate-domain subgraph matcher, the vectorized
numpy kernel layer, the catalog serving tier and the telemetry layer.

Eight measurement suites:

* **backend** — dict vs csr on (a) a BFS-distance sweep from a fixed sample
  of sources and (b) a light Stage-I spider-mining pass over one
  Barabási–Albert power-law graph; written to ``BENCH_graph_backend.json``.
* **parallel** — serial vs ``--workers N`` process-pool execution of a heavy
  Stage-I pass (the embarrassingly parallel stage the engine fans out);
  written to ``BENCH_parallel_mining.json`` together with the host CPU count,
  because the achievable speedup is bounded by physical cores.
* **catalog** — cold full SpiderMine run (mine + store into a fresh catalog)
  vs warm cache hit of the same key, plus catalog query latency; written to
  ``BENCH_catalog.json``.  The warm hit must re-serve a result with the
  *same digest* as the cold mine — asserted before timing is trusted.
* **overlap** — inverted-index conflict-graph construction
  (``repro.patterns.overlap.EmbeddingIndex``) vs the O(n²) all-pairs
  reference on a dense label class of a two-label random graph; written to
  ``BENCH_overlap_index.json``.  Wall-clock on a loaded runner is noisy, so
  the JSON also records the *asymptotic* counters: all-pairs intersection
  tests vs posting pair touches, i.e. the pair tests the index provably never
  performs.  The two constructions must produce identical conflict graphs —
  the suite asserts digest parity (``conflict_digest``) and prints
  ``overlap parity: ok`` for the CI gate to grep.
* **matcher** — the candidate-domain subgraph matcher vs the pre-refactor
  reference (``repro.graph._matcher_reference``) on a dense two-label ER
  graph, free search plus the Stage-I-shaped anchored batch (every head
  anchor of a label, one domain build); written to ``BENCH_matcher.json``.
  Wall-clock on a loaded runner is noisy, so the JSON records the
  *asymptotic* counters — per-candidate feasibility tests performed by each
  engine, i.e. the tests domain filtering and the anchored BFS order provably
  eliminate — and asserts the dense-class elimination stays ≥ 80%.  Embedding
  parity is digest-checked (``matcher_digest``) across the reference, the
  dict path and the CSR index-space path (plus dict-path *sequence* equality,
  the invariant that keeps mining digests stable), and the suite prints
  ``matcher parity: ok`` for the CI gate to grep.  Free-search timings are
  best-of-``TIMING_REPEATS`` and, when numpy is available, the vectorized
  CSR path must not be slower than the reference engine (full profile;
  the quick CI graph is too small to amortise the kernel precompute and
  gets ``QUICK_GATE_SLACK`` headroom) — the regression gate this PR's
  kernel layer exists to pass.
* **kernels** — the numpy kernel layer (``repro.graph.kernels``) vs its
  scalar counterparts: end-to-end free search with kernels enabled vs the
  scalar-fallback CSR path vs the reference engine (sequence/digest parity
  asserted), plus per-kernel micro-timings (domain seeding, arc consistency,
  sorted intersection, bulk row filtering, posting-pair merge) against naive
  scalar references on inputs lifted from the same dense-class workload;
  written to ``BENCH_kernels.json``.  Every kernel's output is parity-checked
  before its clock is trusted, and the suite prints ``kernel parity: ok``
  for the CI gate to grep.
* **serving** — the catalog serving tier: batch containment over the
  persisted needle-side pattern index vs the pre-index cold path (fresh
  process per needle, domains re-seeded per (pattern, needle) pair), plus a
  live ``repro serve`` HTTP round trip whose ``/contains/batch`` response
  must be byte-identical to serialising the facade's answer; written to
  ``BENCH_serving.json``.  Result parity (indexed vs unindexed vs HTTP) is
  asserted before any clock is trusted, the full profile additionally gates
  indexed < cold, and the suite prints ``serve parity: ok`` for CI to grep.
* **obs** — the ``repro.obs`` telemetry layer's overhead budget: full
  SpiderMine runs with telemetry off (the ``NullRegistry``/``NullTracer``
  defaults) vs fully instrumented (live registry *and* span tracer), best-of
  repeats; written to ``BENCH_obs.json``.  Result digests must be
  bit-identical across off/metrics/metrics+trace — the suite prints
  ``telemetry parity: ok`` for the CI gate to grep — and on the full
  profile the instrumented wall-clock must stay within
  ``OBS_MAX_OVERHEAD`` (2%) of the uninstrumented run (the quick CI graph
  mines in well under a second, where scheduler noise dwarfs the
  instrumentation, so quick only asserts parity).

Run:  python benchmarks/perf_smoke.py             (full, ~minutes)
      python benchmarks/perf_smoke.py --quick     (CI smoke, small graph)

All profiles assert result parity — backends must agree, parallel runs must
be bit-identical to serial, cache hits bit-identical to cold mines — before
trusting the clock, so the smoke doubles as an end-to-end integration check.
Not collected by pytest (no ``test_`` prefix): timings carry no thresholds;
CI only requires this script to finish and uploads the JSON as an artifact.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import CachePolicy, SpiderMine, SpiderMineConfig  # noqa: E402
from repro.api import open_catalog  # noqa: E402
from repro.core import mine_spiders  # noqa: E402
from repro.graph import (  # noqa: E402
    barabasi_albert_graph,
    erdos_renyi_graph,
    freeze,
    synthetic_single_graph,
)
from repro.parallel import ExecutionPolicy  # noqa: E402

EDGES_PER_VERTEX = 2
NUM_LABELS = 40
SEED = 7
BACKEND_RESULT_PATH = REPO_ROOT / "BENCH_graph_backend.json"
PARALLEL_RESULT_PATH = REPO_ROOT / "BENCH_parallel_mining.json"
CATALOG_RESULT_PATH = REPO_ROOT / "BENCH_catalog.json"
OVERLAP_RESULT_PATH = REPO_ROOT / "BENCH_overlap_index.json"
MATCHER_RESULT_PATH = REPO_ROOT / "BENCH_matcher.json"
KERNELS_RESULT_PATH = REPO_ROOT / "BENCH_kernels.json"
SERVING_RESULT_PATH = REPO_ROOT / "BENCH_serving.json"
OBS_RESULT_PATH = REPO_ROOT / "BENCH_obs.json"

#: Repetitions for best-of wall-clock measurements (shared-host noise makes
#: single-shot comparisons meaningless; the minimum is the honest signal).
TIMING_REPEATS = 5

#: Free-search wall-clock gate: on the full profile the vectorized CSR path
#: must beat the pre-domain reference outright; the quick CI graph is too
#: small to amortise the domain-build/candidate-adjacency precompute, so
#: there it only has to stay within this factor of the reference — still a
#: hard stop for gross regressions like the pre-kernel 1.8x loss.
QUICK_GATE_SLACK = 1.5


def assert_free_search_gate(profile, csr_seconds, ref_seconds):
    bound = ref_seconds if profile == "full" else ref_seconds * QUICK_GATE_SLACK
    assert csr_seconds <= bound, (
        f"free-search regression ({profile}): vectorized csr "
        f"{csr_seconds:.4f}s exceeds the reference bound {bound:.4f}s "
        f"(reference {ref_seconds:.4f}s)"
    )

#: profile -> (graph vertices, free-search embedding cap) for the matcher
#: suite; one-in-ten vertices carries the rare label so the dense class
#: dominates and the anchored workload sweeps thousands of head anchors.
MATCHER_PROFILES = {
    "full": (3000, 20000),
    "quick": (800, 20000),
}
MATCHER_MIN_ELIMINATED = 0.80

#: profile -> (graph vertices, embedding cap) for the overlap suite; two
#: labels make one label class dense enough that a path pattern has
#: thousands of embeddings, while the flat Erdős–Rényi degree distribution
#: keeps their overlap realistic (each embedding conflicts with a local
#: handful, not with everything through one hub).
OVERLAP_PROFILES = {
    "full": (3000, 2000),
    "quick": (800, 600),
}

#: profile -> (num_vertices, num_labels, large patterns, mining config kwargs)
CATALOG_PROFILES = {
    "full": (2000, 120, 4, dict(min_support=2, k=6, d_max=6, seed=0)),
    "quick": (500, 60, 2, dict(min_support=2, k=4, d_max=6, seed=0)),
}
QUERY_REPEATS = 50

#: profile -> (graph kwargs like CATALOG_PROFILES, number of batch needles)
SERVING_PROFILES = {
    "full": (2000, 120, 4, dict(min_support=2, k=6, d_max=6, seed=0), 24),
    "quick": (500, 60, 2, dict(min_support=2, k=4, d_max=6, seed=0), 8),
}

#: profile -> (graph kwargs like CATALOG_PROFILES, best-of repeat count)
OBS_PROFILES = {
    "full": (2000, 120, 4, dict(min_support=2, k=6, d_max=6, seed=0), 3),
    "quick": (500, 60, 2, dict(min_support=2, k=4, d_max=6, seed=0), 2),
}

#: Telemetry overhead budget: instrumented mining (live registry + tracer)
#: may cost at most this fraction over the uninstrumented run, gated on the
#: full profile only (quick graphs mine too fast to measure 2% honestly).
OBS_MAX_OVERHEAD = 0.02

#: profile -> (num_vertices, bfs_sources,
#:             backend stage1 (support, size, emb cap),
#:             parallel stage1 (support, size, emb cap))
PROFILES = {
    "full": (100_000, 25, (60, 3, 100), (30, 4, 400)),
    "quick": (10_000, 5, (30, 3, 100), (12, 4, 200)),
}


def spider_digest(spiders) -> str:
    """Process-independent fingerprint of a Stage-I result, order included."""
    blob = "\n".join(
        f"{s.spider_code()}|{len(s.embeddings)}" for s in spiders
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def time_bfs_sweep(graph, sources):
    from repro.graph import bfs_distances

    start = time.perf_counter()
    checksum = 0
    for source in sources:
        checksum += len(bfs_distances(graph, source))
    return time.perf_counter() - start, checksum


def time_stage1(graph, params, execution=None):
    support, size, emb_cap = params
    start = time.perf_counter()
    spiders = mine_spiders(
        graph,
        min_support=support,
        radius=1,
        max_spider_size=size,
        max_embeddings_per_pattern=emb_cap,
        execution=execution,
    )
    return time.perf_counter() - start, spiders


def run_backend_suite(profile, mutable, frozen, freeze_time, graph_meta):
    num_vertices, bfs_sources, stage1_params, _ = PROFILES[profile]
    sources = list(range(0, num_vertices, num_vertices // bfs_sources))[:bfs_sources]
    results = {}
    for name, graph in (("dict", mutable), ("csr", frozen)):
        bfs_seconds, checksum = time_bfs_sweep(graph, sources)
        stage1_seconds, spiders = time_stage1(graph, stage1_params)
        results[name] = {
            "bfs_sweep_seconds": round(bfs_seconds, 4),
            "bfs_checksum": checksum,
            "stage1_seconds": round(stage1_seconds, 4),
            "stage1_spiders": len(spiders),
            "stage1_digest": spider_digest(spiders),
        }
        print(
            f"{name:>4}: BFS sweep {bfs_seconds:.2f}s over {len(sources)} sources, "
            f"Stage I {stage1_seconds:.2f}s ({len(spiders)} spiders)",
            flush=True,
        )

    # Both backends must agree before the timings mean anything.
    assert results["dict"]["bfs_checksum"] == results["csr"]["bfs_checksum"]
    assert results["dict"]["stage1_digest"] == results["csr"]["stage1_digest"]

    payload = {
        "benchmark": "graph_backend_perf_smoke",
        "profile": profile,
        "graph": graph_meta,
        "freeze_seconds": round(freeze_time, 4),
        "stage1_params": {
            "min_support": stage1_params[0],
            "max_spider_size": stage1_params[1],
            "max_embeddings_per_pattern": stage1_params[2],
        },
        "backends": results,
        "speedup": {
            "bfs_sweep": round(
                results["dict"]["bfs_sweep_seconds"] / results["csr"]["bfs_sweep_seconds"], 2
            ),
            "stage1": round(
                results["dict"]["stage1_seconds"] / results["csr"]["stage1_seconds"], 2
            ),
        },
    }
    BACKEND_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"backend speedup: BFS {payload['speedup']['bfs_sweep']}x, "
        f"Stage I {payload['speedup']['stage1']}x — written to {BACKEND_RESULT_PATH.name}"
    )


def run_parallel_suite(profile, frozen, workers, graph_meta):
    _, _, _, stage1_params = PROFILES[profile]
    print(f"parallel suite: serial vs {workers} workers ...", flush=True)
    serial_seconds, serial_spiders = time_stage1(frozen, stage1_params)
    serial_digest = spider_digest(serial_spiders)
    print(
        f"serial:     {serial_seconds:.2f}s ({len(serial_spiders)} spiders)", flush=True
    )
    parallel_seconds, parallel_spiders = time_stage1(
        frozen, stage1_params, execution=ExecutionPolicy.process_pool(workers)
    )
    parallel_digest = spider_digest(parallel_spiders)
    print(
        f"{workers} workers:  {parallel_seconds:.2f}s ({len(parallel_spiders)} spiders)",
        flush=True,
    )

    # The determinism guarantee, end to end, before any timing is recorded.
    assert parallel_digest == serial_digest, "parallel mining diverged from serial"

    speedup = round(serial_seconds / parallel_seconds, 2)
    payload = {
        "benchmark": "parallel_mining_perf_smoke",
        "profile": profile,
        "graph": graph_meta,
        "stage1_params": {
            "min_support": stage1_params[0],
            "max_spider_size": stage1_params[1],
            "max_embeddings_per_pattern": stage1_params[2],
        },
        "workers": workers,
        "host_cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": speedup,
        "spiders": len(serial_spiders),
        "result_digest": serial_digest,
        "note": (
            "end-to-end Stage-I mining, serial vs process pool sharing one "
            "zero-copy CSR snapshot; speedup is bounded by host_cpu_count — "
            "a single-core host cannot exceed ~1x regardless of workers"
        ),
    }
    PARALLEL_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"parallel speedup: {speedup}x at {workers} workers "
        f"on {os.cpu_count()} CPU(s) — written to {PARALLEL_RESULT_PATH.name}"
    )


def run_catalog_suite(profile):
    """Cold mine-and-store vs warm cache hit, plus query latency."""
    num_vertices, labels, num_large, mine_kwargs = CATALOG_PROFILES[profile]
    print(
        f"catalog suite: synthetic graph |V|={num_vertices}, cold vs warm ...",
        flush=True,
    )
    data = synthetic_single_graph(
        num_vertices=num_vertices,
        num_labels=labels,
        average_degree=2.0,
        num_large_patterns=num_large,
        large_pattern_vertices=12,
        large_pattern_support=2,
        num_small_patterns=4,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=SEED,
    )
    graph = freeze(data.graph)

    with tempfile.TemporaryDirectory(prefix="bench-catalog-") as store_dir:
        config = SpiderMineConfig(cache=CachePolicy.at(store_dir), **mine_kwargs)

        start = time.perf_counter()
        cold = SpiderMine(graph, config).mine()
        cold_seconds = time.perf_counter() - start
        assert cold.cache_info["status"] == "stored"
        print(
            f"cold mine+store: {cold_seconds:.2f}s "
            f"({len(cold.patterns)} patterns, largest |V|={cold.largest_size_vertices})",
            flush=True,
        )

        start = time.perf_counter()
        warm = SpiderMine(graph, config).mine()
        warm_seconds = time.perf_counter() - start
        assert warm.cache_info["status"] == "hit"
        # The guarantee the whole subsystem rests on, end to end.
        assert warm.digest() == cold.digest(), "cache hit diverged from cold mine"
        print(f"warm cache hit:  {warm_seconds:.4f}s (digest verified)", flush=True)

        query = open_catalog(store_dir).query
        start = time.perf_counter()
        for _ in range(QUERY_REPEATS):
            top = query.top_k(mine_kwargs["k"], by="vertices")
        query_seconds = (time.perf_counter() - start) / QUERY_REPEATS
        assert top
        print(
            f"top-k query:     {query_seconds * 1000:.2f}ms averaged over "
            f"{QUERY_REPEATS} calls",
            flush=True,
        )

    payload = {
        "benchmark": "catalog_perf_smoke",
        "profile": profile,
        "graph": {
            "model": "synthetic_single_graph",
            "num_vertices": num_vertices,
            "num_labels": labels,
            "num_large_patterns": num_large,
            "seed": SEED,
        },
        "mining_config": mine_kwargs,
        "cold_mine_seconds": round(cold_seconds, 4),
        "warm_hit_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 1),
        "query_top_k_seconds": round(query_seconds, 6),
        "query_repeats": QUERY_REPEATS,
        "num_patterns": len(cold.patterns),
        "result_digest": cold.digest()[:16],
        "note": (
            "cold = full SpiderMine + catalog insert into a fresh store; warm = "
            "content-addressed cache hit of the same (graph, config, version) "
            "key, asserted bit-identical (same result digest) before timing; "
            "query = CatalogQuery.top_k over the stored run's index summaries"
        ),
    }
    CATALOG_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"catalog speedup: {payload['speedup']}x warm over cold — "
        f"written to {CATALOG_RESULT_PATH.name}"
    )


def run_overlap_suite(profile):
    """Index-built vs all-pairs conflict graphs on a dense label class."""
    from repro.graph import LabeledGraph
    from repro.patterns import EmbeddingIndex, Pattern, conflict_digest

    num_vertices, embedding_cap = OVERLAP_PROFILES[profile]
    print(
        f"overlap suite: |V|={num_vertices} two-label ER graph, "
        f"up to {embedding_cap} embeddings ...",
        flush=True,
    )
    graph = erdos_renyi_graph(num_vertices, 4.0, 2, seed=SEED)
    # A 2-edge path inside the dense label class: its embeddings overlap on
    # shared middle/end vertices AND on shared data edges, so both conflict
    # notions are exercised non-trivially.
    pattern_graph = LabeledGraph()
    label = graph.label(0)  # the generator's labels cycle, so label 0 is dense
    for i in range(3):
        pattern_graph.add_vertex(i, label)
    pattern_graph.add_edge(0, 1)
    pattern_graph.add_edge(1, 2)
    pattern = Pattern(graph=pattern_graph)
    pattern.recompute_embeddings(graph, limit=embedding_cap)
    embeddings = pattern.embeddings
    print(f"dense class: {len(embeddings)} distinct-image embeddings", flush=True)

    results = {}
    for name, edge_based in (("vertex_conflict", False), ("edge_conflict", True)):
        index = EmbeddingIndex.from_embeddings(embeddings, pattern.graph)
        _ = index.images(edge_based)  # image memoisation outside the clock
        start = time.perf_counter()
        fast = index.conflict_graph(edge_based=edge_based)
        index_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reference = index.conflict_graph_all_pairs(edge_based=edge_based)
        all_pairs_seconds = time.perf_counter() - start
        fast_digest = conflict_digest(fast)
        assert fast_digest == conflict_digest(reference), (
            f"overlap parity FAILED ({name}): index-built conflict graph "
            "diverged from the all-pairs reference"
        )
        stats = index.pair_stats(edge_based=edge_based, conflict=fast)
        results[name] = {
            "index_seconds": round(index_seconds, 4),
            "all_pairs_seconds": round(all_pairs_seconds, 4),
            "speedup": round(all_pairs_seconds / max(index_seconds, 1e-9), 2),
            "parity_digest": fast_digest,
            **stats,
        }
        print(
            f"{name}: index {index_seconds:.3f}s vs all-pairs "
            f"{all_pairs_seconds:.3f}s ({results[name]['speedup']}x); "
            f"{stats['pair_tests_avoided']} of {stats['all_pairs_tests']} "
            f"pair tests avoided",
            flush=True,
        )

    payload = {
        "benchmark": "overlap_index_perf_smoke",
        "profile": profile,
        "graph": {
            "model": "erdos_renyi",
            "num_vertices": num_vertices,
            "num_edges": graph.num_edges,
            "average_degree": 4.0,
            "num_labels": 2,
            "seed": SEED,
        },
        "pattern": "two-edge path in the dense label class",
        "num_embeddings": len(embeddings),
        **results,
        "note": (
            "index-built vs all-pairs conflict-graph construction over the "
            "same memoised images, digest-verified identical; on a "
            "single-CPU shared host the asymptotic counters (pair_tests_"
            "avoided = all-pairs intersection tests the inverted index never "
            "performs) are the stable signal, wall-clock is corroboration"
        ),
    }
    OVERLAP_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    # Reached only when every per-notion digest assert above passed.
    print(
        f"overlap parity: ok "
        f"(vertex digest {results['vertex_conflict']['parity_digest']}, "
        f"edge digest {results['edge_conflict']['parity_digest']}) — "
        f"written to {OVERLAP_RESULT_PATH.name}"
    )


def best_of(make_engine, run):
    """Best-of-``TIMING_REPEATS`` wall-clock for ``run(make_engine())``.

    Returns ``(seconds, result, engine)`` — the minimum time, plus the last
    repeat's result and engine so callers can read counters off it.
    """
    seconds = []
    result = engine = None
    for _ in range(TIMING_REPEATS):
        engine = make_engine()
        start = time.perf_counter()
        result = run(engine)
        seconds.append(time.perf_counter() - start)
    return min(seconds), result, engine


def run_matcher_suite(profile):
    """Domain matcher vs pre-refactor reference on a dense two-label class."""
    from repro.graph import LabeledGraph, SubgraphMatcher, kernels, matcher_digest
    from repro.graph._matcher_reference import ReferenceSubgraphMatcher

    num_vertices, embedding_cap = MATCHER_PROFILES[profile]
    print(
        f"matcher suite: |V|={num_vertices} two-label ER graph "
        "(9:1 dense:rare), free + anchored batch ...",
        flush=True,
    )
    base = erdos_renyi_graph(num_vertices, 4.0, 1, seed=SEED)
    graph = LabeledGraph()
    for i in range(num_vertices):
        graph.add_vertex(i, "B" if i % 10 == 0 else "A")
    for u, v in base.edges():
        graph.add_edge(u, v)
    frozen = freeze(graph)
    # A two-edge path ending in the rare label: the free matching order roots
    # at the rare end, so anchoring at the dense-label head is exactly the
    # shape whose old anchored order degenerated to per-anchor label scans.
    pattern = LabeledGraph()
    pattern.add_vertex(0, "A")
    pattern.add_vertex(1, "A")
    pattern.add_vertex(2, "B")
    pattern.add_edge(0, 1)
    pattern.add_edge(1, 2)

    # ---- free search: reference vs domain matcher, both backends ---------
    ref_free_seconds, ref_free, reference = best_of(
        lambda: ReferenceSubgraphMatcher(pattern, graph),
        lambda m: m.find_embeddings(limit=embedding_cap),
    )
    ref_free_tests = reference.candidate_tests

    dict_free_seconds, dict_free, dict_matcher = best_of(
        lambda: SubgraphMatcher(pattern, graph),
        lambda m: m.find_embeddings(limit=embedding_cap),
    )
    csr_free_seconds, csr_free, csr_matcher = best_of(
        lambda: SubgraphMatcher(pattern, frozen),
        lambda m: m.find_embeddings(limit=embedding_cap),
    )

    # Parity before any number is trusted: the dict path must reproduce the
    # reference *sequence* (the mining-digest invariant), the csr path the
    # same embedding *set*.
    assert dict_free == ref_free, "matcher parity FAILED: dict path diverged"
    free_digest = matcher_digest(ref_free)
    assert matcher_digest(csr_free) == free_digest, (
        "matcher parity FAILED: csr path diverged from the reference set"
    )
    # The regression gate the kernel layer exists to pass: with numpy
    # dispatched, the vectorized CSR free search must not lose wall-clock to
    # the pre-domain reference engine (best-of minima, so shared-host noise
    # is already filtered out).
    if kernels.numpy_available():
        assert_free_search_gate(profile, csr_free_seconds, ref_free_seconds)

    # ---- anchored batch: per-anchor reference vs one domain build --------
    anchors = sorted(graph.vertices_with_label("A"), key=repr)
    start = time.perf_counter()
    ref_anchored = []
    ref_anchor_tests = 0
    ref_fallbacks = 0
    for t_anchor in anchors:
        per_anchor = ReferenceSubgraphMatcher(pattern, graph)
        ref_anchored.extend(per_anchor.find_embeddings(anchor=(0, t_anchor)))
        ref_anchor_tests += per_anchor.candidate_tests
        ref_fallbacks += per_anchor.pool_fallbacks
    ref_anchored_seconds = time.perf_counter() - start

    anchored_results = {}
    for name, target in (("dict", graph), ("csr", frozen)):
        start = time.perf_counter()
        batch_matcher = SubgraphMatcher(pattern, target)
        batch = [m for _, m in batch_matcher.iter_anchored(0, t_anchors=anchors)]
        seconds = time.perf_counter() - start
        assert matcher_digest(batch) == matcher_digest(ref_anchored), (
            f"matcher parity FAILED: anchored batch ({name}) diverged"
        )
        assert batch_matcher.stats.pool_fallbacks == 0, (
            "anchored BFS order regressed: label-scan fallbacks observed"
        )
        anchored_results[name] = {
            "seconds": round(seconds, 4),
            "candidate_tests": batch_matcher.stats.candidate_tests,
            "domain_prunes": batch_matcher.stats.domain_prunes,
        }
    # Anchoring at every dense-label head finds every embedding exactly once.
    assert matcher_digest(ref_anchored) == free_digest

    new_tests = {
        name: results["candidate_tests"] + {
            "dict": dict_matcher, "csr": csr_matcher
        }[name].stats.candidate_tests
        for name, results in anchored_results.items()
    }
    ref_tests_total = ref_free_tests + ref_anchor_tests
    eliminated = {
        name: round(1.0 - tests / max(ref_tests_total, 1), 4)
        for name, tests in new_tests.items()
    }
    anchored_eliminated = round(
        1.0 - anchored_results["csr"]["candidate_tests"] / max(ref_anchor_tests, 1), 4
    )
    for name, fraction in eliminated.items():
        assert fraction >= MATCHER_MIN_ELIMINATED, (
            f"domain filtering eliminated only {fraction:.1%} of candidate "
            f"feasibility tests on the {name} path (need ≥ "
            f"{MATCHER_MIN_ELIMINATED:.0%})"
        )

    payload = {
        "benchmark": "matcher_perf_smoke",
        "profile": profile,
        "graph": {
            "model": "erdos_renyi",
            "num_vertices": num_vertices,
            "num_edges": graph.num_edges,
            "average_degree": 4.0,
            "labels": {"A": len(graph.vertices_with_label("A")),
                       "B": len(graph.vertices_with_label("B"))},
            "seed": SEED,
        },
        "pattern": "two-edge path A-A-B (head in the dense class)",
        "num_embeddings": len(ref_free),
        "free_search": {
            "reference_seconds": round(ref_free_seconds, 4),
            "dict_seconds": round(dict_free_seconds, 4),
            "csr_seconds": round(csr_free_seconds, 4),
            "reference_candidate_tests": ref_free_tests,
            "dict_candidate_tests": dict_matcher.stats.candidate_tests,
            "csr_candidate_tests": csr_matcher.stats.candidate_tests,
        },
        "anchored_batch": {
            "num_anchors": len(anchors),
            "reference_seconds": round(ref_anchored_seconds, 4),
            "reference_candidate_tests": ref_anchor_tests,
            "reference_pool_fallbacks": ref_fallbacks,
            **{f"{name}_{key}": value
               for name, results in anchored_results.items()
               for key, value in results.items()},
            "eliminated_vs_reference": anchored_eliminated,
        },
        "candidate_tests_eliminated": eliminated,
        "parity_digest": free_digest,
        "note": (
            "domain matcher vs pre-refactor reference on the same queries, "
            "digest-verified identical embeddings (dict path sequence-"
            "identical); on a single-CPU shared host the candidate-test "
            "counters are the stable signal, wall-clock is corroboration; "
            "the anchored batch amortises one domain build over all head "
            "anchors of the dense label (the Stage-I access pattern)"
        ),
    }
    MATCHER_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"anchored: reference {ref_anchor_tests} candidate tests "
        f"({ref_fallbacks} label-scan fallbacks) vs domain batch "
        f"{anchored_results['csr']['candidate_tests']} "
        f"({anchored_eliminated:.1%} eliminated)",
        flush=True,
    )
    # Reached only when every parity assert above passed.
    print(
        f"matcher parity: ok (digest {free_digest}, "
        f"{min(eliminated.values()):.1%} of candidate tests eliminated) — "
        f"written to {MATCHER_RESULT_PATH.name}"
    )


def run_kernels_suite(profile):
    """Numpy kernel layer vs scalar counterparts: end-to-end and per kernel."""
    from bisect import bisect_left
    from collections import Counter

    from repro.graph import LabeledGraph, SubgraphMatcher, kernels, matcher_digest
    from repro.graph._matcher_reference import ReferenceSubgraphMatcher
    from repro.patterns import EmbeddingIndex

    if not kernels.HAVE_NUMPY:
        print("kernels suite skipped: numpy unavailable", flush=True)
        return
    import numpy as np

    num_vertices, embedding_cap = MATCHER_PROFILES[profile]
    print(
        f"kernels suite: |V|={num_vertices} two-label ER graph, "
        "end-to-end + per-kernel micro-timings ...",
        flush=True,
    )
    base = erdos_renyi_graph(num_vertices, 4.0, 1, seed=SEED)
    graph = LabeledGraph()
    for i in range(num_vertices):
        graph.add_vertex(i, "B" if i % 10 == 0 else "A")
    for u, v in base.edges():
        graph.add_edge(u, v)
    frozen = freeze(graph)
    pattern = LabeledGraph()
    pattern.add_vertex(0, "A")
    pattern.add_vertex(1, "A")
    pattern.add_vertex(2, "B")
    pattern.add_edge(0, 1)
    pattern.add_edge(1, 2)

    # ---- end-to-end free search across the three engines -----------------
    ref_seconds, ref_free, _ = best_of(
        lambda: ReferenceSubgraphMatcher(pattern, graph),
        lambda m: m.find_embeddings(limit=embedding_cap),
    )
    kernel_seconds, kernel_free, _ = best_of(
        lambda: SubgraphMatcher(pattern, frozen),
        lambda m: m.find_embeddings(limit=embedding_cap),
    )
    with kernels.scalar_fallback():
        scalar_seconds, scalar_free, _ = best_of(
            lambda: SubgraphMatcher(pattern, frozen),
            lambda m: m.find_embeddings(limit=embedding_cap),
        )
    # Both CSR paths ascend their candidate pools: the *sequence* must match
    # (the mining-digest invariant), and the set must equal the reference's.
    assert kernel_free == scalar_free, (
        "kernel parity FAILED: vectorized free search diverged from the "
        "scalar CSR sequence"
    )
    digest = matcher_digest(ref_free)
    assert matcher_digest(kernel_free) == digest, (
        "kernel parity FAILED: vectorized free search diverged from the "
        "reference set"
    )
    assert_free_search_gate(profile, kernel_seconds, ref_seconds)
    print(
        f"free search: reference {ref_seconds:.4f}s, scalar csr "
        f"{scalar_seconds:.4f}s, vectorized csr {kernel_seconds:.4f}s "
        f"({len(kernel_free)} embeddings)",
        flush=True,
    )

    # ---- per-kernel micro-timings on inputs lifted from that workload ----
    offsets, neighbors, label_ids = frozen.csr_numpy()
    offsets_list = list(frozen.offsets)
    neighbors_list = list(frozen.neighbor_indices)
    labels_list = list(frozen.label_ids)

    def row(u):
        return neighbors_list[offsets_list[u]:offsets_list[u + 1]]

    def timed(fn):
        seconds = []
        result = None
        for _ in range(TIMING_REPEATS):
            start = time.perf_counter()
            result = fn()
            seconds.append(time.perf_counter() - start)
        return min(seconds), result

    micro = {}

    def record(name, work, numpy_fn, scalar_fn, check):
        numpy_seconds, numpy_result = timed(numpy_fn)
        scalar_seconds, scalar_result = timed(scalar_fn)
        assert check(numpy_result, scalar_result), (
            f"kernel parity FAILED: {name} diverged from its scalar reference"
        )
        micro[name] = {
            "work": work,
            "numpy_seconds": round(numpy_seconds, 6),
            "scalar_seconds": round(scalar_seconds, 6),
            "speedup": round(scalar_seconds / max(numpy_seconds, 1e-9), 2),
        }
        print(
            f"{name}: numpy {numpy_seconds * 1000:.2f}ms vs scalar "
            f"{scalar_seconds * 1000:.2f}ms ({micro[name]['speedup']}x)",
            flush=True,
        )

    lid_a = frozen.label_table.index("A")
    lid_b = frozen.label_table.index("B")
    dense = frozen.label_members_np("A")
    rare = frozen.label_members_np("B")

    # seed filter: pattern vertex 1 needs degree ≥ 2, one A and one B neighbor.
    needed = [(lid_a, 1), (lid_b, 1)]

    def seed_scalar():
        kept = []
        for m in dense.tolist():
            nbrs = row(m)
            if len(nbrs) < 2:
                continue
            counts = Counter(labels_list[x] for x in nbrs)
            if all(counts.get(lid, 0) >= c for lid, c in needed):
                kept.append(m)
        return kept

    record(
        "seed_domain",
        {"members": int(dense.size)},
        lambda: kernels.seed_domain(dense, 2, needed, offsets, neighbors, label_ids),
        seed_scalar,
        lambda a, b: a.tolist() == b,
    )

    dom_mid = kernels.seed_domain(dense, 2, needed, offsets, neighbors, label_ids)
    dom_rare = rare

    def ac_scalar():
        rare_list = dom_rare.tolist()
        kept = []
        for m in dom_mid.tolist():
            for x in row(m):
                j = bisect_left(rare_list, x)
                if j < len(rare_list) and rare_list[j] == x:
                    kept.append(m)
                    break
        return kept

    record(
        "ac_filter",
        {"dom_a": int(dom_mid.size), "dom_b": int(dom_rare.size)},
        lambda: kernels.ac_filter(dom_mid, dom_rare, offsets, neighbors),
        ac_scalar,
        lambda a, b: a.tolist() == b,
    )

    probe_rows = [np.asarray(row(m), dtype=np.int64) for m in dom_mid.tolist()[:512]]

    def intersect_scalar():
        dense_list = dense.tolist()
        out = 0
        for arr in probe_rows:
            for x in arr.tolist():
                j = bisect_left(dense_list, x)
                if j < len(dense_list) and dense_list[j] == x:
                    out += 1
        return out

    record(
        "intersect_sorted",
        {"rows": len(probe_rows)},
        lambda: sum(
            int(kernels.intersect_sorted(arr, dense).size) for arr in probe_rows
        ),
        intersect_scalar,
        lambda a, b: a == b,
    )

    def filter_rows_scalar():
        allowed = set(dense.tolist())
        flat = []
        bounds = [0]
        for m in dom_mid.tolist():
            flat.extend(x for x in row(m) if x in allowed)
            bounds.append(len(flat))
        return flat, bounds

    record(
        "filter_rows",
        {"members": int(dom_mid.size)},
        lambda: kernels.filter_rows(dom_mid, dense, offsets, neighbors),
        filter_rows_scalar,
        lambda a, b: a[0].tolist() == b[0] and a[1].tolist() == b[1],
    )

    index = EmbeddingIndex(
        vertex_images=[frozenset(m.values()) for m in kernel_free]
    )
    postings = list(index.vertex_map.values())

    def merge_scalar():
        pairs = set()
        for ids in postings:
            for a in range(1, len(ids)):
                for b in range(a):
                    pairs.add((ids[b], ids[a]))
        return pairs

    record(
        "merge_postings",
        {"postings": len(postings), "ids": len(kernel_free)},
        lambda: kernels.merge_postings(postings, len(kernel_free)),
        merge_scalar,
        lambda a, b: set(zip(a[0].tolist(), a[1].tolist())) == b,
    )

    payload = {
        "benchmark": "kernels_perf_smoke",
        "profile": profile,
        "graph": {
            "model": "erdos_renyi",
            "num_vertices": num_vertices,
            "num_edges": graph.num_edges,
            "average_degree": 4.0,
            "labels": {"A": len(graph.vertices_with_label("A")),
                       "B": len(graph.vertices_with_label("B"))},
            "seed": SEED,
        },
        "pattern": "two-edge path A-A-B (head in the dense class)",
        "timing_repeats": TIMING_REPEATS,
        "free_search": {
            "reference_seconds": round(ref_seconds, 4),
            "scalar_csr_seconds": round(scalar_seconds, 4),
            "vectorized_csr_seconds": round(kernel_seconds, 4),
            "num_embeddings": len(kernel_free),
            "parity_digest": digest,
        },
        "kernels": micro,
        "note": (
            "end-to-end free search (best-of minima) across the reference "
            "engine, the scalar-fallback CSR path and the vectorized CSR "
            "path — sequence/digest parity asserted, vectorized ≤ reference "
            "gated; micro rows compare each kernel against a naive scalar "
            "reference on inputs lifted from the same dense-class workload, "
            "output-parity-checked before the clock is trusted; per-call "
            "kernels (intersect_sorted) can lose on tiny CSR rows — numpy "
            "call overhead dwarfs four-element intersections — which is "
            "exactly why the matcher batches that work through filter_rows "
            "at domain-build time instead of intersecting inside the search "
            "loop"
        ),
    }
    KERNELS_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    # Reached only when every parity assert above passed.
    print(
        f"kernel parity: ok (digest {digest}, vectorized free search "
        f"{ref_seconds / max(kernel_seconds, 1e-9):.2f}x reference) — "
        f"written to {KERNELS_RESULT_PATH.name}"
    )


def run_serving_suite(profile):
    """Indexed batch containment vs the pre-index cold path, plus HTTP parity."""
    import urllib.request

    from repro.catalog import canonical_json
    from repro.graph import LabeledGraph
    from repro.graph.io import graph_to_dict

    num_vertices, labels, num_large, mine_kwargs, num_needles = SERVING_PROFILES[
        profile
    ]
    print(
        f"serving suite: |V|={num_vertices} synthetic graph, "
        f"{num_needles} batch needles, cold vs indexed ...",
        flush=True,
    )
    data = synthetic_single_graph(
        num_vertices=num_vertices,
        num_labels=labels,
        average_degree=2.0,
        num_large_patterns=num_large,
        large_pattern_vertices=12,
        large_pattern_support=2,
        num_small_patterns=4,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=SEED,
    )
    graph = freeze(data.graph)

    def bfs_subgraph(pattern_graph, size):
        """A deterministic connected ``size``-vertex subgraph of a pattern."""
        start_vertex = min(pattern_graph.vertices(), key=repr)
        keep = [start_vertex]
        frontier = [start_vertex]
        while frontier and len(keep) < size:
            for n in sorted(pattern_graph.neighbors(frontier.pop(0)), key=repr):
                if len(keep) < size and n not in keep:
                    keep.append(n)
                    frontier.append(n)
        sub = LabeledGraph()
        for v in keep:
            sub.add_vertex(v, pattern_graph.label(v))
        for u, v in pattern_graph.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v)
        return sub

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as store_dir:
        config = SpiderMineConfig(cache=CachePolicy.at(store_dir), **mine_kwargs)
        result = SpiderMine(graph, config).mine()
        assert result.patterns, "serving suite needs stored patterns"

        seed_catalog = open_catalog(store_dir)
        records = seed_catalog.top_k(k=len(result.patterns))
        needles = []
        while len(needles) < num_needles:
            record = records[len(needles) % len(records)]
            size = 2 + (len(needles) % 3)  # 2-4 vertex needles
            needle = bfs_subgraph(seed_catalog.load_pattern(record).graph, size)
            if len(needles) % 4 == 3:  # every 4th needle is a guaranteed miss
                miss = LabeledGraph()
                for v in needle.vertices():
                    miss.add_vertex(v, "no-such-label")
                for u, v in needle.edges():
                    miss.add_edge(u, v)
                needle = miss
            needles.append(needle)

        # Cold baseline: what N independent pre-index queries cost — a fresh
        # handle per needle (payload caches start empty, as in one CLI
        # invocation per query) running the per-(pattern, needle) re-seeding
        # path.
        start = time.perf_counter()
        cold_results = []
        for needle in needles:
            fresh = open_catalog(store_dir).query
            cold_results.append(fresh._containing_unindexed(needle))
        cold_seconds = time.perf_counter() - start

        # Indexed: one fresh handle answers the whole batch in one pass over
        # the persisted sidecars.
        indexed_catalog = open_catalog(store_dir)
        start = time.perf_counter()
        batch = indexed_catalog.contains_batch(needles)
        indexed_seconds = time.perf_counter() - start
        stats = indexed_catalog.stats.to_dict()

        # Parity before the clock is trusted.
        assert batch == cold_results, (
            "serve parity FAILED: indexed batch containment diverged from "
            "the unindexed reference"
        )
        # The index was read, never derived: mining persisted the sidecar.
        assert stats["index_builds"] == 0, "mine-time sidecar missing"

        # HTTP round trip: the served bytes must equal serialising the
        # facade's own answer.
        handle = open_catalog(store_dir, read_only=True).serve(
            port=0, background=True
        )
        try:
            payload = json.dumps(
                {"graphs": [graph_to_dict(n) for n in needles]}
            ).encode("utf-8")
            request = urllib.request.Request(
                handle.url + "/contains/batch",
                data=payload,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            start = time.perf_counter()
            with urllib.request.urlopen(request, timeout=60) as response:
                served = response.read().decode("utf-8")
            http_seconds = time.perf_counter() - start
        finally:
            handle.close()
        expected = canonical_json([[r.to_dict() for r in grp] for grp in batch])
        assert served == expected, (
            "serve parity FAILED: HTTP /contains/batch bytes diverged from "
            "the facade's serialised answer"
        )

    hits = sum(1 for grp in batch if grp)
    speedup = round(cold_seconds / max(indexed_seconds, 1e-9), 2)
    if profile == "full":
        # The point of persisting the index: the batch path must beat N
        # cold per-needle queries outright on the real profile (the quick
        # CI graph is too small for the gap to dominate process noise).
        assert indexed_seconds < cold_seconds, (
            f"serving regression: indexed batch {indexed_seconds:.4f}s not "
            f"faster than the cold per-needle path {cold_seconds:.4f}s"
        )
    payload = {
        "benchmark": "serving_perf_smoke",
        "profile": profile,
        "graph": {
            "model": "synthetic_single_graph",
            "num_vertices": num_vertices,
            "num_labels": labels,
            "num_large_patterns": num_large,
            "seed": SEED,
        },
        "mining_config": mine_kwargs,
        "num_stored_patterns": len(result.patterns),
        "num_needles": len(needles),
        "needles_with_matches": hits,
        "cold_unindexed_seconds": round(cold_seconds, 4),
        "indexed_batch_seconds": round(indexed_seconds, 4),
        "speedup": speedup,
        "http_batch_seconds": round(http_seconds, 4),
        "index_stats": stats,
        "note": (
            "cold = one fresh pre-index query per needle (matcher re-derives "
            "target-side seeding per (pattern, needle) pair, payloads "
            "re-read); indexed = one contains_batch over the mine-time "
            "persisted pattern-index sidecars; both answer identically "
            "(asserted) and the HTTP /contains/batch bytes equal the "
            "serialised facade answer (asserted)"
        ),
    }
    SERVING_RESULT_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"cold {cold_seconds:.3f}s vs indexed batch {indexed_seconds:.3f}s "
        f"({speedup}x) over {len(needles)} needles "
        f"({stats['seed_rejections']} of {stats['seed_checks']} seed checks "
        f"rejected without a matcher call)",
        flush=True,
    )
    # Reached only when every parity assert above passed.
    print(
        f"serve parity: ok (indexed/unindexed/HTTP agree on "
        f"{len(needles)} needles, {hits} with matches) — "
        f"written to {SERVING_RESULT_PATH.name}"
    )


def run_obs_suite(profile):
    """Instrumented vs uninstrumented mining: digest parity + overhead gate."""
    from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer

    num_vertices, labels, num_large, mine_kwargs, repeats = OBS_PROFILES[profile]
    print(
        f"obs suite: |V|={num_vertices} synthetic graph, best-of-{repeats} "
        "instrumented vs uninstrumented mine ...",
        flush=True,
    )
    data = synthetic_single_graph(
        num_vertices=num_vertices,
        num_labels=labels,
        average_degree=2.0,
        num_large_patterns=num_large,
        large_pattern_vertices=12,
        large_pattern_support=2,
        num_small_patterns=4,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=SEED,
    )
    graph = freeze(data.graph)
    config = SpiderMineConfig(**mine_kwargs)

    def mine_once(registry=None, tracer=None):
        with use_registry(registry), use_tracer(tracer):
            start = time.perf_counter()
            result = SpiderMine(graph, config).mine()
            return time.perf_counter() - start, result

    times = {"off": [], "metrics": [], "trace": []}
    digests = {"off": set(), "metrics": set(), "trace": set()}
    registry = tracer = None
    for _ in range(repeats):
        seconds, result = mine_once()
        times["off"].append(seconds)
        digests["off"].add(result.digest())

        seconds, result = mine_once(registry=MetricsRegistry())
        times["metrics"].append(seconds)
        digests["metrics"].add(result.digest())

        registry, tracer = MetricsRegistry(), Tracer()
        seconds, result = mine_once(registry=registry, tracer=tracer)
        times["trace"].append(seconds)
        digests["trace"].add(result.digest())

    assert digests["off"] == digests["metrics"] == digests["trace"], (
        "telemetry parity FAILED: enabling the registry/tracer changed the "
        f"mining digest ({digests})"
    )
    assert len(digests["off"]) == 1, (
        f"telemetry parity FAILED: mining itself was nondeterministic ({digests})"
    )
    # The instrumented runs must actually have instrumented something, or
    # the overhead number (and the parity) are vacuous.
    assert registry.flat().get("mine.runs") == 1, "registry never populated"
    assert [s.name for s in tracer.roots()] == [
        "mine.stage1",
        "mine.stage2",
        "mine.stage3",
    ], "span tree missing stages"

    plain = min(times["off"])
    instrumented = min(times["trace"])  # registry AND tracer: the worst case
    overhead = instrumented / max(plain, 1e-9) - 1.0
    if profile == "full":
        assert overhead <= OBS_MAX_OVERHEAD, (
            f"telemetry overhead regression: instrumented mine "
            f"{instrumented:.4f}s is {overhead * 100.0:.2f}% over the "
            f"uninstrumented {plain:.4f}s (budget "
            f"{OBS_MAX_OVERHEAD * 100.0:.0f}%)"
        )

    payload = {
        "benchmark": "obs_perf_smoke",
        "profile": profile,
        "graph": {
            "model": "synthetic_single_graph",
            "num_vertices": num_vertices,
            "num_labels": labels,
            "num_large_patterns": num_large,
            "seed": SEED,
        },
        "mining_config": mine_kwargs,
        "repeats": repeats,
        "uninstrumented_seconds": round(plain, 4),
        "metrics_only_seconds": round(min(times["metrics"]), 4),
        "instrumented_seconds": round(instrumented, 4),
        "overhead_fraction": round(overhead, 4),
        "overhead_budget": OBS_MAX_OVERHEAD,
        "budget_enforced": profile == "full",
        "sample_metrics": registry.flat(),
        "note": (
            "uninstrumented = NullRegistry/NullTracer defaults (one "
            "attribute check per instrumented call site); instrumented = "
            "live MetricsRegistry AND span Tracer (the mine --telemetry "
            "worst case); best-of-N wall-clock; digests asserted "
            "bit-identical across off/metrics/metrics+trace before any "
            "clock is trusted"
        ),
    }
    OBS_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"uninstrumented {plain:.3f}s vs instrumented {instrumented:.3f}s "
        f"({overhead * 100.0:+.2f}% overhead, budget "
        f"{OBS_MAX_OVERHEAD * 100.0:.0f}% on full)",
        flush=True,
    )
    # Reached only when every parity assert above passed.
    print(
        f"telemetry parity: ok (digest identical off/metrics/trace over "
        f"{repeats} repeat(s)) — written to {OBS_RESULT_PATH.name}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-graph smoke profile for CI: must not crash, parity still asserted",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker count for the parallel suite (default 4)",
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="skip the parallel suite (BENCH_parallel_mining.json untouched)",
    )
    parser.add_argument(
        "--skip-catalog",
        action="store_true",
        help="skip the catalog suite (BENCH_catalog.json untouched)",
    )
    parser.add_argument(
        "--skip-overlap",
        action="store_true",
        help="skip the overlap suite (BENCH_overlap_index.json untouched)",
    )
    parser.add_argument(
        "--skip-matcher",
        action="store_true",
        help="skip the matcher suite (BENCH_matcher.json untouched)",
    )
    parser.add_argument(
        "--skip-kernels",
        action="store_true",
        help="skip the kernels suite (BENCH_kernels.json untouched)",
    )
    parser.add_argument(
        "--skip-serve",
        action="store_true",
        help="skip the serving suite (BENCH_serving.json untouched)",
    )
    parser.add_argument(
        "--skip-obs",
        action="store_true",
        help="skip the telemetry suite (BENCH_obs.json untouched)",
    )
    args = parser.parse_args(argv)
    profile = "quick" if args.quick else "full"
    num_vertices, _, _, _ = PROFILES[profile]

    print(
        f"[{profile}] generating BA graph: |V|={num_vertices}, m={EDGES_PER_VERTEX} ...",
        flush=True,
    )
    build_start = time.perf_counter()
    mutable = barabasi_albert_graph(num_vertices, EDGES_PER_VERTEX, NUM_LABELS, seed=SEED)
    build_time = time.perf_counter() - build_start
    freeze_start = time.perf_counter()
    frozen = freeze(mutable)
    freeze_time = time.perf_counter() - freeze_start
    print(
        f"built in {build_time:.2f}s (|E|={mutable.num_edges}), frozen in {freeze_time:.2f}s",
        flush=True,
    )
    graph_meta = {
        "model": "barabasi_albert",
        "num_vertices": num_vertices,
        "num_edges": mutable.num_edges,
        "edges_per_vertex": EDGES_PER_VERTEX,
        "num_labels": NUM_LABELS,
        "seed": SEED,
    }

    run_backend_suite(profile, mutable, frozen, freeze_time, graph_meta)
    if not args.skip_parallel:
        run_parallel_suite(profile, frozen, args.workers, graph_meta)
    if not args.skip_catalog:
        run_catalog_suite(profile)
    if not args.skip_overlap:
        run_overlap_suite(profile)
    if not args.skip_matcher:
        run_matcher_suite(profile)
    if not args.skip_kernels:
        run_kernels_suite(profile)
    if not args.skip_serve:
        run_serving_suite(profile)
    if not args.skip_obs:
        run_obs_suite(profile)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
