#!/usr/bin/env python3
"""Perf smoke test: graph backends and the parallel mining engine.

Two measurement suites over the same Barabási–Albert power-law data graph:

* **backend** — dict vs csr on (a) a BFS-distance sweep from a fixed sample
  of sources and (b) a light Stage-I spider-mining pass; written to
  ``BENCH_graph_backend.json``.
* **parallel** — serial vs ``--workers N`` process-pool execution of a heavy
  Stage-I pass (the embarrassingly parallel stage the engine fans out);
  written to ``BENCH_parallel_mining.json`` together with the host CPU count,
  because the achievable speedup is bounded by physical cores.

Run:  python benchmarks/perf_smoke.py             (full, ~minutes)
      python benchmarks/perf_smoke.py --quick     (CI smoke, small graph)

Both profiles assert result parity — backends must agree, and parallel runs
must be bit-identical to serial — before trusting the clock, so the smoke
doubles as an end-to-end integration check.  Not collected by pytest (no
``test_`` prefix): timings carry no thresholds; CI only requires this script
to finish and uploads the JSON as an artifact.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import mine_spiders  # noqa: E402
from repro.graph import barabasi_albert_graph, freeze  # noqa: E402
from repro.parallel import ExecutionPolicy  # noqa: E402

EDGES_PER_VERTEX = 2
NUM_LABELS = 40
SEED = 7
BACKEND_RESULT_PATH = REPO_ROOT / "BENCH_graph_backend.json"
PARALLEL_RESULT_PATH = REPO_ROOT / "BENCH_parallel_mining.json"

#: profile -> (num_vertices, bfs_sources,
#:             backend stage1 (support, size, emb cap),
#:             parallel stage1 (support, size, emb cap))
PROFILES = {
    "full": (100_000, 25, (60, 3, 100), (30, 4, 400)),
    "quick": (10_000, 5, (30, 3, 100), (12, 4, 200)),
}


def spider_digest(spiders) -> str:
    """Process-independent fingerprint of a Stage-I result, order included."""
    blob = "\n".join(
        f"{s.spider_code()}|{len(s.embeddings)}" for s in spiders
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def time_bfs_sweep(graph, sources):
    from repro.graph import bfs_distances

    start = time.perf_counter()
    checksum = 0
    for source in sources:
        checksum += len(bfs_distances(graph, source))
    return time.perf_counter() - start, checksum


def time_stage1(graph, params, execution=None):
    support, size, emb_cap = params
    start = time.perf_counter()
    spiders = mine_spiders(
        graph,
        min_support=support,
        radius=1,
        max_spider_size=size,
        max_embeddings_per_pattern=emb_cap,
        execution=execution,
    )
    return time.perf_counter() - start, spiders


def run_backend_suite(profile, mutable, frozen, freeze_time, graph_meta):
    num_vertices, bfs_sources, stage1_params, _ = PROFILES[profile]
    sources = list(range(0, num_vertices, num_vertices // bfs_sources))[:bfs_sources]
    results = {}
    for name, graph in (("dict", mutable), ("csr", frozen)):
        bfs_seconds, checksum = time_bfs_sweep(graph, sources)
        stage1_seconds, spiders = time_stage1(graph, stage1_params)
        results[name] = {
            "bfs_sweep_seconds": round(bfs_seconds, 4),
            "bfs_checksum": checksum,
            "stage1_seconds": round(stage1_seconds, 4),
            "stage1_spiders": len(spiders),
            "stage1_digest": spider_digest(spiders),
        }
        print(
            f"{name:>4}: BFS sweep {bfs_seconds:.2f}s over {len(sources)} sources, "
            f"Stage I {stage1_seconds:.2f}s ({len(spiders)} spiders)",
            flush=True,
        )

    # Both backends must agree before the timings mean anything.
    assert results["dict"]["bfs_checksum"] == results["csr"]["bfs_checksum"]
    assert results["dict"]["stage1_digest"] == results["csr"]["stage1_digest"]

    payload = {
        "benchmark": "graph_backend_perf_smoke",
        "profile": profile,
        "graph": graph_meta,
        "freeze_seconds": round(freeze_time, 4),
        "stage1_params": {
            "min_support": stage1_params[0],
            "max_spider_size": stage1_params[1],
            "max_embeddings_per_pattern": stage1_params[2],
        },
        "backends": results,
        "speedup": {
            "bfs_sweep": round(
                results["dict"]["bfs_sweep_seconds"] / results["csr"]["bfs_sweep_seconds"], 2
            ),
            "stage1": round(
                results["dict"]["stage1_seconds"] / results["csr"]["stage1_seconds"], 2
            ),
        },
    }
    BACKEND_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"backend speedup: BFS {payload['speedup']['bfs_sweep']}x, "
        f"Stage I {payload['speedup']['stage1']}x — written to {BACKEND_RESULT_PATH.name}"
    )


def run_parallel_suite(profile, frozen, workers, graph_meta):
    _, _, _, stage1_params = PROFILES[profile]
    print(f"parallel suite: serial vs {workers} workers ...", flush=True)
    serial_seconds, serial_spiders = time_stage1(frozen, stage1_params)
    serial_digest = spider_digest(serial_spiders)
    print(
        f"serial:     {serial_seconds:.2f}s ({len(serial_spiders)} spiders)", flush=True
    )
    parallel_seconds, parallel_spiders = time_stage1(
        frozen, stage1_params, execution=ExecutionPolicy.process_pool(workers)
    )
    parallel_digest = spider_digest(parallel_spiders)
    print(
        f"{workers} workers:  {parallel_seconds:.2f}s ({len(parallel_spiders)} spiders)",
        flush=True,
    )

    # The determinism guarantee, end to end, before any timing is recorded.
    assert parallel_digest == serial_digest, "parallel mining diverged from serial"

    speedup = round(serial_seconds / parallel_seconds, 2)
    payload = {
        "benchmark": "parallel_mining_perf_smoke",
        "profile": profile,
        "graph": graph_meta,
        "stage1_params": {
            "min_support": stage1_params[0],
            "max_spider_size": stage1_params[1],
            "max_embeddings_per_pattern": stage1_params[2],
        },
        "workers": workers,
        "host_cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": speedup,
        "spiders": len(serial_spiders),
        "result_digest": serial_digest,
        "note": (
            "end-to-end Stage-I mining, serial vs process pool sharing one "
            "zero-copy CSR snapshot; speedup is bounded by host_cpu_count — "
            "a single-core host cannot exceed ~1x regardless of workers"
        ),
    }
    PARALLEL_RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"parallel speedup: {speedup}x at {workers} workers "
        f"on {os.cpu_count()} CPU(s) — written to {PARALLEL_RESULT_PATH.name}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-graph smoke profile for CI: must not crash, parity still asserted",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker count for the parallel suite (default 4)",
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="only run the backend suite (regenerates BENCH_graph_backend.json)",
    )
    args = parser.parse_args(argv)
    profile = "quick" if args.quick else "full"
    num_vertices, _, _, _ = PROFILES[profile]

    print(
        f"[{profile}] generating BA graph: |V|={num_vertices}, m={EDGES_PER_VERTEX} ...",
        flush=True,
    )
    build_start = time.perf_counter()
    mutable = barabasi_albert_graph(num_vertices, EDGES_PER_VERTEX, NUM_LABELS, seed=SEED)
    build_time = time.perf_counter() - build_start
    freeze_start = time.perf_counter()
    frozen = freeze(mutable)
    freeze_time = time.perf_counter() - freeze_start
    print(
        f"built in {build_time:.2f}s (|E|={mutable.num_edges}), frozen in {freeze_time:.2f}s",
        flush=True,
    )
    graph_meta = {
        "model": "barabasi_albert",
        "num_vertices": num_vertices,
        "num_edges": mutable.num_edges,
        "edges_per_vertex": EDGES_PER_VERTEX,
        "num_labels": NUM_LABELS,
        "seed": SEED,
    }

    run_backend_suite(profile, mutable, frozen, freeze_time, graph_meta)
    if not args.skip_parallel:
        run_parallel_suite(profile, frozen, args.workers, graph_meta)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
