#!/usr/bin/env python3
"""Perf smoke test: dict vs csr backend on a 100k-vertex power-law graph.

Times (a) a BFS-distance sweep from a fixed sample of sources and (b) Stage I
spider mining, on the same Barabási–Albert data graph in both backends, and
writes the measurements to ``BENCH_graph_backend.json`` at the repo root so
future PRs have a perf trajectory to compare against.

Run:  python benchmarks/perf_smoke.py            (after ``pip install -e .``
      or with ``PYTHONPATH=src``)

Not collected by pytest (no ``test_`` prefix): this is a timed measurement,
not a correctness check — though it does assert that both backends agree on
the sweep results and the mined spider codes before trusting the clock.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import mine_spiders  # noqa: E402
from repro.graph import barabasi_albert_graph, freeze  # noqa: E402

NUM_VERTICES = 100_000
EDGES_PER_VERTEX = 2
NUM_LABELS = 40
SEED = 7
BFS_SOURCES = 25
STAGE1_MIN_SUPPORT = 60
STAGE1_MAX_SPIDER_SIZE = 3
RESULT_PATH = REPO_ROOT / "BENCH_graph_backend.json"


def time_bfs_sweep(graph, sources) -> float:
    from repro.graph import bfs_distances

    start = time.perf_counter()
    checksum = 0
    for source in sources:
        dist = bfs_distances(graph, source)
        checksum += len(dist)
    elapsed = time.perf_counter() - start
    time_bfs_sweep.checksum = checksum  # type: ignore[attr-defined]
    return elapsed


def time_stage1(graph) -> float:
    start = time.perf_counter()
    spiders = mine_spiders(
        graph,
        min_support=STAGE1_MIN_SUPPORT,
        radius=1,
        max_spider_size=STAGE1_MAX_SPIDER_SIZE,
        max_embeddings_per_pattern=100,
    )
    elapsed = time.perf_counter() - start
    time_stage1.codes = [s.spider_code() for s in spiders]  # type: ignore[attr-defined]
    return elapsed


def main() -> int:
    print(f"generating BA graph: |V|={NUM_VERTICES}, m={EDGES_PER_VERTEX} ...", flush=True)
    build_start = time.perf_counter()
    mutable = barabasi_albert_graph(NUM_VERTICES, EDGES_PER_VERTEX, NUM_LABELS, seed=SEED)
    build_time = time.perf_counter() - build_start

    freeze_start = time.perf_counter()
    frozen = freeze(mutable)
    freeze_time = time.perf_counter() - freeze_start
    print(
        f"built in {build_time:.2f}s (|E|={mutable.num_edges}), frozen in {freeze_time:.2f}s",
        flush=True,
    )

    sources = list(range(0, NUM_VERTICES, NUM_VERTICES // BFS_SOURCES))[:BFS_SOURCES]

    results = {}
    for name, graph in (("dict", mutable), ("csr", frozen)):
        bfs_seconds = time_bfs_sweep(graph, sources)
        checksum = time_bfs_sweep.checksum  # type: ignore[attr-defined]
        stage1_seconds = time_stage1(graph)
        codes = time_stage1.codes  # type: ignore[attr-defined]
        results[name] = {
            "bfs_sweep_seconds": round(bfs_seconds, 4),
            "bfs_checksum": checksum,
            "stage1_seconds": round(stage1_seconds, 4),
            "stage1_spiders": len(codes),
            "stage1_codes_hash": hash(tuple(codes)) & 0xFFFFFFFF,
        }
        print(
            f"{name:>4}: BFS sweep {bfs_seconds:.2f}s over {len(sources)} sources, "
            f"Stage I {stage1_seconds:.2f}s ({len(codes)} spiders)",
            flush=True,
        )

    # Both backends must agree before the timings mean anything.
    assert results["dict"]["bfs_checksum"] == results["csr"]["bfs_checksum"]
    assert results["dict"]["stage1_codes_hash"] == results["csr"]["stage1_codes_hash"]

    payload = {
        "benchmark": "graph_backend_perf_smoke",
        "graph": {
            "model": "barabasi_albert",
            "num_vertices": NUM_VERTICES,
            "num_edges": mutable.num_edges,
            "edges_per_vertex": EDGES_PER_VERTEX,
            "num_labels": NUM_LABELS,
            "seed": SEED,
        },
        "freeze_seconds": round(freeze_time, 4),
        "backends": results,
        "speedup": {
            "bfs_sweep": round(
                results["dict"]["bfs_sweep_seconds"] / results["csr"]["bfs_sweep_seconds"], 2
            ),
            "stage1": round(
                results["dict"]["stage1_seconds"] / results["csr"]["stage1_seconds"], 2
            ),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"speedup: BFS {payload['speedup']['bfs_sweep']}x, Stage I {payload['speedup']['stage1']}x"
    )
    print(f"written to {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
