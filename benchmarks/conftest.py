"""Shared infrastructure for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  The
runs are scaled down (graph sizes, numbers of sweep points) so the whole
harness finishes in minutes on a laptop, but every module exposes its
parameters at the top so the paper's full scale can be requested.

Benchmarks print the regenerated rows/series to stdout (run pytest with
``-s`` to see them) and write JSON records under ``benchmarks/results/`` so
EXPERIMENTS.md can cite the measured numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating a specific paper figure/table"
    )
