"""Table 1 / Table 2 — the synthetic data settings GID 1-5.

Regenerates every row of Table 1 (scaled down; scale and seeds shown in the
output) and verifies the qualitative differences recorded in Table 2
(doubled degree, increased small-pattern support / count).
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord
from repro.datasets import GID_DIFFERENCES, GID_SETTINGS

SCALE = 0.3
SEED = 11


@pytest.mark.figure("table1")
def test_table1_generate_all_settings(benchmark, results_dir):
    record = ExperimentRecord(
        experiment_id="table1_datasets",
        description="Table 1: synthetic single-graph settings GID 1-5",
        parameters={"scale": SCALE, "seed": SEED},
    )

    def build_all():
        return {gid: setting.generate(seed=SEED, scale=SCALE)
                for gid, setting in GID_SETTINGS.items()}

    datasets = benchmark.pedantic(build_all, rounds=1, iterations=1)

    for gid, data in sorted(datasets.items()):
        setting = GID_SETTINGS[gid]
        record.add_measurement(
            gid=gid,
            num_vertices=data.graph.num_vertices,
            num_edges=data.graph.num_edges,
            num_labels=len(data.graph.label_set()),
            average_degree=round(data.graph.average_degree(), 2),
            planted_large=len(data.large_patterns),
            planted_large_size=data.planted_large_sizes[0] if data.planted_large_sizes else 0,
            planted_small=len(data.small_patterns),
            paper_vertices=setting.num_vertices,
            paper_degree=setting.average_degree,
        )
        assert data.graph.num_vertices >= 40
        assert data.large_patterns

    # Table 2's qualitative differences hold on the generated data.
    ds = {gid: d for gid, d in datasets.items()}
    assert ds[2].graph.average_degree() > ds[1].graph.average_degree()          # GID2 vs 1
    assert GID_SETTINGS[3].small_support > GID_SETTINGS[1].small_support        # GID3 vs 1
    assert ds[4].graph.average_degree() > ds[3].graph.average_degree()          # GID4 vs 3
    assert len(ds[5].small_patterns) > len(ds[2].small_patterns)                # GID5 vs 2
    record.notes = "; ".join(
        f"GID{a} vs GID{b}: {text}" for (a, b), text in GID_DIFFERENCES.items()
    )
    path = record.save(results_dir)
    print(f"\n[table1] wrote {path}")
