"""Figures 4-8 — pattern-size distributions on GID 1-5.

For each of the five Table-1 settings (scaled down), runs SpiderMine, SUBDUE
and SEuS with minimum support 2, K=10, Dmax=4 and regenerates the histogram
the paper plots: number of patterns per pattern size for each algorithm.

Expected shape (paper): SpiderMine returns most of the largest (planted-size)
patterns; SUBDUE concentrates on small patterns with relatively high
frequency; SEuS returns mostly very small (≤3-vertex) structures.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SizeDistributionComparison
from repro.baselines import run_seus, run_subdue
from repro.core import SpiderMine, SpiderMineConfig
from repro.datasets import GID_SETTINGS

SCALE = 0.3
SEED = 21
MIN_SUPPORT = 2
K = 10
D_MAX = 4

FIGURE_FOR_GID = {1: "fig4", 2: "fig5", 3: "fig6", 4: "fig7", 5: "fig8"}


@pytest.mark.figure("fig4-8")
@pytest.mark.parametrize("gid", [1, 2, 3, 4, 5])
def test_pattern_size_distribution(benchmark, results_dir, gid):
    data = GID_SETTINGS[gid].generate(seed=SEED + gid, scale=SCALE)
    graph = data.graph
    planted = max(data.planted_large_sizes)

    def run_spidermine():
        config = SpiderMineConfig(min_support=MIN_SUPPORT, k=K, d_max=D_MAX, seed=0)
        return SpiderMine(graph, config).mine()

    spidermine_result = benchmark.pedantic(run_spidermine, rounds=1, iterations=1)
    subdue_result = run_subdue(graph, num_best=K)
    seus_result = run_seus(graph, min_support=MIN_SUPPORT)

    comparison = SizeDistributionComparison()
    comparison.add(spidermine_result)
    comparison.add(subdue_result)
    comparison.add(seus_result)

    record = ExperimentRecord(
        experiment_id=f"{FIGURE_FOR_GID[gid]}_gid{gid}_distribution",
        description=f"Figure {3 + gid}: pattern-size distribution on GID {gid}",
        parameters={
            "gid": gid, "scale": SCALE, "min_support": MIN_SUPPORT, "k": K, "d_max": D_MAX,
            "graph_vertices": graph.num_vertices, "planted_large_size": planted,
        },
    )
    for row in comparison.rows():
        record.add_measurement(**row)
    record.save(results_dir)

    print(f"\n[GID {gid}] planted size {planted}")
    print(comparison.to_text(f"Figure {3 + gid} (GID {gid})"))

    # Shape assertions mirroring the paper's observations.
    assert comparison.largest_size("SpiderMine") >= planted - 2, \
        "SpiderMine must reach (close to) the planted large-pattern size"
    assert comparison.largest_size("SUBDUE") <= comparison.largest_size("SpiderMine")
    assert comparison.largest_size("SEuS") <= comparison.largest_size("SpiderMine")
