"""Figure 16 — the runtime table: SpiderMine, SUBDUE, SEuS and MoSS on GID 1-5.

The paper's table reports seconds per algorithm per dataset, with "-" where
MoSS could not complete within 10 hours (GID 2, 4, 5 — the denser settings).
Here the datasets are scaled down and MoSS gets a small wall-clock budget, so
the non-completion marker appears for the same reason (complete enumeration
does not fit the budget on denser data).
"""

from __future__ import annotations

import pytest

from repro.analysis import DID_NOT_FINISH, ExperimentRecord, RuntimeTable
from repro.baselines import run_moss, run_seus, run_subdue
from repro.core import SpiderMine, SpiderMineConfig
from repro.datasets import GID_SETTINGS

SCALE = 0.25
MIN_SUPPORT = 2
K = 10
D_MAX = 4
MOSS_BUDGET_SECONDS = 10.0


@pytest.mark.figure("fig16")
def test_runtime_table(benchmark, results_dir):
    table = RuntimeTable()
    record = ExperimentRecord(
        experiment_id="fig16_runtime_table",
        description="Figure 16: runtime comparison on GID 1-5",
        parameters={"scale": SCALE, "min_support": MIN_SUPPORT, "k": K, "d_max": D_MAX,
                    "moss_budget_seconds": MOSS_BUDGET_SECONDS},
    )

    def sweep():
        rows = []
        for gid, setting in GID_SETTINGS.items():
            graph = setting.generate(seed=70 + gid, scale=SCALE).graph
            config = SpiderMineConfig(min_support=MIN_SUPPORT, k=K, d_max=D_MAX, seed=0)
            spidermine = SpiderMine(graph, config).mine()
            subdue = run_subdue(graph, num_best=K)
            seus = run_seus(graph, min_support=MIN_SUPPORT)
            moss = run_moss(graph, min_support=MIN_SUPPORT, max_edges=30,
                            time_budget_seconds=MOSS_BUDGET_SECONDS)
            rows.append((gid, spidermine, subdue, seus, moss))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for gid, spidermine, subdue, seus, moss in rows:
        dataset = f"GID {gid}"
        table.record_result(dataset, spidermine)
        table.record_result(dataset, subdue)
        table.record_result(dataset, seus)
        table.record_result(dataset, moss, completed=bool(moss.parameters["completed"]))
        record.add_measurement(
            gid=gid,
            spidermine_seconds=spidermine.runtime_seconds,
            subdue_seconds=subdue.runtime_seconds,
            seus_seconds=seus.runtime_seconds,
            moss_seconds=moss.runtime_seconds if moss.parameters["completed"] else None,
            moss_completed=bool(moss.parameters["completed"]),
        )
    record.save(results_dir)
    print("\n" + table.to_text("Figure 16: runtime comparison (seconds)"))

    # Every algorithm produced a row for every dataset.
    assert len(table.rows) == 5
    for _dataset, row in table.rows.items():
        assert set(row) == {"SpiderMine", "SUBDUE", "SEuS", "MoSS"}
    # SpiderMine completed everywhere.
    assert all(row["SpiderMine"] != DID_NOT_FINISH for row in table.rows.values())
