"""Figure 10 — runtime of SpiderMine vs SUBDUE as the graph grows.

Paper setting: random graphs with average degree 3, 100 labels, σ=2, K=10,
Dmax=10, sizes 500 … 10 500 (×10²).  Expected shape: SUBDUE's runtime grows
much faster than SpiderMine's as |V| increases.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SeriesReport
from repro.baselines import run_subdue
from repro.core import SpiderMine, SpiderMineConfig
from repro.datasets import scalability_series

SIZES = [70, 130, 190, 250]
MIN_SUPPORT = 2
K = 10
D_MAX = 10


@pytest.mark.figure("fig10")
def test_runtime_spidermine_vs_subdue(benchmark, results_dir):
    datasets = scalability_series(SIZES, average_degree=3.0, num_labels=100, seed=31)
    series = SeriesReport(x_label="graph_vertices")
    record = ExperimentRecord(
        experiment_id="fig10_runtime_vs_subdue",
        description="Figure 10: runtime vs graph size, SpiderMine vs SUBDUE (d=3, 100 labels)",
        parameters={"sizes": SIZES, "min_support": MIN_SUPPORT, "k": K, "d_max": D_MAX},
    )

    def sweep():
        rows = []
        for data in datasets:
            graph = data.graph
            config = SpiderMineConfig(min_support=MIN_SUPPORT, k=K, d_max=D_MAX, seed=0)
            spidermine = SpiderMine(graph, config).mine()
            subdue = run_subdue(graph, num_best=K, max_substructure_edges=16)
            rows.append((graph.num_vertices, spidermine.runtime_seconds, subdue.runtime_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, spidermine_s, subdue_s in rows:
        series.add_point(size, spidermine_seconds=round(spidermine_s, 3),
                         subdue_seconds=round(subdue_s, 3))
        record.add_measurement(graph_vertices=size, spidermine_seconds=spidermine_s,
                               subdue_seconds=subdue_s)
    record.save(results_dir)
    print("\n" + series.to_text("Figure 10: runtime vs |V| (SpiderMine vs SUBDUE)"))

    # Shape: SUBDUE's growth factor from smallest to largest size is at least
    # as large as SpiderMine's (its curve bends upward faster in the paper).
    spidermine_growth = rows[-1][1] / max(rows[0][1], 1e-9)
    subdue_growth = rows[-1][2] / max(rows[0][2], 1e-9)
    assert subdue_growth >= spidermine_growth * 0.5
