"""Table 3 and Figure 18 — robustness against varied pattern distributions (GID 6-10).

Table 3 defines five datasets with an increasing proportion of small
patterns; Figure 18 plots, for each dataset, the sizes of the top-5 largest
patterns SpiderMine returns (Dmax=6, σ scaled with the data, K=5).  Expected
shape: the top-5 size profile stays roughly flat across GID 6-10 — SpiderMine
is robust to the growing share of small patterns (the paper's GID 9 outlier,
caused by two injected patterns overlapping into one double-sized pattern,
may or may not appear at the reduced scale).
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SeriesReport, top_sizes
from repro.core import SpiderMine, SpiderMineConfig
from repro.datasets import GID_6_10_SETTINGS

SCALE = 0.007  # the paper's GID 6-10 graphs have 20k-57k vertices; scaled to ~200-570
K = 5
D_MAX = 6
MIN_SUPPORT = 2


@pytest.mark.figure("table3+fig18")
def test_robustness_across_gid6_10(benchmark, results_dir):
    record = ExperimentRecord(
        experiment_id="table3_fig18_robustness",
        description="Table 3 + Figure 18: top-5 pattern sizes across GID 6-10",
        parameters={"scale": SCALE, "k": K, "d_max": D_MAX, "min_support": MIN_SUPPORT},
    )
    series = SeriesReport(x_label="gid")

    def sweep():
        rows = []
        for gid, setting in GID_6_10_SETTINGS.items():
            data = setting.generate(seed=90 + gid, scale=SCALE)
            graph = data.graph
            config = SpiderMineConfig(min_support=MIN_SUPPORT, k=K, d_max=D_MAX, seed=0)
            result = SpiderMine(graph, config).mine()
            rows.append((gid, graph.num_vertices, graph.num_edges,
                         top_sizes(result, K), max(data.planted_large_sizes)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    top1_sizes = []
    for gid, vertices, edges, top5, planted in rows:
        series.add_point(gid, num_vertices=vertices, num_edges=edges,
                         top5_sizes=top5, planted_size=planted)
        record.add_measurement(gid=gid, num_vertices=vertices, num_edges=edges,
                               top5_sizes=top5, planted_size=planted)
        top1_sizes.append(top5[0] if top5 else 0)
    record.save(results_dir)
    print("\n" + series.to_text("Figure 18: top-5 pattern sizes across GID 6-10"))

    # Table 3 shape: dataset size grows across GID 6..10.
    vertex_counts = [row[1] for row in rows]
    assert vertex_counts == sorted(vertex_counts)
    # Figure 18 shape: results exist for every dataset and the top-1 sizes are
    # comparable (within a factor of ~2.5) across the varied distributions.
    assert all(size > 0 for size in top1_sizes)
    assert max(top1_sizes) <= 2.5 * min(size for size in top1_sizes if size > 0)
