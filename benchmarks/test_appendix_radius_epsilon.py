"""Appendix C.1 (3) and (4) — the effect of the spider radius r and of ε.

* Varied r: the paper reports Stage-I runtime growing steeply with r on a
  600-edge, 30-label graph (r=1: 0.61 s, r=2: 2.7 s, r=3: 86.7 s, r=4: OOM),
  while result quality is largely unaffected — hence the recommendation r∈{1,2}.
* Varied ε: smaller ε draws more seed spiders (larger M) and therefore costs
  more time; the paper reports a mild increase on the Jeti data
  (ε=0.45: 7.2 s, 0.25: 7.7 s, 0.05: 9.1 s).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import ExperimentRecord, SeriesReport
from repro.core import SpiderMine, SpiderMineConfig, SpiderMiner, plan_seeds
from repro.datasets import generate_call_graph
from repro.graph import synthetic_single_graph

RADII = [1, 2]
EPSILONS = [0.45, 0.25, 0.05]


@pytest.mark.figure("appendix-r")
def test_effect_of_spider_radius(benchmark, results_dir):
    # A ~600-edge, 30-label graph, as in the appendix.
    data = synthetic_single_graph(
        num_vertices=280, num_labels=30, average_degree=2.2,
        num_large_patterns=2, large_pattern_vertices=12, large_pattern_support=2,
        num_small_patterns=3, small_pattern_vertices=3, small_pattern_support=2,
        seed=101, max_pattern_diameter=6,
    )
    graph = data.graph
    record = ExperimentRecord(
        experiment_id="appendix_radius",
        description="Appendix C.1(3): Stage-I spider mining cost for varied radius r",
        parameters={"graph_vertices": graph.num_vertices, "graph_edges": graph.num_edges},
    )
    series = SeriesReport(x_label="radius")

    def sweep():
        rows = []
        for radius in RADII:
            config = SpiderMineConfig(min_support=2, radius=radius, max_spider_size=5)
            start = time.perf_counter()
            spiders = SpiderMiner(graph, config).mine()
            elapsed = time.perf_counter() - start
            rows.append((radius, len(spiders), elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for radius, count, elapsed in rows:
        series.add_point(radius, num_spiders=count, stage1_seconds=round(elapsed, 3))
        record.add_measurement(radius=radius, num_spiders=count, stage1_seconds=elapsed)
    record.save(results_dir)
    print("\n" + series.to_text("Appendix: Stage-I cost vs spider radius r"))

    # Shape: r=2 costs at least as much as r=1 and finds at least as many spiders.
    assert rows[1][2] >= rows[0][2] * 0.8
    assert rows[1][1] >= rows[0][1]


@pytest.mark.figure("appendix-eps")
def test_effect_of_epsilon(benchmark, results_dir):
    data = generate_call_graph(
        num_methods=320, num_classes=100, num_call_motifs=2, motif_size=7,
        motif_support=10, seed=103,
    )
    graph = data.graph
    record = ExperimentRecord(
        experiment_id="appendix_epsilon",
        description="Appendix C.1(4): runtime and seed count for varied epsilon (Jeti-like data)",
        parameters={"graph_vertices": graph.num_vertices, "min_support": 10},
    )
    series = SeriesReport(x_label="epsilon")

    def sweep():
        rows = []
        for epsilon in EPSILONS:
            config = SpiderMineConfig(min_support=10, k=5, d_max=6, epsilon=epsilon, seed=0)
            result = SpiderMine(graph, config).mine()
            plan = plan_seeds(5, epsilon, config.resolved_v_min(graph.num_vertices),
                              graph.num_vertices)
            rows.append((epsilon, plan.num_draws, result.runtime_seconds,
                         result.largest_size_vertices))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for epsilon, seeds, runtime, largest in rows:
        series.add_point(epsilon, seed_draws=seeds, runtime_seconds=round(runtime, 3),
                         largest_pattern_vertices=largest)
        record.add_measurement(epsilon=epsilon, seed_draws=seeds, runtime_seconds=runtime,
                               largest_pattern_vertices=largest)
    record.save(results_dir)
    print("\n" + series.to_text("Appendix: effect of epsilon (Jeti-like data)"))

    # Shape: smaller epsilon draws at least as many seeds.
    draws = [row[1] for row in rows]
    assert draws == sorted(draws)
