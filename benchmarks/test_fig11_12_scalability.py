"""Figures 11 and 12 — SpiderMine scalability and largest-pattern size on random graphs.

Figure 11: SpiderMine runtime as the random graph grows (paper: up to 40 000
vertices; here scaled down, same generative model and parameter ratios).
Figure 12: the size of the largest pattern SpiderMine discovers at each graph
size (paper: sizes 21 … 230 as |V| grows to 40 000 — the discovered size
grows with the graph).
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord, SeriesReport
from repro.core import SpiderMine, SpiderMineConfig
from repro.datasets import scalability_series

SIZES = [80, 140, 200, 280]
MIN_SUPPORT = 2
K = 10
D_MAX = 10


@pytest.mark.figure("fig11-12")
def test_scalability_and_largest_pattern(benchmark, results_dir):
    datasets = scalability_series(
        SIZES, average_degree=3.0, num_labels=100, num_large=3,
        large_vertices=24, seed=41,
    )
    series = SeriesReport(x_label="graph_vertices")
    record = ExperimentRecord(
        experiment_id="fig11_12_scalability_random",
        description="Figures 11/12: SpiderMine runtime and largest pattern vs graph size (random)",
        parameters={"sizes": SIZES, "min_support": MIN_SUPPORT, "k": K, "d_max": D_MAX},
    )

    def sweep():
        rows = []
        for data in datasets:
            graph = data.graph
            config = SpiderMineConfig(min_support=MIN_SUPPORT, k=K, d_max=D_MAX, seed=0)
            result = SpiderMine(graph, config).mine()
            rows.append((
                graph.num_vertices,
                result.runtime_seconds,
                result.largest_size_vertices,
                max(data.planted_large_sizes) if data.planted_large_sizes else 0,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, runtime, largest, planted in rows:
        series.add_point(size, runtime_seconds=round(runtime, 3),
                         largest_pattern_vertices=largest, planted_size=planted)
        record.add_measurement(graph_vertices=size, runtime_seconds=runtime,
                               largest_pattern_vertices=largest, planted_size=planted)
    record.save(results_dir)
    print("\n" + series.to_text("Figures 11/12: runtime and largest pattern vs |V| (random)"))

    # Figure 12 shape: the largest discovered pattern grows with the graph size.
    largest_sizes = [row[2] for row in rows]
    assert largest_sizes[-1] >= largest_sizes[0]
    # SpiderMine recovers at least ~the planted size on every graph.
    for _, _, largest, planted in rows:
        assert largest >= planted - 3
    # Figure 11 shape: every sweep point completed and reported its runtime
    # (the absolute growth rate is recorded in the JSON series, not asserted —
    # a pure-Python single-core run is too noisy for a tight factor bound).
    assert all(runtime > 0 for _, runtime, _, _ in rows)
