"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so environments
without the ``wheel`` package (where pip's PEP-660 editable build cannot run)
can still do a legacy editable install: ``python setup.py develop``.
"""

from setuptools import setup

setup()
