# The catalog serving tier as a container: `repro serve` over a mounted store.
#
# Build:  docker build -t spidermine-serve .
# Run:    docker run --rm -p 8080:8080 -v /path/to/catalog:/catalog:ro spidermine-serve
#
# The store is mounted read-only on purpose — the server opens it with
# repro.api.open_catalog(read_only=True), so stale pattern-index sidecars are
# rebuilt in memory instead of written back, and the container never needs
# write access to the volume.
FROM python:3.12-slim

WORKDIR /app

# Only what `pip install .` needs: package metadata + sources (PAPER.md is
# the project readme named in pyproject).
COPY pyproject.toml setup.py PAPER.md ./
COPY src ./src
RUN pip install --no-cache-dir .

EXPOSE 8080

# 0.0.0.0: the port must be reachable through Docker's bridge.
ENTRYPOINT ["repro", "serve", "/catalog", "--host", "0.0.0.0", "--port", "8080"]
