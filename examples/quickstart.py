#!/usr/bin/env python3
"""Quickstart: mine the top-K largest frequent patterns from a synthetic network.

This is the smallest end-to-end use of the public API:

1. generate a synthetic single graph the way the paper does (a random
   background with a few large patterns planted into it);
2. freeze the finished graph into the immutable CSR backend the miners are
   fastest on (construction stays mutable; mining reads the snapshot);
3. run SpiderMine with the paper's parameters (support threshold σ, top-K,
   diameter bound Dmax, error bound ε);
4. inspect the result: sizes, supports, and whether the planted patterns were
   recovered.

Run:  pip install -e .   (once; or prefix with PYTHONPATH=src)
      python examples/quickstart.py
"""

from __future__ import annotations

from repro import SpiderMine, SpiderMineConfig
from repro.analysis import recovery_rate
from repro.graph import synthetic_single_graph


def main() -> None:
    # --- 1. build a synthetic network with planted patterns -----------------
    data = synthetic_single_graph(
        num_vertices=250,
        num_labels=50,
        average_degree=2.0,
        num_large_patterns=3,
        large_pattern_vertices=12,
        large_pattern_support=2,
        num_small_patterns=4,
        small_pattern_vertices=3,
        small_pattern_support=2,
        seed=42,
        max_pattern_diameter=6,
    )
    # --- 2. freeze the data graph for mining ----------------------------------
    # The CSR snapshot is immutable and shared by every stage; results are
    # identical to mining the mutable graph, just faster on large inputs.
    graph = data.graph.freeze()
    print(f"input graph: |V|={graph.num_vertices}  |E|={graph.num_edges}  "
          f"labels={len(graph.label_set())}  backend={type(graph).__name__}")
    print(f"planted large patterns (vertices): {data.planted_large_sizes}")

    # --- 3. run SpiderMine ----------------------------------------------------
    config = SpiderMineConfig(
        min_support=2,   # σ  : a pattern must have 2 vertex-disjoint embeddings
        k=5,             # K  : report the 5 largest patterns
        d_max=6,         # Dmax: pattern diameter bound
        epsilon=0.1,     # ε  : miss probability at most 10%
        radius=1,        # r  : spider radius
        seed=7,
    )
    result = SpiderMine(graph, config).mine()

    # --- 4. inspect the result -------------------------------------------------
    print()
    print(result.summary())
    durations = {k: round(v, 3) for k, v in result.statistics.stage_durations.items()}
    print(f"stage durations: {durations}")
    print(f"spiders mined: {result.statistics.num_spiders}   "
          f"seeds drawn (M): {result.statistics.num_seeds}   "
          f"merges: {result.statistics.num_merges}")
    print()
    for rank, pattern in enumerate(result.patterns, start=1):
        print(f"  top-{rank}: |V|={pattern.num_vertices}  |E|={pattern.num_edges}  "
              f"embeddings={pattern.support}  diameter={pattern.diameter()}")

    rate = recovery_rate(result, data.planted_large_sizes, tolerance=2)
    print()
    print(f"planted-pattern recovery rate: {rate:.0%}")


if __name__ == "__main__":
    main()
