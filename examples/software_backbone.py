#!/usr/bin/env python3
"""Software engineering: mining call-graph backbones from a Jeti-like call graph.

Reproduces the qualitative study of Section C.2 / Figures 21 and 24: the
paper extracts a static call graph from the Jeti instant-messaging client
(methods as nodes, classes as labels, calls as edges) and shows that the
large frequent patterns SpiderMine mines are tight intra-class call clusters
— "software backbones" useful for program comprehension, design-smell
detection (cohesion/coupling analysis) and understanding legacy systems.

Run:  pip install -e .   (once; or prefix with PYTHONPATH=src)
      python examples/software_backbone.py
"""

from __future__ import annotations

from collections import Counter

from repro import SpiderMine, SpiderMineConfig
from repro.baselines import run_subdue
from repro.analysis import SizeDistributionComparison
from repro.datasets import generate_call_graph


def class_cohesion_report(pattern) -> str:
    """Summarise which classes participate in a mined call cluster."""
    classes = Counter(pattern.graph.label(v) for v in pattern.graph.vertices())
    dominant = classes.most_common(3)
    share = sum(count for _, count in dominant) / pattern.num_vertices
    names = ", ".join(f"{cls} ({count} methods)" for cls, count in dominant)
    return (f"|V|={pattern.num_vertices} |E|={pattern.num_edges} support={pattern.support} "
            f"— dominated by {names}; top-3-class share {share:.0%}")


def main() -> None:
    # A synthetic call graph with the structural profile of Jeti (835 methods,
    # 267 classes, average degree ~2.1, library-class hubs, repeated
    # intra-class call motifs).  Scaled down by default for a quick run.
    data = generate_call_graph(
        num_methods=500,
        num_classes=150,
        num_call_motifs=3,
        motif_size=8,
        motif_support=10,
        seed=5,
    )
    graph = data.graph
    print(f"call graph: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"classes={len(graph.label_set())} max degree={graph.max_degree()}")

    # The paper mines Jeti with minimum support 10.
    config = SpiderMineConfig(
        min_support=10,
        k=8,
        d_max=6,
        epsilon=0.1,
        radius=1,
        seed=0,
    )
    spidermine_result = SpiderMine(graph, config).mine()
    subdue_result = run_subdue(graph, num_best=8, max_substructure_edges=10)

    comparison = SizeDistributionComparison()
    comparison.add(spidermine_result)
    comparison.add(subdue_result)
    print()
    print(comparison.to_text("Figure 21 analogue: pattern sizes, SpiderMine vs SUBDUE"))

    print()
    print("largest call-cluster patterns (software backbones):")
    for rank, pattern in enumerate(spidermine_result.top(5), start=1):
        print(f"  #{rank}: {class_cohesion_report(pattern)}")

    print()
    print("interpretation: clusters dominated by a small family of classes indicate")
    print("high cohesion (expected for a class and its subclass, e.g. Calendar and")
    print("GregorianCalendar in the paper's Figure 24); clusters mixing many unrelated")
    print("classes point at unwanted coupling — a design smell.")


if __name__ == "__main__":
    main()
