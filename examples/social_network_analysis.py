#!/usr/bin/env python3
"""Social-network analysis: collaborative patterns in a DBLP-like co-authorship graph.

Reproduces the qualitative study of Section C.2 / Figures 20, 22 and 23: on a
co-authorship network whose authors carry seniority labels (Prolific, Senior,
Junior, Beginner), small patterns are ubiquitous and uninformative, while the
*large* frequent patterns SpiderMine finds describe the collaboration
structure of whole research groups — a prolific hub, senior collaborators and
a periphery of juniors/beginners — and can be used both to find collaborative
patterns common to different groups and to distinguish groups by their
discriminative patterns.

Run:  pip install -e .   (once; or prefix with PYTHONPATH=src)
      python examples/social_network_analysis.py
"""

from __future__ import annotations

from collections import Counter

from repro import SpiderMine, SpiderMineConfig
from repro.baselines import run_subdue
from repro.analysis import SizeDistributionComparison
from repro.datasets import generate_dblp_like_graph


def describe_pattern(pattern) -> str:
    """Human-readable description of a collaboration pattern's composition."""
    labels = Counter(pattern.graph.label(v) for v in pattern.graph.vertices())
    composition = ", ".join(f"{count}×{label}" for label, count in sorted(labels.items()))
    return (f"|V|={pattern.num_vertices} |E|={pattern.num_edges} "
            f"support={pattern.support}  composition: {composition}")


def main() -> None:
    # A scaled-down DBLP-like graph (the paper's real graph has 6 508 authors);
    # the label vocabulary, community structure and planted collaboration
    # motifs follow the construction described in repro.datasets.dblp.
    data = generate_dblp_like_graph(
        num_authors=500,
        num_communities=25,
        num_collaboration_patterns=4,
        pattern_size=10,
        pattern_support=4,
        seed=3,
    )
    graph = data.graph
    print(f"co-authorship graph: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"labels={sorted(graph.label_set())}")
    print(f"label distribution: {dict(graph.label_counts())}")

    # The paper mines DBLP with minimum support 4 and K = 20.
    config = SpiderMineConfig(
        min_support=4,
        k=10,
        d_max=6,
        epsilon=0.1,
        radius=1,
        seed=0,
        max_spider_size=5,
    )
    spidermine_result = SpiderMine(graph, config).mine()
    subdue_result = run_subdue(graph, num_best=10, max_substructure_edges=10)

    comparison = SizeDistributionComparison()
    comparison.add(spidermine_result)
    comparison.add(subdue_result)
    print()
    print(comparison.to_text("Figure 20 analogue: pattern sizes, SpiderMine vs SUBDUE"))

    print()
    print("largest collaborative patterns found by SpiderMine:")
    for rank, pattern in enumerate(spidermine_result.top(5), start=1):
        print(f"  #{rank}: {describe_pattern(pattern)}")

    print()
    print("interpretation: each large pattern is a collective collaboration model —")
    print("a Prolific hub with Senior co-authors and Junior/Beginner periphery —")
    print("whose embeddings cluster on specific research groups (Figures 22/23).")


if __name__ == "__main__":
    main()
