#!/usr/bin/env python3
"""Compare SpiderMine against the paper's baselines on one synthetic dataset.

Runs SpiderMine, SUBDUE, SEuS, GREW and (budgeted) MoSS on a GID-1-style
synthetic single graph and prints the pattern-size distribution and runtime
table — a one-dataset version of Figures 4 and 16.  The transaction-setting
comparison against ORIGAMI (Figures 14/15) is also included on a small graph
database.

Run:  pip install -e .   (once; or prefix with PYTHONPATH=src)
      python examples/compare_baselines.py
"""

from __future__ import annotations

from repro import SpiderMine, SpiderMineConfig
from repro.analysis import RuntimeTable, SizeDistributionComparison
from repro.baselines import run_grew, run_moss, run_origami, run_seus, run_subdue
from repro.datasets import GID_SETTINGS, transaction_database
from repro.transaction import mine_transaction_top_k


def single_graph_comparison() -> None:
    print("=" * 70)
    print("Single-graph setting (GID-1-style data, scaled down)")
    print("=" * 70)
    data = GID_SETTINGS[1].generate(seed=1, scale=0.5)
    graph = data.graph
    print(f"|V|={graph.num_vertices} |E|={graph.num_edges} "
          f"planted large sizes={data.planted_large_sizes}")

    table = RuntimeTable()
    comparison = SizeDistributionComparison()

    config = SpiderMineConfig(min_support=2, k=10, d_max=4, seed=0)
    spidermine_result = SpiderMine(graph, config).mine()
    table.record_result("GID1 (scaled)", spidermine_result)
    comparison.add(spidermine_result)

    for name, runner in [
        ("SUBDUE", lambda: run_subdue(graph, num_best=10)),
        ("SEuS", lambda: run_seus(graph, min_support=2)),
        ("GREW", lambda: run_grew(graph, min_support=2)),
        ("MoSS", lambda: run_moss(graph, min_support=2, max_edges=8, time_budget_seconds=30)),
    ]:
        result = runner()
        completed = bool(result.parameters.get("completed", True))
        table.record_result("GID1 (scaled)", result, completed=completed)
        comparison.add(result, name=name)

    print()
    print(comparison.to_text("Pattern-size distribution (Figure 4 analogue)"))
    print()
    print(table.to_text("Runtime comparison (Figure 16 analogue)"))


def transaction_comparison() -> None:
    print()
    print("=" * 70)
    print("Graph-transaction setting vs ORIGAMI (Figures 14/15 analogue)")
    print("=" * 70)
    database = transaction_database(
        num_graphs=6, graph_vertices=120, num_labels=40,
        num_large=2, large_vertices=12, num_small=0, seed=2,
    )
    print(f"database: {len(database)} graphs, {database.total_vertices} vertices total")

    spidermine_result = mine_transaction_top_k(
        database, min_support=3, k=5, d_max=6, seed=0
    )
    origami_result = run_origami(database, min_support=3, num_walks=30, seed=0)

    comparison = SizeDistributionComparison()
    comparison.add(spidermine_result.result, name="SpiderMine")
    comparison.add(origami_result, name="ORIGAMI")
    print()
    print(comparison.to_text("Pattern-size distribution"))
    print()
    print(f"SpiderMine largest |V| = {spidermine_result.result.largest_size_vertices}, "
          f"ORIGAMI largest |V| = {origami_result.largest_size_vertices}")


def main() -> None:
    single_graph_comparison()
    transaction_comparison()


if __name__ == "__main__":
    main()
