"""Adapting SpiderMine to the graph-transaction setting.

The paper (Section 2, Section 5.1.2) states SpiderMine "can be adapted to
graph-transaction setting with no difficulty": run the single-graph algorithm
on the disjoint union of all transactions — embeddings in different
transactions are automatically vertex-disjoint, so harmful-overlap support on
the union never exceeds, and in practice matches, transaction support for the
patterns of interest — then re-verify the reported patterns with true
transaction support.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..core.config import SpiderMineConfig
from ..core.results import MiningResult
from ..core.spidermine import SpiderMine
from ..patterns.pattern import Pattern
from .database import GraphDatabase, union_as_single_graph


@dataclass
class TransactionMiningResult:
    """A mining result whose patterns carry verified transaction supports."""

    result: MiningResult
    transaction_supports: List[int]

    @property
    def patterns(self) -> List[Pattern]:
        return self.result.patterns

    def __len__(self) -> int:
        return len(self.result.patterns)


def mine_transaction_top_k(
    database: GraphDatabase,
    min_support: int,
    k: int = 10,
    d_max: int = 6,
    epsilon: float = 0.1,
    radius: int = 1,
    v_min: Optional[int] = None,
    seed: Optional[int] = 0,
    **overrides,
) -> TransactionMiningResult:
    """Run SpiderMine over a graph database and report transaction supports.

    ``min_support`` is interpreted as a transaction support threshold: the
    single-graph run uses the same value under harmful overlap (a lower bound
    on how many transactions provide a disjoint embedding), and the final
    patterns are re-verified with exact transaction support — any pattern
    whose verified support falls below the threshold is dropped.
    """
    union = union_as_single_graph(database)
    config = SpiderMineConfig(
        min_support=min_support,
        k=max(k * 2, k),          # over-provision: some candidates may fail verification
        d_max=d_max,
        epsilon=epsilon,
        radius=radius,
        v_min=v_min,
        seed=seed,
        **overrides,
    )
    result = SpiderMine(union, config).mine()

    start = time.perf_counter()
    verified: List[Pattern] = []
    supports: List[int] = []
    for pattern in result.patterns:
        support = database.transaction_support(pattern.graph)
        if support >= min_support:
            verified.append(pattern)
            supports.append(support)
        if len(verified) >= k:
            break
    result.patterns = verified
    result.runtime_seconds += time.perf_counter() - start
    result.parameters["setting"] = "graph-transaction"
    result.parameters["k"] = k
    return TransactionMiningResult(result=result, transaction_supports=supports)
