"""Graph-transaction setting: a database of graphs and transaction support.

The paper's main problem is the single-graph setting, but Section 5.1.2 shows
SpiderMine "can be adapted to graph-transaction setting with no difficulty"
and compares against ORIGAMI there.  In the transaction setting the input is
a set of graphs and the support of a pattern is the number of database graphs
containing at least one embedding of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List

from ..graph.isomorphism import SubgraphMatcher
from ..graph.labeled_graph import LabeledGraph


@dataclass
class GraphDatabase:
    """An ordered collection of labeled graphs (the transactions)."""

    graphs: List[LabeledGraph] = field(default_factory=list)

    def add(self, graph: LabeledGraph) -> None:
        self.graphs.append(graph)

    def __len__(self) -> int:
        return len(self.graphs)

    def __iter__(self) -> Iterator[LabeledGraph]:
        return iter(self.graphs)

    def __getitem__(self, index: int) -> LabeledGraph:
        return self.graphs[index]

    @property
    def total_vertices(self) -> int:
        return sum(g.num_vertices for g in self.graphs)

    @property
    def total_edges(self) -> int:
        return sum(g.num_edges for g in self.graphs)

    def label_set(self) -> set:
        labels: set = set()
        for graph in self.graphs:
            labels |= graph.label_set()
        return labels

    # ------------------------------------------------------------------ #
    # transaction support
    # ------------------------------------------------------------------ #
    def supporting_transactions(self, pattern: LabeledGraph) -> List[int]:
        """Indices of database graphs containing at least one embedding of ``pattern``.

        One matcher per transaction: the per-transaction candidate-domain
        build answers most non-containing transactions with an empty domain
        instead of a backtracking search.
        """
        supporting = []
        for index, graph in enumerate(self.graphs):
            if SubgraphMatcher(pattern, graph).exists():
                supporting.append(index)
        return supporting

    def transaction_support(self, pattern: LabeledGraph) -> int:
        """The number of transactions containing the pattern."""
        return len(self.supporting_transactions(pattern))

    def is_frequent(self, pattern: LabeledGraph, min_support: int) -> bool:
        """Early-exit frequency check (stops as soon as min_support is reached)."""
        count = 0
        remaining = len(self.graphs)
        for graph in self.graphs:
            if count + remaining < min_support:
                return False
            if SubgraphMatcher(pattern, graph).exists():
                count += 1
                if count >= min_support:
                    return True
            remaining -= 1
        return count >= min_support


def database_from_graphs(graphs: Iterable[LabeledGraph]) -> GraphDatabase:
    """Build a :class:`GraphDatabase` from any iterable of labeled graphs."""
    return GraphDatabase(graphs=list(graphs))


def union_as_single_graph(database: GraphDatabase) -> LabeledGraph:
    """Disjoint union of all transactions as one labeled graph.

    This is how SpiderMine is adapted to the transaction setting: each
    transaction's vertices are renamed ``(transaction index, vertex)`` so the
    single-graph machinery can run unchanged, and vertex-disjoint (harmful
    overlap) support on the union lower-bounds transaction support when each
    transaction contributes at most one disjoint embedding.
    """
    union = LabeledGraph()
    for index, graph in enumerate(database):
        for v in graph.vertices():
            union.add_vertex((index, v), graph.label(v))
        for u, v in graph.edges():
            union.add_edge((index, u), (index, v))
    return union
