"""Graph-transaction setting: graph databases, transaction support and the SpiderMine adapter."""

from .database import GraphDatabase, database_from_graphs, union_as_single_graph
from .adapter import TransactionMiningResult, mine_transaction_top_k

__all__ = [
    "GraphDatabase",
    "database_from_graphs",
    "union_as_single_graph",
    "TransactionMiningResult",
    "mine_transaction_top_k",
]
