"""SUBDUE baseline (Holder, Cook & Djoko, KDD 1994).

SUBDUE discovers substructures that best *compress* the input graph under the
minimum-description-length (MDL) principle: the value of a substructure S for
a graph G is ``DL(G) / (DL(S) + DL(G | S))`` where ``G | S`` is G with every
(vertex-disjoint) instance of S collapsed into a single vertex.  The search is
a beam search that grows candidate substructures one edge at a time.

The behaviour the paper relies on — SUBDUE prefers *small patterns with
relatively high frequency* and scales poorly as the data grows — follows
directly from the compression objective (compression ≈ size × instances, and
instance counts fall quickly as patterns grow) and from the cost of instance
discovery, both of which this reimplementation preserves.

Description lengths use the standard SUBDUE approximation: the number of bits
to encode vertices, edges and labels of a graph, ``DL(G) = |V| · log2(|Λ|) +
|E| · (1 + 2 · log2(|V|))``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.results import MiningResult, MiningStatistics
from ..graph.labeled_graph import Vertex
from ..graph.view import GraphView
from ..patterns.pattern import Pattern
from ..core.growth import Occurrence, occurrence_code, occurrences_to_pattern


@dataclass
class SubdueConfig:
    """Parameters of the SUBDUE beam search."""

    beam_width: int = 4
    max_substructure_edges: int = 12
    num_best: int = 10
    iterations: int = 1
    min_instances: int = 2
    max_instances_per_candidate: int = 300


def _description_length(num_vertices: int, num_edges: int, num_labels: int) -> float:
    if num_vertices == 0:
        return 0.0
    label_bits = math.log2(max(2, num_labels))
    vertex_bits = num_vertices * label_bits
    edge_bits = num_edges * (1.0 + 2.0 * math.log2(max(2, num_vertices)))
    return vertex_bits + edge_bits


class Subdue:
    """Beam-search MDL substructure discovery on a single labeled graph."""

    def __init__(self, graph: GraphView, config: Optional[SubdueConfig] = None) -> None:
        self.graph = graph
        self.config = config or SubdueConfig()
        self._num_labels = max(1, len(graph.label_set()))
        self._graph_dl = _description_length(
            graph.num_vertices, graph.num_edges, self._num_labels
        )

    # ------------------------------------------------------------------ #
    def mine(self) -> MiningResult:
        start = time.perf_counter()
        statistics = MiningStatistics()
        best: Dict[str, Tuple[float, List[Occurrence]]] = {}

        frontier = self._initial_candidates()
        statistics.num_candidates_generated += len(frontier)
        edges_grown = 1
        while frontier and edges_grown <= self.config.max_substructure_edges:
            scored = []
            for code, occurrences in frontier.items():
                disjoint = self._disjoint(occurrences)
                if len(disjoint) < self.config.min_instances:
                    continue
                value = self._compression_value(occurrences[0], len(disjoint))
                scored.append((value, code, occurrences))
                current = best.get(code)
                if current is None or value > current[0]:
                    best[code] = (value, occurrences)
            scored.sort(key=lambda item: item[0], reverse=True)
            beam = scored[: self.config.beam_width]
            next_frontier: Dict[str, List[Occurrence]] = {}
            for _, _, occurrences in beam:
                for extended_code, extended_occs in self._extend(occurrences).items():
                    bucket = next_frontier.setdefault(extended_code, [])
                    seen = {o.vertices for o in bucket}
                    for occ in extended_occs:
                        if occ.vertices not in seen:
                            bucket.append(occ)
                            seen.add(occ.vertices)
            statistics.num_candidates_generated += len(next_frontier)
            frontier = next_frontier
            edges_grown += 1

        ranked = sorted(best.items(), key=lambda item: item[1][0], reverse=True)
        patterns: List[Pattern] = []
        for _code, (_value, occurrences) in ranked[: self.config.num_best]:
            pattern = occurrences_to_pattern(self.graph, occurrences)
            patterns.append(pattern)
        runtime = time.perf_counter() - start
        return MiningResult(
            algorithm="SUBDUE",
            patterns=patterns,
            runtime_seconds=runtime,
            statistics=statistics,
            parameters={
                "beam_width": self.config.beam_width,
                "num_best": self.config.num_best,
                "max_substructure_edges": self.config.max_substructure_edges,
            },
        )

    # ------------------------------------------------------------------ #
    def _initial_candidates(self) -> Dict[str, List[Occurrence]]:
        """Single-edge substructures grouped by their (label, label) signature."""
        grouped: Dict[str, List[Occurrence]] = {}
        for u, v in self.graph.edges():
            occ = Occurrence.from_vertices_edges({u, v}, {(u, v)})
            code = occurrence_code(self.graph, occ)
            bucket = grouped.setdefault(code, [])
            if len(bucket) < self.config.max_instances_per_candidate:
                bucket.append(occ)
        return grouped

    def _extend(self, occurrences: Sequence[Occurrence]) -> Dict[str, List[Occurrence]]:
        """Grow every instance by one incident edge (SUBDUE's ExtendSubstructure)."""
        grouped: Dict[str, List[Occurrence]] = {}
        for occ in occurrences[: self.config.max_instances_per_candidate]:
            for vertex in occ.vertices:
                for neighbor in self.graph.neighbors(vertex):
                    if repr(vertex) <= repr(neighbor):
                        edge = (vertex, neighbor)
                    else:
                        edge = (neighbor, vertex)
                    if edge in occ.edges:
                        continue
                    new_occ = Occurrence(
                        vertices=occ.vertices | {neighbor},
                        edges=occ.edges | {edge},
                    )
                    code = occurrence_code(self.graph, new_occ)
                    bucket = grouped.setdefault(code, [])
                    within_cap = len(bucket) < self.config.max_instances_per_candidate
                    if within_cap and new_occ not in bucket:
                        bucket.append(new_occ)
        return grouped

    def _disjoint(self, occurrences: Sequence[Occurrence]) -> List[Occurrence]:
        """Greedy vertex-disjoint instance selection (SUBDUE collapses disjoint instances)."""
        chosen: List[Occurrence] = []
        used: Set[Vertex] = set()
        for occ in sorted(occurrences, key=lambda o: sorted(map(repr, o.vertices))):
            if occ.vertices & used:
                continue
            chosen.append(occ)
            used |= occ.vertices
        return chosen

    def _compression_value(self, example: Occurrence, num_instances: int) -> float:
        """MDL value DL(G) / (DL(S) + DL(G|S)) of a substructure."""
        sub_vertices = len(example.vertices)
        sub_edges = len(example.edges)
        sub_dl = _description_length(sub_vertices, sub_edges, self._num_labels)
        remaining_vertices = self.graph.num_vertices - num_instances * (sub_vertices - 1)
        remaining_edges = self.graph.num_edges - num_instances * sub_edges
        compressed_dl = _description_length(
            max(0, remaining_vertices), max(0, remaining_edges), self._num_labels + 1
        )
        denominator = sub_dl + compressed_dl
        if denominator <= 0:
            return 0.0
        return self._graph_dl / denominator


def run_subdue(
    graph: GraphView,
    num_best: int = 10,
    beam_width: int = 4,
    max_substructure_edges: int = 12,
    min_instances: int = 2,
) -> MiningResult:
    """Convenience wrapper mirroring :func:`repro.core.mine_top_k_patterns`."""
    config = SubdueConfig(
        beam_width=beam_width,
        num_best=num_best,
        max_substructure_edges=max_substructure_edges,
        min_instances=min_instances,
    )
    return Subdue(graph, config).mine()
