"""GREW baseline (Kuramochi & Karypis, ICDM 2004).

GREW is a scalable heuristic that mines an *incomplete* set of subgraph
patterns from a single large graph by iteratively contracting the embeddings
of frequent patterns: in each iteration it looks at frequent "connector"
edges between existing pattern instances (initially single vertices), picks a
set of vertex-disjoint instance pairs, and merges each pair into a larger
pattern, rewriting the graph so every merged instance becomes a single
super-node.  Because instances must be vertex-disjoint, GREW's support is the
vertex-disjoint embedding count, and because the contraction is greedy it can
find some large patterns quickly but gives no guarantee about which patterns
of the complete set it reports — exactly the behaviour the paper contrasts
SpiderMine against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.growth import Occurrence, occurrence_code, occurrences_to_pattern
from ..core.results import MiningResult, MiningStatistics
from ..graph.labeled_graph import Vertex
from ..graph.view import GraphView


@dataclass
class GrewConfig:
    """Parameters of the GREW iterative-merging heuristic."""

    min_support: int = 2
    max_iterations: int = 10
    num_best: int = 20


class Grew:
    """Iterative vertex-disjoint merging of frequent adjacent instances."""

    def __init__(self, graph: GraphView, config: Optional[GrewConfig] = None) -> None:
        self.graph = graph
        self.config = config or GrewConfig()

    def mine(self) -> MiningResult:
        start = time.perf_counter()
        config = self.config
        statistics = MiningStatistics()

        # Each "super-node" is an occurrence (initially a single data vertex).
        supernodes: Dict[Vertex, Occurrence] = {
            v: Occurrence.from_vertices_edges({v}, set()) for v in self.graph.vertices()
        }
        discovered: Dict[str, List[Occurrence]] = {}

        for _ in range(config.max_iterations):
            # Group candidate merges by the pattern they would create.
            merge_groups: Dict[str, List[Tuple[Vertex, Vertex, Occurrence]]] = {}
            root_of: Dict[Vertex, Vertex] = {}
            for root, occ in supernodes.items():
                for v in occ.vertices:
                    root_of[v] = root
            for u, v in self.graph.edges():
                ru, rv = root_of.get(u), root_of.get(v)
                if ru is None or rv is None or ru == rv:
                    continue
                occ_u, occ_v = supernodes[ru], supernodes[rv]
                edge = (u, v) if repr(u) <= repr(v) else (v, u)
                merged = Occurrence(
                    vertices=occ_u.vertices | occ_v.vertices,
                    edges=occ_u.edges | occ_v.edges | {edge},
                )
                code = occurrence_code(self.graph, merged)
                merge_groups.setdefault(code, []).append((ru, rv, merged))
                statistics.num_candidates_generated += 1

            # Keep groups with enough vertex-disjoint instances, largest first.
            frequent_groups = []
            for code, candidates in merge_groups.items():
                disjoint = self._disjoint(candidates)
                if len(disjoint) >= config.min_support:
                    frequent_groups.append((code, disjoint))
            if not frequent_groups:
                break
            frequent_groups.sort(
                key=lambda item: (len(item[1][0][2].vertices), len(item[1])), reverse=True
            )

            # Greedily apply merges; a super-node may be consumed only once per iteration.
            consumed: Set[Vertex] = set()
            applied_any = False
            for code, disjoint in frequent_groups:
                applied: List[Occurrence] = []
                for ru, rv, merged in disjoint:
                    if ru in consumed or rv in consumed:
                        continue
                    applied.append(merged)
                    consumed.add(ru)
                    consumed.add(rv)
                if len(applied) >= config.min_support:
                    discovered.setdefault(code, []).extend(applied)
                    applied_any = True
                    for merged in applied:
                        new_root = min(merged.vertices, key=repr)
                        for root in list(supernodes):
                            if supernodes[root].vertices <= merged.vertices and root != new_root:
                                del supernodes[root]
                        supernodes[new_root] = merged
            if not applied_any:
                break

        patterns = [
            occurrences_to_pattern(self.graph, occs) for occs in discovered.values()
        ]
        patterns.sort(key=lambda p: (p.num_vertices, p.num_edges), reverse=True)
        runtime = time.perf_counter() - start
        return MiningResult(
            algorithm="GREW",
            patterns=patterns[: config.num_best],
            runtime_seconds=runtime,
            statistics=statistics,
            parameters={"min_support": config.min_support, "max_iterations": config.max_iterations},
        )

    def _disjoint(
        self, candidates: List[Tuple[Vertex, Vertex, Occurrence]]
    ) -> List[Tuple[Vertex, Vertex, Occurrence]]:
        chosen: List[Tuple[Vertex, Vertex, Occurrence]] = []
        used: Set[Vertex] = set()
        for ru, rv, occ in sorted(candidates, key=lambda item: sorted(map(repr, item[2].vertices))):
            if occ.vertices & used:
                continue
            chosen.append((ru, rv, occ))
            used |= occ.vertices
        return chosen


def run_grew(graph: GraphView, min_support: int = 2, max_iterations: int = 10) -> MiningResult:
    """Convenience wrapper for the GREW baseline."""
    return Grew(graph, GrewConfig(min_support=min_support, max_iterations=max_iterations)).mine()
