"""SEuS baseline (Ghazizadeh & Chawathe, Discovery Science 2002).

SEuS ("Structure Extraction using Summaries") builds a *summary graph* in
which every vertex of the data graph with the same label is collapsed into a
single summary node, and summary edges carry the count of data edges between
the two label classes.  Candidate substructures are enumerated on the summary,
whose edge counts give an (over-optimistic) upper bound on support; candidates
whose bound already fails the threshold are pruned without touching the data
graph, and surviving candidates are verified against the data graph.

The behaviour the paper relies on: the summary is effective when a few highly
frequent structures dominate, and weak when there are many low-frequency
patterns — its label-level aggregation cannot tell them apart, so SEuS ends up
reporting mostly small structures.  This reimplementation keeps exactly that
decision procedure (label-collapsed summary, support upper bound from summary
counts, verification by embedding enumeration, and a candidate-size limit that
grows only while the summary bound stays selective).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.results import MiningResult, MiningStatistics
from ..graph.labeled_graph import LabeledGraph
from ..graph.view import GraphView
from ..patterns.pattern import Pattern
from ..patterns.support import SupportMeasure, compute_support
from ..graph.canonical import canonical_code


@dataclass
class SeusConfig:
    """Parameters of the SEuS search."""

    min_support: int = 2
    max_pattern_edges: int = 6
    max_candidates: int = 3000
    max_embeddings: int = 300
    support_measure: SupportMeasure = SupportMeasure.HARMFUL_OVERLAP
    num_best: int = 20


class SummaryGraph:
    """The label-collapsed summary: label → label edge multiplicities."""

    def __init__(self, graph: GraphView) -> None:
        self.label_counts = dict(graph.label_counts())
        self.edge_counts: Dict[Tuple[object, object], int] = {}
        for u, v in graph.edges():
            a, b = graph.label(u), graph.label(v)
            key = (a, b) if repr(a) <= repr(b) else (b, a)
            self.edge_counts[key] = self.edge_counts.get(key, 0) + 1

    def vertex_bound(self, label) -> int:
        """Upper bound on the support of any pattern containing ``label``."""
        return self.label_counts.get(label, 0)

    def edge_bound(self, label_a, label_b) -> int:
        key = (label_a, label_b) if repr(label_a) <= repr(label_b) else (label_b, label_a)
        return self.edge_counts.get(key, 0)

    def pattern_bound(self, pattern: LabeledGraph) -> int:
        """Support upper bound: the tightest label/edge count the pattern touches."""
        bounds = [self.vertex_bound(pattern.label(v)) for v in pattern.vertices()]
        for u, v in pattern.edges():
            bounds.append(self.edge_bound(pattern.label(u), pattern.label(v)))
        return min(bounds) if bounds else 0


class Seus:
    """Summary-guided frequent substructure extraction."""

    def __init__(self, graph: GraphView, config: Optional[SeusConfig] = None) -> None:
        self.graph = graph
        self.config = config or SeusConfig()
        self.summary = SummaryGraph(graph)

    def mine(self) -> MiningResult:
        start = time.perf_counter()
        config = self.config
        statistics = MiningStatistics()

        # Level 1: frequent label pairs straight from the summary.
        frontier: Dict[str, LabeledGraph] = {}
        for (label_a, label_b), count in self.summary.edge_counts.items():
            if count < config.min_support:
                continue
            pattern = LabeledGraph()
            pattern.add_vertex(0, label_a)
            pattern.add_vertex(1, label_b)
            pattern.add_edge(0, 1)
            frontier[canonical_code(pattern)] = pattern

        verified: Dict[str, Pattern] = {}
        while frontier and len(verified) < config.max_candidates:
            statistics.num_candidates_generated += len(frontier)
            surviving: Dict[str, Pattern] = {}
            for code, pattern_graph in frontier.items():
                # Summary pruning: the cheap upper bound must pass first.
                if self.summary.pattern_bound(pattern_graph) < config.min_support:
                    continue
                pattern = Pattern(graph=pattern_graph)
                pattern.recompute_embeddings(self.graph, limit=config.max_embeddings)
                statistics.num_isomorphism_checks += 1
                support = compute_support(pattern, measure=config.support_measure)
                if support >= config.min_support:
                    surviving[code] = pattern
            verified.update(surviving)
            if not surviving:
                break
            # Grow survivors by one summary-frequent edge.
            next_frontier: Dict[str, LabeledGraph] = {}
            for pattern in surviving.values():
                if pattern.num_edges >= config.max_pattern_edges:
                    continue
                for extended in self._extend(pattern.graph):
                    code = canonical_code(extended)
                    if code not in verified and code not in next_frontier:
                        next_frontier[code] = extended
                if len(next_frontier) > config.max_candidates:
                    break
            frontier = next_frontier

        ranked = sorted(
            verified.values(), key=lambda p: (p.num_vertices, p.num_edges), reverse=True
        )
        runtime = time.perf_counter() - start
        return MiningResult(
            algorithm="SEuS",
            patterns=ranked[: config.num_best] if config.num_best else ranked,
            runtime_seconds=runtime,
            statistics=statistics,
            parameters={
                "min_support": config.min_support,
                "max_pattern_edges": config.max_pattern_edges,
            },
        )

    def _extend(self, pattern_graph: LabeledGraph) -> List[LabeledGraph]:
        """All one-edge extensions whose new edge is frequent in the summary."""
        out: List[LabeledGraph] = []
        next_id = max(pattern_graph.vertices()) + 1
        for vertex in pattern_graph.vertices():
            v_label = pattern_graph.label(vertex)
            for (label_a, label_b), count in self.summary.edge_counts.items():
                if count < self.config.min_support:
                    continue
                if v_label == label_a:
                    other = label_b
                elif v_label == label_b:
                    other = label_a
                else:
                    continue
                extended = pattern_graph.copy()
                extended.add_vertex(next_id, other)
                extended.add_edge(vertex, next_id)
                out.append(extended)
        return out


def run_seus(
    graph: GraphView,
    min_support: int = 2,
    max_pattern_edges: int = 6,
    num_best: int = 20,
) -> MiningResult:
    """Convenience wrapper for the SEuS baseline."""
    config = SeusConfig(
        min_support=min_support, max_pattern_edges=max_pattern_edges, num_best=num_best
    )
    return Seus(graph, config).mine()
