"""MoSS-style complete frequent-subgraph miner for a single graph.

MoSS (Fiedler & Borgelt 2007) is the single-graph counterpart of gSpan: it
enumerates the *complete* set of frequent subgraphs by depth-first,
edge-by-edge pattern growth, with support computed under the harmful-overlap
measure.  The paper uses MoSS as the representative of complete miners and
shows that enumerating everything is precisely what does not scale — MoSS
fails to finish on the denser synthetic datasets.

This reimplementation keeps the complete enumeration semantics:

* candidates grow one edge at a time (forward edges to a new vertex and
  backward/closing edges between existing vertices);
* duplicate candidates are removed through canonical codes (our equivalent of
  gSpan's minimum-DFS-code test);
* support uses the same overlap-aware measures as the rest of the package, so
  downward closure holds and infrequent branches are pruned.

A ``max_edges`` limit and an overall ``budget`` (candidate count / time) are
exposed so the benchmark harness can run MoSS to completion on the small
settings and report "did not finish" on the large ones, exactly as the paper
does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.results import MiningResult, MiningStatistics
from ..graph.view import GraphView
from ..core.growth import Occurrence, occurrence_code, occurrence_support, occurrences_to_pattern
from ..patterns.pattern import Pattern
from ..patterns.support import SupportMeasure


@dataclass
class MossConfig:
    """Parameters of the complete single-graph miner."""

    min_support: int = 2
    max_edges: int = 50
    support_measure: SupportMeasure = SupportMeasure.HARMFUL_OVERLAP
    max_occurrences_per_pattern: int = 400
    max_candidates: int = 200000
    time_budget_seconds: Optional[float] = None
    closed_only: bool = False


class Moss:
    """Complete frequent subgraph enumeration in a single labeled graph."""

    def __init__(self, graph: GraphView, config: Optional[MossConfig] = None) -> None:
        self.graph = graph
        self.config = config or MossConfig()
        self.completed = True

    def mine(self) -> MiningResult:
        start = time.perf_counter()
        config = self.config
        statistics = MiningStatistics()
        self.completed = True

        # Level 1: all frequent single-edge patterns.
        frontier: Dict[str, List[Occurrence]] = {}
        for u, v in self.graph.edges():
            occ = Occurrence.from_vertices_edges({u, v}, {(u, v)})
            code = occurrence_code(self.graph, occ)
            frontier.setdefault(code, []).append(occ)
        frontier = {
            code: occs[: config.max_occurrences_per_pattern]
            for code, occs in frontier.items()
            if occurrence_support(occs, config.support_measure) >= config.min_support
        }

        results: Dict[str, List[Occurrence]] = dict(frontier)
        edges = 1
        while frontier and edges < config.max_edges:
            if self._out_of_budget(start, statistics):
                self.completed = False
                break
            next_frontier: Dict[str, List[Occurrence]] = {}
            for _code, occurrences in frontier.items():
                if self._out_of_budget(start, statistics):
                    self.completed = False
                    break
                for occ in occurrences:
                    for new_occ in self._one_edge_extensions(occ):
                        new_code = occurrence_code(self.graph, new_occ)
                        if new_code in results:
                            continue
                        bucket = next_frontier.setdefault(new_code, [])
                        within_cap = len(bucket) < config.max_occurrences_per_pattern
                        if within_cap and new_occ not in bucket:
                            bucket.append(new_occ)
                        statistics.num_candidates_generated += 1
            # Frequency filter.
            surviving: Dict[str, List[Occurrence]] = {}
            for code, occs in next_frontier.items():
                if occurrence_support(occs, config.support_measure) >= config.min_support:
                    surviving[code] = occs
            results.update(surviving)
            frontier = surviving
            edges += 1
            if len(results) > config.max_candidates:
                self.completed = False
                break

        patterns = [occurrences_to_pattern(self.graph, occs) for occs in results.values()]
        if config.closed_only:
            patterns = self._closed_filter(patterns)
        runtime = time.perf_counter() - start
        return MiningResult(
            algorithm="MoSS",
            patterns=patterns,
            runtime_seconds=runtime,
            statistics=statistics,
            parameters={
                "min_support": config.min_support,
                "max_edges": config.max_edges,
                "completed": self.completed,
            },
        )

    # ------------------------------------------------------------------ #
    def _one_edge_extensions(self, occurrence: Occurrence) -> List[Occurrence]:
        """Grow an occurrence by one incident data edge (forward or closing)."""
        extensions: List[Occurrence] = []
        for vertex in occurrence.vertices:
            for neighbor in self.graph.neighbors(vertex):
                edge = (vertex, neighbor) if repr(vertex) <= repr(neighbor) else (neighbor, vertex)
                if edge in occurrence.edges:
                    continue
                extensions.append(
                    Occurrence(
                        vertices=occurrence.vertices | {neighbor},
                        edges=occurrence.edges | {edge},
                    )
                )
        return extensions

    def _out_of_budget(self, start: float, statistics: MiningStatistics) -> bool:
        config = self.config
        if config.time_budget_seconds is None:
            return False
        return (time.perf_counter() - start) > config.time_budget_seconds

    def _closed_filter(self, patterns: List[Pattern]) -> List[Pattern]:
        """Keep patterns with no super-pattern of identical support (closed patterns)."""
        from ..patterns.lattice import is_sub_pattern

        kept: List[Pattern] = []
        for pattern in patterns:
            closed = True
            for other in patterns:
                if other is pattern or other.num_edges <= pattern.num_edges:
                    continue
                same_count = len(other.embeddings) == len(pattern.embeddings)
                if same_count and is_sub_pattern(pattern, other):
                    closed = False
                    break
            if closed:
                kept.append(pattern)
        return kept


def run_moss(
    graph: GraphView,
    min_support: int = 2,
    max_edges: int = 50,
    time_budget_seconds: Optional[float] = None,
) -> MiningResult:
    """Convenience wrapper for the MoSS-style complete miner."""
    config = MossConfig(
        min_support=min_support, max_edges=max_edges, time_budget_seconds=time_budget_seconds
    )
    return Moss(graph, config).mine()
