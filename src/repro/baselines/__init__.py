"""Baseline miners the paper compares SpiderMine against.

Single-graph setting:

* :func:`run_subdue` — SUBDUE, MDL-compression beam search (Holder et al.);
* :func:`run_seus` — SEuS, summary-graph candidate generation (Ghazizadeh & Chawathe);
* :func:`run_moss` — MoSS-style complete frequent-subgraph enumeration (Fiedler & Borgelt);
* :func:`run_grew` — GREW, iterative vertex-disjoint merging (Kuramochi & Karypis).

Graph-transaction setting:

* :func:`run_origami` — ORIGAMI, α-orthogonal β-representative maximal patterns (Hasan et al.);
* :func:`run_gspan` — gSpan-style complete miner (Yan & Han).
"""

from .subdue import Subdue, SubdueConfig, run_subdue
from .seus import Seus, SeusConfig, SummaryGraph, run_seus
from .moss import Moss, MossConfig, run_moss
from .grew import Grew, GrewConfig, run_grew
from .origami import Origami, OrigamiConfig, run_origami
from .gspan import GSpan, GSpanConfig, run_gspan

__all__ = [
    "Subdue", "SubdueConfig", "run_subdue",
    "Seus", "SeusConfig", "SummaryGraph", "run_seus",
    "Moss", "MossConfig", "run_moss",
    "Grew", "GrewConfig", "run_grew",
    "Origami", "OrigamiConfig", "run_origami",
    "GSpan", "GSpanConfig", "run_gspan",
]
