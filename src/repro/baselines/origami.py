"""ORIGAMI baseline (Hasan, Chaoji, Salem, Besson & Zaki, ICDM 2007).

ORIGAMI mines an *α-orthogonal, β-representative* set of maximal frequent
subgraphs from a graph database:

1. **Random maximal pattern generation.**  Starting from a frequent edge, a
   pattern performs a random walk up the pattern lattice (adding one random
   frequent extension at a time) until no extension is frequent — the
   endpoint is a (locally) maximal frequent pattern.  Repeating the walk
   collects a sample ``M̂`` of maximal patterns.
2. **Orthogonality selection.**  From ``M̂``, pick a subset in which every
   pair has structural similarity at most ``α`` (orthogonality) while each
   discarded pattern is within ``β`` similarity of some kept one
   (representativeness).

The behaviour the paper relies on: because the random walk stops at the first
locally-maximal pattern, walks through dense regions of small patterns
terminate early, so when many small patterns exist ORIGAMI's output "leans
significantly towards smaller ones" and misses the large distinctive
patterns.  The reimplementation keeps both phases and that termination rule.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.results import MiningResult, MiningStatistics
from ..graph.canonical import canonical_code
from ..graph.labeled_graph import LabeledGraph
from ..patterns.pattern import Pattern
from ..transaction.database import GraphDatabase


@dataclass
class OrigamiConfig:
    """Parameters of the ORIGAMI sampler."""

    min_support: int = 2
    alpha: float = 0.5
    beta: float = 0.5
    num_walks: int = 60
    max_edges: int = 40
    seed: Optional[int] = 0


class Origami:
    """α-orthogonal, β-representative maximal pattern mining."""

    def __init__(self, database: GraphDatabase, config: Optional[OrigamiConfig] = None) -> None:
        self.database = database
        self.config = config or OrigamiConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ #
    def mine(self) -> MiningResult:
        start = time.perf_counter()
        config = self.config
        statistics = MiningStatistics()

        maximal: Dict[str, LabeledGraph] = {}
        for _ in range(config.num_walks):
            pattern = self._random_maximal_walk(statistics)
            if pattern is None:
                continue
            maximal[canonical_code(pattern)] = pattern

        chosen = self._orthogonal_selection(list(maximal.values()))
        patterns = [Pattern(graph=g.copy()) for g in chosen]
        patterns.sort(key=lambda p: (p.num_vertices, p.num_edges), reverse=True)
        runtime = time.perf_counter() - start
        return MiningResult(
            algorithm="ORIGAMI",
            patterns=patterns,
            runtime_seconds=runtime,
            statistics=statistics,
            parameters={
                "min_support": config.min_support,
                "alpha": config.alpha,
                "beta": config.beta,
                "num_walks": config.num_walks,
            },
        )

    # ------------------------------------------------------------------ #
    # phase 1: random maximal pattern generation
    # ------------------------------------------------------------------ #
    def _frequent_edges(self) -> List[LabeledGraph]:
        seen: Dict[str, LabeledGraph] = {}
        for graph in self.database:
            for u, v in graph.edges():
                pattern = LabeledGraph()
                pattern.add_vertex(0, graph.label(u))
                pattern.add_vertex(1, graph.label(v))
                pattern.add_edge(0, 1)
                seen.setdefault(canonical_code(pattern), pattern)
        return [
            p for p in seen.values()
            if self.database.transaction_support(p) >= self.config.min_support
        ]

    def _random_maximal_walk(self, statistics: MiningStatistics) -> Optional[LabeledGraph]:
        """One random walk up the pattern lattice, stopping at a maximal pattern."""
        config = self.config
        edges = self._frequent_edges()
        if not edges:
            return None
        current = self._rng.choice(edges).copy()
        while current.num_edges < config.max_edges:
            extensions = self._frequent_extensions(current)
            statistics.num_candidates_generated += len(extensions)
            if not extensions:
                break
            current = self._rng.choice(extensions)
        return current

    def _frequent_extensions(self, pattern: LabeledGraph) -> List[LabeledGraph]:
        """All one-edge extensions of ``pattern`` that stay frequent."""
        adjacency: Dict[object, Set[object]] = {}
        for graph in self.database:
            for u, v in graph.edges():
                adjacency.setdefault(graph.label(u), set()).add(graph.label(v))
                adjacency.setdefault(graph.label(v), set()).add(graph.label(u))
        candidates: List[LabeledGraph] = []
        next_id = max(pattern.vertices()) + 1
        for vertex in sorted(pattern.vertices()):
            for label in sorted(adjacency.get(pattern.label(vertex), ()), key=repr):
                extended = pattern.copy()
                extended.add_vertex(next_id, label)
                extended.add_edge(vertex, next_id)
                candidates.append(extended)
        vertices = sorted(pattern.vertices())
        for i, u in enumerate(vertices):
            for v in vertices[i + 1:]:
                if not pattern.has_edge(u, v):
                    extended = pattern.copy()
                    extended.add_edge(u, v)
                    candidates.append(extended)
        return [
            c for c in candidates
            if self.database.is_frequent(c, self.config.min_support)
        ]

    # ------------------------------------------------------------------ #
    # phase 2: orthogonal / representative selection
    # ------------------------------------------------------------------ #
    def _similarity(self, first: LabeledGraph, second: LabeledGraph) -> float:
        """Edge-signature Jaccard similarity — ORIGAMI's cheap structural similarity."""
        def signature(graph: LabeledGraph) -> Set[Tuple[object, object]]:
            sigs = set()
            for u, v in graph.edges():
                a, b = graph.label(u), graph.label(v)
                sigs.add((a, b) if repr(a) <= repr(b) else (b, a))
            return sigs

        sig_a, sig_b = signature(first), signature(second)
        if not sig_a and not sig_b:
            return 1.0
        union = sig_a | sig_b
        if not union:
            return 1.0
        return len(sig_a & sig_b) / len(union)

    def _orthogonal_selection(self, patterns: Sequence[LabeledGraph]) -> List[LabeledGraph]:
        """Greedy α-orthogonal subset (largest patterns get priority)."""
        config = self.config
        ordered = sorted(patterns, key=lambda g: (g.num_edges, g.num_vertices), reverse=True)
        chosen: List[LabeledGraph] = []
        for pattern in ordered:
            if all(self._similarity(pattern, other) <= config.alpha for other in chosen):
                chosen.append(pattern)
        # β-representativeness: every rejected pattern should be β-close to a
        # chosen one; if not, it is added back (keeps coverage of the sample).
        for pattern in ordered:
            if pattern in chosen:
                continue
            if not any(self._similarity(pattern, other) >= config.beta for other in chosen):
                chosen.append(pattern)
        return chosen


def run_origami(
    database: GraphDatabase,
    min_support: int = 2,
    alpha: float = 0.5,
    beta: float = 0.5,
    num_walks: int = 60,
    seed: Optional[int] = 0,
) -> MiningResult:
    """Convenience wrapper for the ORIGAMI baseline."""
    config = OrigamiConfig(
        min_support=min_support, alpha=alpha, beta=beta, num_walks=num_walks, seed=seed
    )
    return Origami(database, config).mine()
