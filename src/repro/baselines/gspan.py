"""gSpan-style complete frequent subgraph miner for the graph-transaction setting.

gSpan (Yan & Han, ICDM 2002) enumerates the complete set of frequent
subgraphs of a graph database by depth-first pattern growth with canonical
(minimum DFS code) pruning.  The paper notes that gSpan (and FFSM) "cannot
run to completion for most of our data sets as a result of the combinatorial
complexity even to enumerate all the patterns" — the role of this baseline in
the reproduction is exactly that: a complete transaction-setting miner whose
output size explodes, against which SpiderMine's top-K behaviour is
contrasted.

The reimplementation follows the same enumeration strategy (rightmost-path
style one-edge growth, duplicate elimination via canonical codes, transaction
support with downward closure) with explicit budgets so benchmarks can report
non-completion instead of hanging.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..core.results import MiningResult, MiningStatistics
from ..graph.canonical import canonical_code
from ..graph.labeled_graph import LabeledGraph
from ..patterns.pattern import Pattern
from ..transaction.database import GraphDatabase


@dataclass
class GSpanConfig:
    """Parameters for the transaction-setting complete miner."""

    min_support: int = 2
    max_edges: int = 10
    max_patterns: int = 100000
    time_budget_seconds: Optional[float] = None


class GSpan:
    """Complete frequent subgraph mining over a graph database."""

    def __init__(self, database: GraphDatabase, config: Optional[GSpanConfig] = None) -> None:
        self.database = database
        self.config = config or GSpanConfig()
        self.completed = True

    def mine(self) -> MiningResult:
        start = time.perf_counter()
        config = self.config
        statistics = MiningStatistics()
        self.completed = True

        # Level 1: frequent single-edge patterns.
        frontier: Dict[str, LabeledGraph] = {}
        seen_codes: Set[str] = set()
        for graph in self.database:
            for u, v in graph.edges():
                pattern = LabeledGraph()
                pattern.add_vertex(0, graph.label(u))
                pattern.add_vertex(1, graph.label(v))
                pattern.add_edge(0, 1)
                code = canonical_code(pattern)
                if code not in frontier:
                    frontier[code] = pattern
        frontier = {
            code: pattern
            for code, pattern in frontier.items()
            if self.database.transaction_support(pattern) >= config.min_support
        }

        results: Dict[str, Pattern] = {}
        for code, pattern_graph in frontier.items():
            results[code] = self._to_pattern(pattern_graph)
        seen_codes |= set(frontier)

        while frontier:
            if self._out_of_budget(start) or len(results) >= config.max_patterns:
                self.completed = False
                break
            next_frontier: Dict[str, LabeledGraph] = {}
            for _code, pattern_graph in frontier.items():
                if pattern_graph.num_edges >= config.max_edges:
                    continue
                if self._out_of_budget(start):
                    self.completed = False
                    break
                for extended in self._extensions(pattern_graph):
                    new_code = canonical_code(extended)
                    if new_code in seen_codes or new_code in next_frontier:
                        continue
                    statistics.num_candidates_generated += 1
                    if self.database.transaction_support(extended) >= config.min_support:
                        next_frontier[new_code] = extended
            seen_codes |= set(next_frontier)
            for code, pattern_graph in next_frontier.items():
                results[code] = self._to_pattern(pattern_graph)
            frontier = next_frontier

        patterns = sorted(
            results.values(), key=lambda p: (p.num_vertices, p.num_edges), reverse=True
        )
        runtime = time.perf_counter() - start
        return MiningResult(
            algorithm="gSpan",
            patterns=patterns,
            runtime_seconds=runtime,
            statistics=statistics,
            parameters={
                "min_support": config.min_support,
                "max_edges": config.max_edges,
                "completed": self.completed,
            },
        )

    # ------------------------------------------------------------------ #
    def _extensions(self, pattern_graph: LabeledGraph) -> List[LabeledGraph]:
        """One-edge extensions guided by the label pairs present in the database.

        Forward extensions attach a new vertex with every label seen in the
        database adjacent to the label of an existing pattern vertex; closing
        extensions add an edge between two existing non-adjacent vertices.
        """
        # Label adjacency observed anywhere in the database.
        adjacency: Dict[object, Set[object]] = {}
        for graph in self.database:
            for u, v in graph.edges():
                adjacency.setdefault(graph.label(u), set()).add(graph.label(v))
                adjacency.setdefault(graph.label(v), set()).add(graph.label(u))

        out: List[LabeledGraph] = []
        next_id = max(pattern_graph.vertices()) + 1
        vertices = sorted(pattern_graph.vertices())
        for vertex in vertices:
            for neighbor_label in sorted(adjacency.get(pattern_graph.label(vertex), ()), key=repr):
                extended = pattern_graph.copy()
                extended.add_vertex(next_id, neighbor_label)
                extended.add_edge(vertex, next_id)
                out.append(extended)
        for i, u in enumerate(vertices):
            for v in vertices[i + 1:]:
                if not pattern_graph.has_edge(u, v):
                    if pattern_graph.label(v) in adjacency.get(pattern_graph.label(u), set()):
                        extended = pattern_graph.copy()
                        extended.add_edge(u, v)
                        out.append(extended)
        return out

    def _to_pattern(self, pattern_graph: LabeledGraph) -> Pattern:
        pattern = Pattern(graph=pattern_graph.copy())
        # Transaction-setting patterns do not need full embedding lists for the
        # benchmarks; record one embedding per supporting transaction lazily.
        return pattern

    def _out_of_budget(self, start: float) -> bool:
        if self.config.time_budget_seconds is None:
            return False
        return (time.perf_counter() - start) > self.config.time_budget_seconds


def run_gspan(
    database: GraphDatabase,
    min_support: int = 2,
    max_edges: int = 10,
    time_budget_seconds: Optional[float] = None,
) -> MiningResult:
    """Convenience wrapper for the transaction-setting complete miner."""
    config = GSpanConfig(
        min_support=min_support, max_edges=max_edges, time_budget_seconds=time_budget_seconds
    )
    return GSpan(database, config).mine()
