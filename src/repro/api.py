"""The stable programmatic facade of the reproduction: ``repro.api``.

Three verbs cover the whole mine → store → serve lifecycle:

* :func:`mine` — run SpiderMine on a graph, optionally writing the result
  into a catalog (the run cache re-serves bit-identical results on re-mines);
* :func:`load_graph` / :func:`save_graph` — one-graph file I/O in either the
  JSON wire format the HTTP API accepts or the gSpan-style ``.lg`` format;
* :func:`open_catalog` — a :class:`Catalog` handle over a stored catalog:
  ``top_k`` / ``with_label`` / ``contains`` / ``contains_batch`` queries and
  ``serve()`` to put the same answers on an HTTP port.

Everything here is re-exported from ``repro`` itself, so user code needs a
single import:

>>> import repro
>>> from repro.graph import synthetic_single_graph
>>> data = synthetic_single_graph(
...     num_vertices=200, num_labels=40, average_degree=2.0,
...     num_large_patterns=2, large_pattern_vertices=12, large_pattern_support=2,
...     num_small_patterns=2, small_pattern_vertices=3, small_pattern_support=2,
...     seed=1,
... )
>>> result = repro.mine(data.graph, min_support=2, k=5, d_max=6,
...                     catalog="/tmp/doctest-catalog")
>>> catalog = repro.open_catalog("/tmp/doctest-catalog")
>>> len(catalog.top_k(k=3)) <= 3
True

The facade is the supported surface: internals (`CatalogQuery`,
`SubgraphMatcher` setup, payload shapes) may move between releases, these
names and semantics do not.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .catalog.query import (
    INDEX_CACHE_ENTRIES,
    PAYLOAD_CACHE_ENTRIES,
    CatalogQuery,
    PatternRecord,
)
from .catalog.store import CatalogStore, PathLike
from .core.config import CachePolicy
from .core.results import MiningResult
from .core.spidermine import mine_top_k_patterns
from .graph.io import (
    GraphLike,
    graph_from_dict,
    graph_to_dict,
    read_lg,
    write_lg,
)
from .graph.view import GraphView
from .patterns.pattern import Pattern

__all__ = [
    "Catalog",
    "mine",
    "load_graph",
    "save_graph",
    "open_catalog",
]


# ---------------------------------------------------------------------- #
# mining
# ---------------------------------------------------------------------- #
def mine(
    graph: GraphView,
    min_support: int,
    k: int = 10,
    d_max: int = 4,
    epsilon: float = 0.1,
    radius: int = 1,
    v_min: Optional[int] = None,
    seed: Optional[int] = 0,
    catalog: Optional[PathLike] = None,
    cache_mode: str = "readwrite",
    **overrides,
) -> MiningResult:
    """Run SpiderMine; with ``catalog=DIR`` the run is cached/served there.

    Identical semantics (and bit-identical results) to
    :func:`repro.core.spidermine.mine_top_k_patterns`; the ``catalog``
    argument is sugar for ``cache=CachePolicy.at(DIR, mode=cache_mode)`` and
    is what makes the result queryable via :func:`open_catalog` afterwards.
    """
    if catalog is not None:
        if "cache" in overrides:
            raise ValueError("pass either catalog=... or cache=..., not both")
        overrides["cache"] = CachePolicy.at(catalog, mode=cache_mode)
    return mine_top_k_patterns(
        graph,
        min_support,
        k=k,
        d_max=d_max,
        epsilon=epsilon,
        radius=radius,
        v_min=v_min,
        seed=seed,
        **overrides,
    )


# ---------------------------------------------------------------------- #
# graph file I/O
# ---------------------------------------------------------------------- #
def save_graph(graph: GraphView, path: PathLike) -> None:
    """Write one graph to ``path``; format chosen by suffix.

    ``.lg`` writes the gSpan-style edge-list format; anything else writes the
    canonical JSON object (``{"vertices": ..., "edges": ...}``) — exactly the
    needle wire shape ``POST /contains`` accepts, so a saved file's body can
    be shipped to the server verbatim.
    """
    path = Path(path)
    if path.suffix == ".lg":
        write_lg([graph], path)
        return
    import json

    path.write_text(
        json.dumps(graph_to_dict(graph), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_graph(path: PathLike, frozen: bool = False) -> GraphLike:
    """Read the single graph stored at ``path`` (inverse of :func:`save_graph`).

    Accepts ``.lg`` files and JSON files holding either one graph object or a
    one-element list (the :func:`repro.graph.io.write_json` shape).  A file
    holding several graphs is an error — use :func:`repro.graph.io.read_lg`
    / :func:`~repro.graph.io.read_json` for multi-graph files.
    """
    path = Path(path)
    if path.suffix == ".lg":
        graphs = read_lg(path, frozen=frozen)
    else:
        import json

        from .graph.frozen import freeze

        payload = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(payload, dict):
            payload = [payload]
        graphs = [graph_from_dict(item) for item in payload]
        if frozen:
            graphs = [freeze(g) for g in graphs]
    if len(graphs) != 1:
        raise ValueError(
            f"{path} holds {len(graphs)} graphs; load_graph expects exactly one "
            "(use repro.graph.io.read_lg / read_json for collections)"
        )
    return graphs[0]


# ---------------------------------------------------------------------- #
# the catalog handle
# ---------------------------------------------------------------------- #
class Catalog:
    """A read-mostly handle over one stored catalog.

    Thin, stable wrapper around the query layer: every method answers from
    the store's summaries and the persisted pattern-index sidecars, never
    from data graphs.  The same handle backs the HTTP server, which is why
    server responses are byte-identical to serialising these answers.
    """

    def __init__(self, query: CatalogQuery) -> None:
        self.query = query

    @property
    def store(self) -> CatalogStore:
        return self.query.store

    @property
    def stats(self):
        """Work counters of the index-backed containment path."""
        return self.query.stats

    def runs(self, kind: Optional[str] = None) -> List[Dict]:
        """Stored run summaries (per-pattern lists elided), sorted by run id."""
        summaries = []
        for run in self.store.list_runs(kind=kind):
            summary = {k: v for k, v in run.items() if k != "patterns"}
            summary["num_patterns"] = len(run.get("patterns", []))
            summaries.append(summary)
        summaries.sort(key=lambda r: r["run_id"])
        return summaries

    def top_k(
        self,
        k: int = 10,
        by: str = "vertices",
        label=None,
        run: Optional[str] = None,
    ) -> List[PatternRecord]:
        """The k best stored patterns by ``vertices``/``edges``/``support``."""
        return self.query.top_k(k, by=by, label=label, run_id=run)

    def with_label(self, label, run: Optional[str] = None) -> List[PatternRecord]:
        """Stored patterns containing a vertex with ``label``."""
        return self.query.with_label(label, run_id=run)

    def contains(
        self,
        needle: Union[GraphView, Pattern],
        run: Optional[str] = None,
    ) -> List[PatternRecord]:
        """Stored patterns containing ``needle`` as a label-preserving subgraph."""
        return self.query.containing(needle, run_id=run)

    def contains_batch(
        self,
        needles: Sequence[Union[GraphView, Pattern]],
        run: Optional[str] = None,
    ) -> List[List[PatternRecord]]:
        """Containment for many needles in one pass over the stored runs."""
        return self.query.contains_batch(needles, run_id=run)

    def load_pattern(self, record: PatternRecord) -> Pattern:
        """The full pattern (graph + embeddings) behind a record."""
        return self.query.load_pattern(record)

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        background: bool = False,
        **defaults,
    ):
        """Serve this catalog over HTTP (see :mod:`repro.catalog.server`).

        Foreground blocks until interrupted; ``background=True`` returns a
        :class:`~repro.catalog.server.ServerHandle` bound to an OS-chosen
        port when ``port=0``.
        """
        from .catalog.server import serve as _serve

        return _serve(self, host=host, port=port, background=background, **defaults)


def open_catalog(
    store: Union[CatalogStore, PathLike],
    read_only: bool = False,
    payload_cache_size: int = PAYLOAD_CACHE_ENTRIES,
    index_cache_size: int = INDEX_CACHE_ENTRIES,
) -> Catalog:
    """Open a stored catalog for querying/serving.

    ``read_only=True`` guarantees the store is never written — stale or
    missing pattern-index sidecars are rebuilt in memory only.  That is the
    mode ``repro serve`` uses, so a Docker-mounted read-only volume works.
    """
    query = CatalogQuery._create(
        store,
        payload_cache_size=payload_cache_size,
        index_cache_size=index_cache_size,
        read_only=read_only,
    )
    return Catalog(query)
