"""Runtime tables and experiment records.

Figure 16 of the paper is a runtime table (algorithms × datasets); Figures
9–11 and 17 are runtime-versus-size series.  :class:`RuntimeTable` and
:class:`SeriesReport` produce exactly those rows, and
:class:`ExperimentRecord` is the JSON-serialisable record the benchmark
harness writes for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..core.results import MiningResult

PathLike = Union[str, Path]

#: The marker the paper prints for runs that did not finish within the budget.
DID_NOT_FINISH = "-"


@dataclass
class RuntimeTable:
    """dataset × algorithm → runtime seconds (or DID_NOT_FINISH)."""

    rows: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def record(self, dataset: str, algorithm: str, runtime: Optional[float]) -> None:
        row = self.rows.setdefault(dataset, {})
        row[algorithm] = DID_NOT_FINISH if runtime is None else round(runtime, 4)

    def record_result(self, dataset: str, result: MiningResult, completed: bool = True) -> None:
        self.record(dataset, result.algorithm, result.runtime_seconds if completed else None)

    def algorithms(self) -> List[str]:
        names: List[str] = []
        for row in self.rows.values():
            for name in row:
                if name not in names:
                    names.append(name)
        return names

    def to_text(self, title: str = "Runtime comparison (seconds)") -> str:
        names = self.algorithms()
        header = ["dataset"] + names
        widths = [max(12, len(h) + 2) for h in header]
        lines = [title, "-" * sum(widths)]
        lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
        for dataset, row in self.rows.items():
            cells = [dataset] + [str(row.get(name, "")) for name in names]
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


@dataclass
class SeriesReport:
    """An x-versus-metrics series (runtime/largest-size vs graph size figures)."""

    x_label: str
    points: List[Dict[str, object]] = field(default_factory=list)

    def add_point(self, x: object, **metrics: object) -> None:
        self.points.append({self.x_label: x, **metrics})

    def column(self, name: str) -> List[object]:
        return [point.get(name) for point in self.points]

    def to_text(self, title: str) -> str:
        if not self.points:
            return f"{title}\n(empty)"
        names = [self.x_label] + [k for k in self.points[0] if k != self.x_label]
        widths = [max(12, len(n) + 2) for n in names]
        lines = [title, "-" * sum(widths)]
        lines.append("".join(n.ljust(w) for n, w in zip(names, widths)))
        for point in self.points:
            cells = [str(point.get(n, "")) for n in names]
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


@dataclass
class ExperimentRecord:
    """One reproduced table/figure: identity, parameters, and the measured rows."""

    experiment_id: str
    description: str
    parameters: Dict[str, object] = field(default_factory=dict)
    measurements: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_measurement(self, **values: object) -> None:
        self.measurements.append(dict(values))

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str)

    def save(self, directory: PathLike) -> Path:
        """Write the record under ``directory`` as ``<experiment_id>.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.json"
        path.write_text(self.to_json(), encoding="utf-8")
        return path


def summarize_results(results: Sequence[MiningResult]) -> str:
    """Multi-line summary of several mining results (used by examples and the CLI)."""
    return "\n".join(result.summary() for result in results)


def phase_time_table(
    result: MiningResult,
    spans: Optional[Sequence] = None,
    title: str = "Phase times",
) -> str:
    """The ``mine --telemetry`` phase-time table.

    Rows come from the run's stage durations
    (:class:`~repro.core.results.MiningStatistics`); when the tracer's span
    trees are passed as ``spans`` (:class:`repro.obs.Span` roots), each
    top-level span adds its per-unit child aggregation — count, child total
    and self time — so the table shows where a stage's wall-clock went.
    """
    durations = result.statistics.stage_durations
    total = sum(durations.values()) or result.runtime_seconds or 0.0
    names = ["phase", "seconds", "share"]
    widths = [max(26, len(n) + 2) for n in names]
    lines = [title, "-" * sum(widths)]
    lines.append("".join(n.ljust(w) for n, w in zip(names, widths)))

    def row(phase: str, seconds: float) -> None:
        share = f"{100.0 * seconds / total:5.1f}%" if total else "-"
        cells = [phase, f"{seconds:.4f}", share]
        lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))

    for name in sorted(durations):
        row(name, durations[name])
    row("total", total)
    for span in spans or ():
        if not getattr(span, "children", None):
            continue
        child_total = span.child_total()
        lines.append(
            f"  {span.name}: {len(span.children)} child span(s), "
            f"{child_total:.4f}s in children, {span.self_time():.4f}s self"
        )
    return "\n".join(lines)
