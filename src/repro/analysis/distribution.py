"""Pattern-size distributions and their comparison across algorithms.

Figures 4–8, 14–15, 20 and 21 of the paper are histograms of "number of
patterns of each size" per algorithm.  :class:`SizeDistributionComparison`
collects the distributions of several mining results on the same dataset and
renders the same rows the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.results import MiningResult


@dataclass
class SizeDistributionComparison:
    """size → per-algorithm pattern counts, built from mining results."""

    by: str = "vertices"
    distributions: Dict[str, Dict[int, int]] = field(default_factory=dict)

    def add(self, result: MiningResult, name: Optional[str] = None) -> None:
        self.distributions[name or result.algorithm] = result.size_distribution(by=self.by)

    def add_raw(self, name: str, distribution: Dict[int, int]) -> None:
        self.distributions[name] = dict(distribution)

    @property
    def algorithms(self) -> List[str]:
        return list(self.distributions)

    def sizes(self) -> List[int]:
        """All pattern sizes any algorithm produced, ascending (the x-axis)."""
        all_sizes = set()
        for dist in self.distributions.values():
            all_sizes |= set(dist)
        return sorted(all_sizes)

    def rows(self) -> List[Dict[str, object]]:
        """One row per size with each algorithm's count — the figure's data."""
        rows = []
        for size in self.sizes():
            row: Dict[str, object] = {"size": size}
            for name, dist in self.distributions.items():
                row[name] = dist.get(size, 0)
            rows.append(row)
        return rows

    def largest_size(self, name: str) -> int:
        dist = self.distributions.get(name, {})
        return max(dist) if dist else 0

    def count_at_least(self, name: str, size: int) -> int:
        """How many patterns of ``name`` have size ≥ ``size``."""
        dist = self.distributions.get(name, {})
        return sum(count for s, count in dist.items() if s >= size)

    def to_text(self, title: str = "Pattern size distribution") -> str:
        """A fixed-width text table mirroring the paper's histogram figures."""
        names = self.algorithms
        header = ["size"] + names
        widths = [max(6, len(h) + 2) for h in header]
        lines = [title, "-" * sum(widths)]
        lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in self.rows():
            cells = [str(row["size"])] + [str(row[name]) for name in names]
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)


def top_sizes(result: MiningResult, k: int, by: str = "vertices") -> List[int]:
    """The sizes of the top-``k`` largest patterns, descending (Figures 18/19)."""
    return result.sizes(by=by)[:k]


def recovery_rate(
    result: MiningResult,
    planted_sizes: Sequence[int],
    tolerance: int = 0,
    by: str = "vertices",
) -> float:
    """Fraction of planted pattern sizes matched by some reported pattern.

    A planted size counts as recovered when the result contains a pattern
    whose size is at least ``planted - tolerance`` (interconnections with the
    background can make recovered patterns *larger* than what was planted, as
    the paper notes, so only the lower side is tolerated).
    """
    if not planted_sizes:
        return 1.0
    reported = result.sizes(by=by)
    recovered = 0
    for planted in planted_sizes:
        if any(size >= planted - tolerance for size in reported):
            recovered += 1
    return recovered / len(planted_sizes)
