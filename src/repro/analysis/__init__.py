"""Analysis helpers: size distributions, runtime tables and experiment records."""

from .distribution import SizeDistributionComparison, recovery_rate, top_sizes
from .reporting import (
    DID_NOT_FINISH,
    ExperimentRecord,
    RuntimeTable,
    SeriesReport,
    phase_time_table,
    summarize_results,
)

__all__ = [
    "SizeDistributionComparison",
    "recovery_rate",
    "top_sizes",
    "DID_NOT_FINISH",
    "ExperimentRecord",
    "RuntimeTable",
    "SeriesReport",
    "phase_time_table",
    "summarize_results",
]
