"""Inline suppressions: ``# reprolint: disable=DET001[,DET002|all]``.

A suppression silences the named codes on the line carrying the comment and,
when the comment stands alone, on the next non-comment line — the two
spellings authors actually write::

    order = list(frontier)  # reprolint: disable=DET001  -- merge re-sorts

    # reprolint: disable=KERN001  -- kernels.py is the defining module
    rows = kernels.filter_rows(...)

``disable=all`` silences every rule on that line.  The policy (enforced by
review, stated in ARCHITECTURE.md) is that every suppression carries a
justification after the directive; the parser itself only needs the codes.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set

__all__ = ["SuppressionIndex"]

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")
_COMMENT_ONLY = re.compile(r"^\s*#")


class SuppressionIndex:
    """Per-line suppressed codes for one source file."""

    def __init__(self, lines: Sequence[str]) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        for number, text in enumerate(lines, start=1):
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            codes = {
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            }
            if not codes:
                continue
            self._by_line.setdefault(number, set()).update(codes)
            if _COMMENT_ONLY.match(text):
                # A standalone directive covers the statement below it.
                self._by_line.setdefault(number + 1, set()).update(codes)

    def suppressed(self, line: int, code: str) -> bool:
        codes = self._by_line.get(line)
        if not codes:
            return False
        return "ALL" in codes or code.upper() in codes

    def all_directive_lines(self) -> List[int]:
        """Lines carrying a directive (diagnostic/debug aid)."""
        return sorted(self._by_line)
