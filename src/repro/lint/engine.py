"""The lint driver: load → run rules → suppress → sorted diagnostics.

Kept separate from the CLI so the drift-guard test and any future pre-commit
hook can call :func:`run_lint` / :func:`lint_project` directly and assert on
the returned :class:`Diagnostic` list instead of parsing process output.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .base import all_rules
from .config import LintConfig
from .diagnostics import PARSE_ERROR_CODE, Diagnostic
from .project import Project
from .suppress import SuppressionIndex

__all__ = ["lint_project", "lint_paths", "run_lint"]


def lint_project(
    project: Project, config: Optional[LintConfig] = None
) -> List[Diagnostic]:
    """Run the selected rules over an already-loaded project."""
    config = config or LintConfig()
    rules = all_rules()
    config.validate([rule.code for rule in rules])

    diagnostics: List[Diagnostic] = [
        Diagnostic(
            path=qualpath,
            line=line,
            column=0,
            code=PARSE_ERROR_CODE,
            message=f"file does not parse: {error}",
        )
        for qualpath, line, error in project.parse_failures
    ]
    suppressions: Dict[str, SuppressionIndex] = {
        module.qualpath: SuppressionIndex(module.lines) for module in project.modules
    }
    for rule in rules:
        if not config.enabled(rule.code):
            continue
        for diagnostic in rule.check(project):
            index = suppressions.get(diagnostic.path)
            if index is not None and index.suppressed(diagnostic.line, diagnostic.code):
                continue
            diagnostics.append(diagnostic)
    return sorted(diagnostics)


def lint_paths(
    paths: Sequence[Union[str, Path]], config: Optional[LintConfig] = None
) -> List[Diagnostic]:
    """Load ``paths`` (files or directories) and lint them."""
    project = Project.load([Path(p) for p in paths])
    return lint_project(project, config)


def run_lint(
    paths: Sequence[Union[str, Path]] = ("src",),
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> List[Diagnostic]:
    """The one-call convenience used by tests and embedding callers."""
    return lint_paths(paths, LintConfig.from_options(select=select, ignore=ignore))
