"""The ``repro lint`` / ``reprolint`` command.

Exit status: 0 clean, 1 findings, 2 usage errors (unknown selector, missing
path) — the same ladder CI expects from ruff, so the workflow treats the two
gates identically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .base import all_rules
from .config import LintConfig
from .engine import lint_project
from .project import Project
from .reporters import render_json, render_text

__all__ = ["add_lint_arguments", "run_from_args", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared option surface (used by ``repro lint`` and ``reprolint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated rule codes or prefixes to run (e.g. DET,KERN001); "
             "default: every registered rule",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODES",
        help="rule codes or prefixes to drop after selection",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report (stable shape; uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        dest="list_rules",
        help="print the registered rules and exit",
    )


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0
    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        config = LintConfig.from_options(select=args.select, ignore=args.ignore)
        project = Project.load(paths)
        diagnostics = lint_project(project, config)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    files_scanned = len(project.modules) + len(project.parse_failures)
    render = render_json if args.json else render_text
    print(render(diagnostics, files_scanned))
    return 1 if diagnostics else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (the ``reprolint`` console script)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant checker for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(list(argv) if argv is not None else None))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
