"""The one record every rule emits.

A :class:`Diagnostic` is deliberately flat — code, location, message — so the
text reporter, the JSON reporter and the test assertions all consume the same
shape without adapters.  Ordering is total (path, line, column, code) to make
every report byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding at one source location."""

    path: str
    """Package-relative posix path of the offending file (``repro/...``)."""

    line: int
    """1-based line of the offending node."""

    column: int
    """0-based column of the offending node."""

    code: str
    """Rule code, e.g. ``DET001``."""

    message: str
    """Human-readable statement of the violated contract."""

    def to_dict(self) -> Dict[str, object]:
        """The stable JSON shape (``repro lint --json``)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"


#: Pseudo-code reported for files the parser refuses (syntax errors, bad
#: encodings).  It is a real diagnostic — a gate that silently skipped an
#: unparseable file would pass exactly when it must not — but it is not a
#: rule, so ``--select`` cannot filter it away.
PARSE_ERROR_CODE = "LINT001"
