"""``repro.lint`` — reprolint, the static invariant checker.

Every load-bearing guarantee of this reproduction — bit-identical digests
across backends and worker counts, result-neutral cache-key partitions,
telemetry that provably cannot move cache keys, lock-disciplined shared
state, numpy kernels with scalar fallbacks — used to be enforced only
*dynamically*, by parity tests that catch a violation after it ships.  This
package moves those contracts into a dependency-free AST gate that fails a
PR before a nondeterministic iteration or an unclassified config field ever
reaches a digest.

Layout
------
``project``     source loading: :class:`Module` (AST + parent map + helper
                queries) and :class:`Project` (a set of modules addressed by
                package-relative path)
``diagnostics`` the :class:`Diagnostic` record every rule emits
``suppress``    inline suppressions: ``# reprolint: disable=DET001[,...]``
                on the flagged line or the line directly above
``base``        the :class:`Rule` base class and the process-wide registry
``rules``      the shipped rules (importing it registers them):

                =========  ===================================================
                DET001     unordered set iteration on the determinism surface
                DET002     banned nondeterminism sources in result-affecting
                           modules
                CACHE001   every ``SpiderMineConfig`` field classified into
                           exactly one cache-key partition
                OBS001     ``repro.obs`` must not know ``SpiderMineConfig``;
                           hot-path telemetry uses the ``registry.enabled``
                           cheap check
                LOCK001    lock-owned attributes mutated only under
                           ``with self._lock``; no blocking calls while held
                KERN001    ``import numpy`` confined to ``graph/kernels.py``;
                           kernel calls reachable only behind
                           ``numpy_available()``
                =========  ===================================================

``config``      :class:`LintConfig` (``--select`` / ``--ignore`` filtering)
``reporters``   deterministic text and JSON output
``cli``         the ``repro lint`` / ``reprolint`` entry point

Use :func:`run_lint` programmatically (the drift-guard test in
``tests/test_catalog_formats.py`` asserts through it) or ``repro lint
[PATHS]`` from the command line; CI runs it over ``src/`` and fails the
merge on any diagnostic.
"""

from .base import Rule, all_rules, get_rule, register
from .config import LintConfig
from .diagnostics import Diagnostic
from .engine import lint_paths, lint_project, run_lint
from .project import Module, Project

__all__ = [
    "Diagnostic",
    "LintConfig",
    "Module",
    "Project",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_project",
    "register",
    "run_lint",
]
