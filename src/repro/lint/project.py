"""Source loading and AST plumbing shared by every rule.

A :class:`Module` wraps one parsed file with the queries rules keep needing:
a parent map (``ast`` has none), ancestor walks, enclosing-function lookup,
and the package-relative *qualpath* (``repro/graph/canonical.py``) that scope
lists match against regardless of where the scan was rooted.

A :class:`Project` is the set of modules one lint run sees.  Whole-project
rules (CACHE001 needs ``core/config.py`` *and* ``catalog/formats.py``
together; KERN001 resolves guards across modules) address modules by
qualpath suffix, so they work identically on the real tree and on synthetic
fixture trees in tests.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Module", "Project", "qualpath_for"]


def qualpath_for(path: Path) -> str:
    """The package-relative posix path used for scoping and reporting.

    Everything from the last ``repro`` path component onward when present
    (``/root/repo/src/repro/graph/io.py`` → ``repro/graph/io.py``), else the
    bare filename — fixture trees in tests have no package root.
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.name


class Module:
    """One parsed source file plus the navigation structure rules use."""

    def __init__(self, path: Path, source: str, qualpath: Optional[str] = None) -> None:
        self.path = path
        self.qualpath = qualpath if qualpath is not None else qualpath_for(path)
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    @classmethod
    def from_source(cls, qualpath: str, source: str) -> "Module":
        """A module from literal source — the test-fixture constructor."""
        return cls(Path(qualpath), source, qualpath=qualpath)

    # ------------------------------------------------------------------ #
    # navigation
    # ------------------------------------------------------------------ #
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first (node excluded)."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing function/async-function def, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def matches(self, scopes: Sequence[str]) -> bool:
        """Whether this module falls under any of the given scope patterns.

        A pattern is a qualpath suffix: ``repro/graph/canonical.py`` matches
        that file exactly, ``repro/obs/`` matches everything under the
        package, ``canonical.py`` matches by filename (fixture trees).
        """
        for scope in scopes:
            if scope.endswith("/"):
                if self.qualpath.startswith(scope) or f"/{scope}" in f"/{self.qualpath}":
                    return True
            elif self.qualpath == scope or self.qualpath.endswith(f"/{scope}"):
                return True
        return False


class Project:
    """The modules of one lint run, plus the paths that failed to parse."""

    def __init__(self, modules: Sequence[Module]) -> None:
        self.modules: List[Module] = sorted(modules, key=lambda m: m.qualpath)
        self.parse_failures: List[Tuple[str, int, str]] = []

    @classmethod
    def load(cls, paths: Sequence[Path]) -> "Project":
        """Parse every ``.py`` file under ``paths`` (files or directories).

        Unparseable files are recorded in :attr:`parse_failures` — the engine
        turns them into ``LINT001`` diagnostics rather than skipping them.
        """
        files: List[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        modules: List[Module] = []
        project = cls([])
        for file in files:
            try:
                source = file.read_text(encoding="utf-8")
                modules.append(Module(file, source))
            except (SyntaxError, UnicodeDecodeError, ValueError) as error:
                line = getattr(error, "lineno", 1) or 1
                project.parse_failures.append((qualpath_for(file), line, str(error)))
        project.modules = sorted(modules, key=lambda m: m.qualpath)
        return project

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """A synthetic project from ``{qualpath: source}`` — the test helper."""
        return cls([Module.from_source(q, s) for q, s in sources.items()])

    def module(self, scope: str) -> Optional[Module]:
        """The unique module matching ``scope`` (qualpath suffix), if present."""
        for module in self.modules:
            if module.matches([scope]):
                return module
        return None

    def in_scope(self, scopes: Sequence[str]) -> List[Module]:
        return [m for m in self.modules if m.matches(scopes)]
