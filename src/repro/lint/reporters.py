"""Deterministic text and JSON rendering of a diagnostic list.

Both reporters consume the already-sorted output of the engine, so two runs
over the same tree produce byte-identical reports — the JSON form is uploaded
as a CI artifact and diffed across builds.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .diagnostics import Diagnostic

__all__ = ["render_text", "render_json"]

#: Bumped on any change to the JSON shape below; consumers refuse drift.
REPORT_VERSION = 1


def render_text(diagnostics: Sequence[Diagnostic], files_scanned: int) -> str:
    """``path:line:col: CODE message`` lines plus a one-line summary."""
    lines = [str(d) for d in diagnostics]
    if diagnostics:
        by_code: Dict[str, int] = {}
        for d in diagnostics:
            by_code[d.code] = by_code.get(d.code, 0) + 1
        breakdown = ", ".join(f"{code} x{n}" for code, n in sorted(by_code.items()))
        lines.append(
            f"reprolint: {len(diagnostics)} finding(s) in {files_scanned} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"reprolint: clean ({files_scanned} file(s) checked)")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], files_scanned: int) -> str:
    """The stable machine shape (sorted keys, sorted findings)."""
    counts: Dict[str, int] = {}
    for d in diagnostics:
        counts[d.code] = counts.get(d.code, 0) + 1
    payload = {
        "version": REPORT_VERSION,
        "files_scanned": files_scanned,
        "counts": {code: counts[code] for code in sorted(counts)},
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def summary_counts(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for d in diagnostics:
        counts[d.code] = counts.get(d.code, 0) + 1
    return counts


# Kept as a typed list for --help and the docs table; the registry is the
# authoritative source (base.all_rules), this is only display order.
def known_codes() -> List[str]:
    from .base import all_rules

    return [rule.code for rule in all_rules()]
