"""CACHE001 — every ``SpiderMineConfig`` field sits in exactly one cache-key
partition.

The run cache's correctness hinges on a three-way classification declared in
``repro/catalog/formats.py``:

* ``_RESULT_NEUTRAL_CONFIG_FIELDS`` — excluded from every key (execution and
  cache policy: provably cannot change results);
* ``STAGE1_CONFIG_FIELDS`` — fields Stage I reads (in both the full-run and
  the ``spiders`` key);
* ``STAGE2_ONLY_CONFIG_FIELDS`` — fields only Stages II/III read (full-run
  key only).

A new config field that lands in *none* of the three would still be digested
(the payload builders are deny-list-based, the safe runtime default) but its
Stage-I relevance would be unrecorded — exactly the drift this rule makes a
static, line-precise failure instead of a test that fires after the fact.  A
field in *two* partitions is a contradiction; a partition naming a field that
no longer exists is stale.  ``tests/test_catalog_formats.py`` asserts through
this rule, making it the single source of truth for the partition.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..base import Rule, register
from ..diagnostics import Diagnostic
from ..project import Module, Project
from ._util import string_elements

CONFIG_MODULE = "repro/core/config.py"
FORMATS_MODULE = "repro/catalog/formats.py"
CONFIG_CLASS = "SpiderMineConfig"

#: The three partition sets formats.py must declare.
PARTITION_SETS = (
    "_RESULT_NEUTRAL_CONFIG_FIELDS",
    "STAGE1_CONFIG_FIELDS",
    "STAGE2_ONLY_CONFIG_FIELDS",
)


def _config_fields(module: Module) -> Dict[str, int]:
    """``{field name: line}`` of the config dataclass's declared fields."""
    for node in module.walk():
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            fields: Dict[str, int] = {}
            for statement in node.body:
                if isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    fields[statement.target.id] = statement.lineno
            return fields
    return {}


def _partition_sets(
    module: Module,
) -> Dict[str, Tuple[Optional[Set[str]], int]]:
    """``{set name: (elements or None if unanalysable, line)}``."""
    found: Dict[str, Tuple[Optional[Set[str]], int]] = {}
    for node in module.tree.body:
        targets = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
            value = node.value
        for name in targets:
            if name in PARTITION_SETS and value is not None:
                found[name] = (string_elements(value), node.lineno)
    return found


@register
class CacheKeyPartitionRule(Rule):
    """CACHE001: the config-field / cache-key partition must stay total."""

    code = "CACHE001"
    summary = (
        "every SpiderMineConfig field must appear in exactly one of the "
        "cache-key partitions declared in catalog/formats.py"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        config_module = project.module(CONFIG_MODULE)
        formats_module = project.module(FORMATS_MODULE)
        if config_module is None or formats_module is None:
            # Linting a subset that excludes either side: nothing to check.
            return
        fields = _config_fields(config_module)
        if not fields:
            return
        declared = _partition_sets(formats_module)

        partitions: Dict[str, Set[str]] = {}
        for set_name in PARTITION_SETS:
            if set_name not in declared:
                yield self.at(
                    formats_module,
                    1,
                    f"partition set {set_name} is not declared; the "
                    f"cache-key classification of config fields is "
                    f"incomplete without it",
                )
                continue
            elements, line = declared[set_name]
            if elements is None:
                yield self.at(
                    formats_module,
                    line,
                    f"partition set {set_name} is not a literal "
                    f"set/frozenset of field-name strings, so the "
                    f"classification cannot be checked statically",
                )
                continue
            partitions[set_name] = elements

        for field_name, line in sorted(fields.items()):
            homes = sorted(
                name for name, members in partitions.items() if field_name in members
            )
            if not homes and len(partitions) == len(PARTITION_SETS):
                yield self.at(
                    config_module,
                    line,
                    f"config field {field_name!r} is not classified in any "
                    f"cache-key partition; add it to STAGE1_CONFIG_FIELDS, "
                    f"STAGE2_ONLY_CONFIG_FIELDS or "
                    f"_RESULT_NEUTRAL_CONFIG_FIELDS in catalog/formats.py",
                )
            elif len(homes) > 1:
                yield self.at(
                    config_module,
                    line,
                    f"config field {field_name!r} appears in "
                    f"{len(homes)} partitions ({', '.join(homes)}); the "
                    f"classification must be disjoint",
                )

        for set_name, members in sorted(partitions.items()):
            _, line = declared[set_name]
            for member in sorted(members - set(fields)):
                yield self.at(
                    formats_module,
                    line,
                    f"partition set {set_name} names {member!r}, which is "
                    f"not a field of {CONFIG_CLASS} — stale entry",
                )
