"""AST helpers shared by the shipped rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

__all__ = [
    "call_name",
    "dotted_name",
    "iter_assigned_names",
    "node_mentions",
    "string_elements",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The dotted callee name of a call, if statically nameable."""
    return dotted_name(call.func)


def iter_assigned_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from iter_assigned_names(element)


def node_mentions(node: ast.AST, names: Set[str], attrs: Set[str]) -> bool:
    """Whether ``node`` references any of the plain ``names`` or ``.attrs``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in names:
            return True
        if isinstance(child, ast.Attribute) and child.attr in attrs:
            return True
    return False


def string_elements(node: ast.AST) -> Optional[Set[str]]:
    """The string constants of a set/frozenset/tuple/list literal expression.

    Handles ``frozenset({...})`` / ``frozenset([...])`` / ``frozenset((...))``
    wrappers and bare literals.  ``None`` when the expression holds anything
    that is not a string constant (the caller reports it as unanalysable).
    """
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("frozenset", "set") and len(node.args) == 1:
            return string_elements(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: Set[str] = set()
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.add(element.value)
            else:
                return None
        return out
    return None
