"""The shipped rules.  Importing this package registers every rule.

One module per contract family:

* :mod:`.determinism` — DET001 (unordered iteration on the determinism
  surface), DET002 (banned nondeterminism sources in result-affecting code)
* :mod:`.cachekey` — CACHE001 (the config-field cache-key partition)
* :mod:`.obs` — OBS001 (telemetry neutrality: no config knowledge in
  ``repro.obs``, ``registry.enabled`` cheap-check at hot call sites)
* :mod:`.locks` — LOCK001 (lock-owned state mutated only under the lock,
  no blocking calls while holding it)
* :mod:`.kernels` — KERN001 (numpy confined to ``graph/kernels.py``,
  kernel dispatch guarded by ``numpy_available()``)
"""

from . import cachekey, determinism, kernels, locks, obs  # noqa: F401
