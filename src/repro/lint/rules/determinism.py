"""DET001 / DET002 — the determinism-surface contracts.

The mining pipeline's headline guarantee is bit-identical digests across
backends, worker counts and cache hits.  Two code patterns can silently break
it:

* iterating an unordered ``set``/``frozenset`` where the iteration order
  reaches canonical output (DET001) — element order follows element hashes,
  which for strings change per interpreter under hash randomisation;
* drawing from a wall clock or an unseeded entropy source inside
  result-affecting code (DET002).

Monotonic timers (``time.monotonic`` / ``time.perf_counter``) stay legal:
they feed only ``runtime_seconds``-style fields, which the digest machinery
(:func:`repro.catalog.formats.result_digest`) strips.  Seeded RNGs
(``random.Random(seed)``) stay legal for the same reason the paper's seed
draw is reproducible.  ``hash()`` and ``id()`` are banned outright in
result-affecting modules: both are process-dependent, and the repo's history
has a fixed bug for each (`id`-keyed memoisation is fine in the *cache*
layer, which is result-neutral and out of this rule's scope).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..base import Rule, register
from ..diagnostics import Diagnostic
from ..project import Module, Project
from ._util import call_name, iter_assigned_names

#: Where set-iteration order can reach canonical output: the canonicaliser,
#: the on-disk formats, and the Stage-I mine/merge paths whose ordering *is*
#: the serial==parallel contract.
DETERMINISM_SURFACE = (
    "repro/graph/canonical.py",
    "repro/catalog/formats.py",
    "repro/parallel/driver.py",
    "repro/core/spider_miner.py",
    "repro/patterns/spider.py",
)

#: Modules whose behaviour reaches mining results (and therefore digests).
#: The catalog/serving/obs layers are result-neutral by design and excluded.
RESULT_AFFECTING = (
    "repro/core/",
    "repro/patterns/",
    "repro/graph/",
    "repro/parallel/driver.py",
)

#: Methods known to return unordered sets in this codebase.
_SET_RETURNING_METHODS = {
    "neighbors",          # GraphView.neighbors -> frozenset
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
}

#: Callables that consume an iterable order-insensitively — feeding them a
#: set is fine, the result cannot leak iteration order.
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len",
    "Counter", "collections.Counter",
}


def _is_set_like(node: ast.AST, set_names: Set[str]) -> bool:
    """Whether ``node`` statically evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in _SET_RETURNING_METHODS
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_like(node.left, set_names) or _is_set_like(
            node.right, set_names
        )
    return False


def _set_bound_names(scope: ast.AST) -> Set[str]:
    """Names bound to set-like values anywhere in ``scope`` (one level deep).

    Deliberately flow-insensitive: a name that is *ever* a set in the scope is
    treated as a set at every use — rebinding a set name to a list mid-scope
    is exactly the kind of cleverness the determinism surface should not host.
    """
    names: Set[str] = set()
    for node in ast.walk(scope):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value: Optional[ast.AST] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if _is_set_like(value, names):
            for target in targets:
                names.update(iter_assigned_names(target))
    return names


@register
class UnorderedIterationRule(Rule):
    """DET001: set iteration feeding the determinism surface lacks sorted()."""

    code = "DET001"
    summary = (
        "unordered set/frozenset iteration on the determinism surface "
        "must go through sorted() (or an order-insensitive consumer)"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for module in project.in_scope(DETERMINISM_SURFACE):
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Diagnostic]:
        scopes: Dict[int, Set[str]] = {}

        def set_names_for(node: ast.AST) -> Set[str]:
            function = module.enclosing_function(node) or module.tree
            key = id(function)
            if key not in scopes:
                scopes[key] = _set_bound_names(function)
            return scopes[key]

        for node in module.walk():
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_like(node.iter, set_names_for(node)):
                    yield self.diagnostic(
                        module,
                        node.iter,
                        "for-loop iterates an unordered set; iteration order "
                        "reaches the determinism surface — wrap in sorted()",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if self._consumer_is_order_insensitive(module, node):
                    continue
                for generator in node.generators:
                    if _is_set_like(generator.iter, set_names_for(node)):
                        yield self.diagnostic(
                            module,
                            generator.iter,
                            "comprehension iterates an unordered set into an "
                            "order-sensitive result — wrap in sorted()",
                        )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                is_join = (
                    isinstance(node.func, ast.Attribute) and node.func.attr == "join"
                )
                if (name in ("list", "tuple", "enumerate") or is_join) and node.args:
                    if _is_set_like(node.args[0], set_names_for(node)):
                        if not self._consumer_is_order_insensitive(module, node):
                            yield self.diagnostic(
                                module,
                                node.args[0],
                                "materialising an unordered set in "
                                "iteration order — wrap in sorted()",
                            )

    @staticmethod
    def _consumer_is_order_insensitive(module: Module, node: ast.AST) -> bool:
        """Whether the nearest consuming call absorbs iteration order."""
        parent = module.parent(node)
        if isinstance(parent, ast.Call) and node in parent.args:
            name = call_name(parent)
            if name in _ORDER_INSENSITIVE_CONSUMERS:
                return True
            if isinstance(parent.func, ast.Attribute) and parent.func.attr == "join":
                return False
        return False


@register
class NondeterminismSourceRule(Rule):
    """DET002: banned nondeterminism sources in result-affecting modules."""

    code = "DET002"
    summary = (
        "wall clocks, unseeded RNGs, os entropy, hash() and id() are "
        "banned in result-affecting modules"
    )

    _BANNED_EXACT = {
        "time.time": "wall-clock time.time() is nondeterministic; use a "
                     "monotonic timer for durations (digest-stripped) or "
                     "thread a value in",
        "time.time_ns": "wall-clock time.time_ns() is nondeterministic",
        "os.urandom": "os.urandom() draws OS entropy; results become "
                      "irreproducible",
    }
    _BANNED_SUFFIX = {
        "datetime.now": "datetime.now() is wall-clock-dependent",
        "datetime.utcnow": "datetime.utcnow() is wall-clock-dependent",
        "datetime.today": "datetime.today() is wall-clock-dependent",
        "date.today": "date.today() is wall-clock-dependent",
        "uuid.uuid1": "uuid1() mixes clock and MAC address",
        "uuid.uuid4": "uuid4() draws OS entropy",
    }

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for module in project.in_scope(RESULT_AFFECTING):
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Diagnostic]:
        random_aliases = self._random_module_aliases(module)
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            diagnosis = self._diagnose(name, random_aliases)
            if diagnosis is not None:
                yield self.diagnostic(module, node, diagnosis)

    def _diagnose(self, name: str, random_aliases: Set[str]) -> Optional[str]:
        if name in self._BANNED_EXACT:
            return self._BANNED_EXACT[name]
        for suffix, message in self._BANNED_SUFFIX.items():
            if name == suffix or name.endswith(f".{suffix}"):
                return message
        if name.startswith("secrets."):
            return "the secrets module draws OS entropy; results become " \
                   "irreproducible"
        root, _, rest = name.partition(".")
        if root in random_aliases and rest and rest != "Random":
            return (
                f"module-level random.{rest}() uses the shared unseeded RNG; "
                "construct random.Random(seed) and thread it through"
            )
        if name == "hash":
            return (
                "hash() is process-dependent for str keys (hash "
                "randomisation); key on the value itself or a canonical code"
            )
        if name == "id":
            return (
                "id() is process-dependent; keying or ordering by object "
                "identity breaks cross-process determinism"
            )
        return None

    @staticmethod
    def _random_module_aliases(module: Module) -> Set[str]:
        aliases: Set[str] = set()
        for node in module.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
        return aliases
