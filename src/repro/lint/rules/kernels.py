"""KERN001 — the numpy kernel layer's confinement and dispatch contract.

Two statically checkable halves of PR 6's design:

* ``import numpy`` appears in exactly one module, ``repro/graph/kernels.py``.
  Everything else consumes numpy through the kernel functions, which is what
  keeps the package importable (and minable, slower) without numpy at all;
* every call of a kernel entry point outside ``kernels.py`` is *reachable
  only behind* a ``numpy_available()`` guard, so the scalar fallback branch
  always exists.  Guardedness is resolved transitively: a call is guarded if
  an enclosing ``if``/``while`` tests ``numpy_available()`` or a value
  derived from it (``self._use_kernels = ... and kernels.numpy_available()``),
  **or** if every call site of the enclosing function is itself guarded —
  which is how dedicated kernel-path helpers
  (``SubgraphMatcher._build_domains_csr_numpy``, ``FrozenGraph.csr_numpy``)
  stay legal without repeating the guard inside.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..base import Rule, register
from ..diagnostics import Diagnostic
from ..project import Module, Project

KERNELS_MODULE = "repro/graph/kernels.py"

#: The kernel entry points whose call sites must sit behind the guard.
#: ``csr_numpy`` / ``label_members_np`` are the FrozenGraph views feeding
#: them — calling either without numpy raises, so they share the contract.
KERNEL_CALLS = {
    "seed_domain",
    "ac_filter",
    "in_sorted",
    "intersect_sorted",
    "filter_rows",
    "merge_postings",
    "as_index_array",
    "csr_numpy",
    "label_members_np",
}

GUARD_FUNCTION = "numpy_available"


def _simple_callee(call: ast.Call) -> Optional[str]:
    """The last component of the callee name (``kernels.ac_filter`` → ``ac_filter``)."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _contains_guard_call(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and _simple_callee(child) == GUARD_FUNCTION:
            return True
    return False


@register
class KernelDispatchRule(Rule):
    """KERN001: numpy confined to kernels.py; dispatch behind the guard."""

    code = "KERN001"
    summary = (
        "`import numpy` only in graph/kernels.py; kernel calls must be "
        "reachable only behind numpy_available() with a scalar fallback"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        yield from self._check_import_confinement(project)
        yield from self._check_guarded_dispatch(project)

    # ------------------------------------------------------------------ #
    # half one: import confinement
    # ------------------------------------------------------------------ #
    def _check_import_confinement(self, project: Project) -> Iterator[Diagnostic]:
        for module in project.modules:
            if module.matches([KERNELS_MODULE]):
                continue
            for node in module.walk():
                imported: List[str] = []
                if isinstance(node, ast.Import):
                    imported = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom) and node.module is not None:
                    imported = [node.module]
                if any(name == "numpy" or name.startswith("numpy.") for name in imported):
                    yield self.diagnostic(
                        module,
                        node,
                        "`import numpy` is confined to repro/graph/kernels.py; "
                        "consume the vectorized path through the kernel "
                        "functions so the scalar fallback stays total",
                    )

    # ------------------------------------------------------------------ #
    # half two: guarded dispatch
    # ------------------------------------------------------------------ #
    def _check_guarded_dispatch(self, project: Project) -> Iterator[Diagnostic]:
        guard_names = self._guard_derived_names(project)
        memo: Dict[int, Optional[bool]] = {}

        for module in project.modules:
            if module.matches([KERNELS_MODULE]):
                continue
            for node in module.walk():
                if not isinstance(node, ast.Call):
                    continue
                callee = _simple_callee(node)
                if callee not in KERNEL_CALLS:
                    continue
                if not self._call_guarded(project, module, node, guard_names, memo):
                    yield self.diagnostic(
                        module,
                        node,
                        f"kernel call {callee}() is reachable without a "
                        f"numpy_available() guard; dispatch must branch on "
                        f"the guard and keep a scalar fallback",
                    )

    @staticmethod
    def _guard_derived_names(project: Project) -> Set[str]:
        """Names/attrs assigned from an expression containing the guard call."""
        names: Set[str] = {GUARD_FUNCTION, "HAVE_NUMPY"}
        for module in project.modules:
            for node in module.walk():
                value = None
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, list(node.targets)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value, targets = node.value, [node.target]
                if value is None or not _contains_guard_call(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        names.add(target.attr)
        return names

    def _call_guarded(
        self,
        project: Project,
        module: Module,
        call: ast.Call,
        guard_names: Set[str],
        memo: Dict[int, Optional[bool]],
    ) -> bool:
        if self._locally_guarded(module, call, guard_names):
            return True
        function = module.enclosing_function(call)
        if function is None:
            return False  # module level: nothing can have guarded it
        return self._function_protected(project, function, guard_names, memo)

    def _function_protected(
        self,
        project: Project,
        function: ast.AST,
        guard_names: Set[str],
        memo: Dict[int, Optional[bool]],
    ) -> bool:
        """Whether every call site of ``function`` is guarded (transitively)."""
        key = id(function)
        cached = memo.get(key, "absent")
        if cached != "absent":
            # ``None`` marks in-progress: a call cycle proves nothing, so it
            # conservatively counts as unguarded.
            return bool(cached)
        memo[key] = None
        call_sites = self._call_sites_of(project, function.name)
        protected = bool(call_sites)
        for site_module, site_call in call_sites:
            if self._locally_guarded(site_module, site_call, guard_names):
                continue
            site_function = site_module.enclosing_function(site_call)
            if site_function is None or not self._function_protected(
                project, site_function, guard_names, memo
            ):
                protected = False
                break
        memo[key] = protected
        return protected

    @staticmethod
    def _call_sites_of(project: Project, name: str) -> List[Tuple[Module, ast.Call]]:
        sites: List[Tuple[Module, ast.Call]] = []
        for module in project.modules:
            if module.matches([KERNELS_MODULE]):
                continue
            for node in module.walk():
                if isinstance(node, ast.Call) and _simple_callee(node) == name:
                    sites.append((module, node))
        return sites

    @staticmethod
    def _locally_guarded(
        module: Module, call: ast.Call, guard_names: Set[str]
    ) -> bool:
        """An enclosing if/while/assert in the same function tests the guard."""

        def mentions_guard(node: ast.AST) -> bool:
            for child in ast.walk(node):
                if isinstance(child, ast.Name) and child.id in guard_names:
                    return True
                if isinstance(child, ast.Attribute) and child.attr in guard_names:
                    return True
            return False

        function = module.enclosing_function(call)
        for ancestor in module.ancestors(call):
            if ancestor is function:
                break
            if isinstance(ancestor, (ast.If, ast.While, ast.IfExp)):
                if mentions_guard(ancestor.test):
                    return True
            elif isinstance(ancestor, ast.BoolOp) and mentions_guard(ancestor):
                return True
        if function is None:
            return False
        # Early-raise/-return spelling before the call, at body top level.
        for statement in function.body:
            if statement.lineno >= call.lineno:
                break
            if (
                isinstance(statement, ast.If)
                and mentions_guard(statement.test)
                and any(
                    isinstance(s, (ast.Return, ast.Raise)) for s in statement.body
                )
            ):
                return True
        return False
