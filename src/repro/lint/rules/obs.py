"""OBS001 — telemetry neutrality, statically.

Two halves of one contract (PR 8's headline guarantee: telemetry can never
move a cache key or a mining result):

* nothing under ``repro/obs/`` may import or reference ``SpiderMineConfig``
  (or the ``repro.core.config`` module at all).  The registry and tracer live
  in process-local globals precisely so the config — and with it every cache
  key — cannot see them; an import in the other direction would be the first
  step of the coupling this forbids;
* hot-path instrumentation must use the documented cheap-check idiom::

      registry = get_registry()
      if registry.enabled:
          registry.counter("...")

  so that disabled telemetry costs one attribute check.  A bare
  ``get_registry().counter(...)`` is a no-op when off, but it still pays the
  call and argument construction on every hot iteration — the idiom is the
  budget, not just style.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..base import Rule, register
from ..diagnostics import Diagnostic
from ..project import Module, Project

OBS_PACKAGE = "repro/obs/"
CONFIG_CLASS = "SpiderMineConfig"

#: Metric-recording methods whose hot-path call sites need the cheap check.
METRIC_METHODS = {"counter", "gauge", "observe", "publish", "merge_counters"}


def _mentions_enabled(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "enabled":
            return True
        if isinstance(child, ast.Name) and child.id == "enabled":
            return True
    return False


@register
class TelemetryNeutralityRule(Rule):
    """OBS001: obs stays config-blind; instrumentation uses the cheap check."""

    code = "OBS001"
    summary = (
        "repro.obs must not reference SpiderMineConfig, and registry "
        "call sites must guard with `if registry.enabled:`"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for module in project.modules:
            if module.matches([OBS_PACKAGE]):
                yield from self._check_obs_module(module)
            else:
                yield from self._check_instrumentation(module)

    # ------------------------------------------------------------------ #
    # half one: the obs package is config-blind
    # ------------------------------------------------------------------ #
    def _check_obs_module(self, module: Module) -> Iterator[Diagnostic]:
        for node in module.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if "core.config" in alias.name:
                        yield self.diagnostic(
                            module,
                            node,
                            "repro.obs must not import the config module; "
                            "telemetry is result-neutral by construction",
                        )
            elif isinstance(node, ast.ImportFrom):
                from_config = node.module is not None and node.module.endswith(
                    "core.config"
                )
                names = {alias.name for alias in node.names}
                if from_config or CONFIG_CLASS in names:
                    yield self.diagnostic(
                        module,
                        node,
                        f"repro.obs must not import {CONFIG_CLASS}; the "
                        f"registry/tracer live in process globals so cache "
                        f"keys cannot move",
                    )
            elif isinstance(node, ast.Name) and node.id == CONFIG_CLASS:
                yield self.diagnostic(
                    module,
                    node,
                    f"repro.obs must not reference {CONFIG_CLASS}",
                )
            elif isinstance(node, ast.Attribute) and node.attr == CONFIG_CLASS:
                yield self.diagnostic(
                    module,
                    node,
                    f"repro.obs must not reference {CONFIG_CLASS}",
                )

    # ------------------------------------------------------------------ #
    # half two: the registry.enabled cheap check
    # ------------------------------------------------------------------ #
    def _check_instrumentation(self, module: Module) -> Iterator[Diagnostic]:
        for function in module.walk():
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            registry_names = self._registry_locals(function)
            if not registry_names:
                continue
            for node in ast.walk(function):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in METRIC_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in registry_names
                ):
                    continue
                if module.enclosing_function(node) is not function:
                    continue  # a nested def has its own budget
                if not self._is_guarded(module, function, node):
                    yield self.diagnostic(
                        module,
                        node,
                        f"registry.{node.func.attr}() on the process "
                        f"registry without the `if registry.enabled:` cheap "
                        f"check — disabled telemetry must cost one attribute "
                        f"load",
                    )

    @staticmethod
    def _registry_locals(function: ast.AST) -> Set[str]:
        """Names bound from ``get_registry()`` inside ``function``."""
        names: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = node.value.func
                callee_name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute)
                    else None
                )
                if callee_name == "get_registry":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    @staticmethod
    def _is_guarded(module: Module, function: ast.AST, call: ast.Call) -> bool:
        for ancestor in module.ancestors(call):
            if ancestor is function:
                break
            if isinstance(ancestor, (ast.If, ast.IfExp, ast.While)):
                if _mentions_enabled(ancestor.test):
                    return True
            elif isinstance(ancestor, ast.BoolOp) and _mentions_enabled(ancestor):
                return True
        # Early-return spelling: `if not registry.enabled: return` before the
        # call, directly in the function body.
        for statement in function.body:
            if statement.lineno >= call.lineno:
                break
            if (
                isinstance(statement, ast.If)
                and _mentions_enabled(statement.test)
                and any(isinstance(s, (ast.Return, ast.Raise)) for s in statement.body)
            ):
                return True
        return False
