"""LOCK001 — lock discipline for shared mutable state.

Applies to any class that owns a ``self._lock`` (``MetricsRegistry``,
``LRUCache``, and whatever the serving tier grows next).  The discipline has
two sides:

* **Mutate only under the lock.**  An attribute the class ever mutates inside
  a ``with self._lock:`` block is *lock-owned*; mutating it anywhere else
  (``__init__`` excepted — construction happens-before sharing) is a data
  race waiting for a second thread.
* **Never block while holding it.**  File I/O, sleeps, matcher searches and
  payload loads under the lock turn every other thread's one-dict-update
  critical section into a stall; the codebase's pattern (see
  ``LRUCache.get_or_build``) is to drop the lock, do the slow work, then
  re-take it to publish.

The rule derives the lock-owned attribute set from the class's own usage
rather than a hand-list, so it follows refactors without edits.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..base import Rule, register
from ..diagnostics import Diagnostic
from ..project import Module, Project
from ._util import call_name

LOCK_ATTR = "_lock"

#: Method names whose call mutates the receiver in place.
_MUTATORS = {
    "add", "append", "extend", "insert", "pop", "popitem", "remove",
    "discard", "clear", "update", "setdefault", "move_to_end",
}

#: Calls that block (I/O, sleeps) or do unbounded CPU work (matcher search,
#: payload materialisation) — never legal while a lock is held.
_BLOCKING_NAME_CALLS = {"open", "print", "input"}
_BLOCKING_METHOD_CALLS = {
    "sleep", "read", "write", "readline", "readlines", "recv", "send",
    "find_embeddings", "get_run_payload", "load_pattern", "mine",
    "contains", "contains_batch",
}


def _is_lock_with(node: ast.AST) -> bool:
    """Whether ``node`` is a ``with self._lock:`` (or ``with _lock:``) block."""
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute) and expr.attr == LOCK_ATTR:
            return True
        if isinstance(expr, ast.Name) and expr.id == LOCK_ATTR:
            return True
    return False


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """The ``self.X`` attribute a store/mutation target roots at, if any."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutations(scope: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """``(attr, node)`` for every ``self.X`` mutation inside ``scope``."""
    for node in ast.walk(scope):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _self_attr_target(target)
                if attr is not None:
                    yield attr, node
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            attr = _self_attr_target(node.target)
            if attr is not None:
                yield attr, node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            attr = _self_attr_target(node.func.value)
            if attr is not None:
                yield attr, node


@register
class LockDisciplineRule(Rule):
    """LOCK001: lock-owned attrs mutate under the lock; no blocking inside."""

    code = "LOCK001"
    summary = (
        "attributes mutated under `with self._lock:` must always be; "
        "no blocking call may run while the lock is held"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for module in project.modules:
            yield from self._check_lock_owned_attrs(module)
            yield from self._check_blocking_under_lock(module)

    # ------------------------------------------------------------------ #
    # side one: lock-owned attributes
    # ------------------------------------------------------------------ #
    def _check_lock_owned_attrs(self, module: Module) -> Iterator[Diagnostic]:
        for class_def in module.walk():
            if not isinstance(class_def, ast.ClassDef):
                continue
            if not self._owns_lock(class_def):
                continue
            owned = self._lock_owned_attrs(module, class_def)
            if not owned:
                continue
            for attr, node in _mutations(class_def):
                if attr not in owned or attr == LOCK_ATTR:
                    continue
                function = module.enclosing_function(node)
                if function is not None and function.name == "__init__":
                    continue  # construction happens-before sharing
                if self._under_lock(module, node):
                    continue
                yield self.diagnostic(
                    module,
                    node,
                    f"{class_def.name}.{attr} is lock-owned (mutated under "
                    f"`with self.{LOCK_ATTR}:` elsewhere) but is mutated "
                    f"here without the lock",
                )

    @staticmethod
    def _owns_lock(class_def: ast.ClassDef) -> bool:
        for node in ast.walk(class_def):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if _self_attr_target(target) == LOCK_ATTR:
                        return True
        return False

    @staticmethod
    def _lock_owned_attrs(module: Module, class_def: ast.ClassDef) -> Set[str]:
        owned: Set[str] = set()
        for attr, node in _mutations(class_def):
            if attr != LOCK_ATTR and LockDisciplineRule._under_lock(module, node):
                owned.add(attr)
        return owned

    @staticmethod
    def _under_lock(module: Module, node: ast.AST) -> bool:
        enclosing = module.enclosing_function(node)
        for ancestor in module.ancestors(node):
            if _is_lock_with(ancestor):
                # The with-block must belong to the same function: a nested
                # def executes later, when the lock may be long released.
                return module.enclosing_function(ancestor) is enclosing
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False

    # ------------------------------------------------------------------ #
    # side two: nothing blocking while the lock is held
    # ------------------------------------------------------------------ #
    def _check_blocking_under_lock(self, module: Module) -> Iterator[Diagnostic]:
        lock_withs: List[ast.AST] = [n for n in module.walk() if _is_lock_with(n)]
        for with_node in lock_withs:
            with_function = module.enclosing_function(with_node)
            for node in ast.walk(with_node):
                if not isinstance(node, ast.Call):
                    continue
                if module.enclosing_function(node) is not with_function:
                    continue  # inside a nested def: runs after release
                name = call_name(node)
                blocking = (
                    name in _BLOCKING_NAME_CALLS
                    or (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in _BLOCKING_METHOD_CALLS
                    )
                )
                if blocking:
                    what = name or node.func.attr
                    yield self.diagnostic(
                        module,
                        node,
                        f"blocking call {what}() while holding "
                        f"self.{LOCK_ATTR}; drop the lock, do the slow work, "
                        f"re-take it to publish (see LRUCache.get_or_build)",
                    )
