"""Run configuration: which rules run (``--select`` / ``--ignore``).

Selectors are code prefixes, case-insensitive: ``DET`` selects ``DET001`` and
``DET002``; ``DET001`` selects exactly itself.  ``ignore`` is applied after
``select``, mirroring ruff's semantics, so ``--select DET --ignore DET002``
runs only ``DET001``.  Unknown selectors are an error (a typo that silently
selected nothing would green-light the gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["LintConfig"]


def _normalise(codes: Sequence[str]) -> Tuple[str, ...]:
    out: List[str] = []
    for chunk in codes:
        out.extend(c.strip().upper() for c in chunk.split(",") if c.strip())
    return tuple(out)


@dataclass(frozen=True)
class LintConfig:
    """Rule filtering for one lint run."""

    select: Tuple[str, ...] = field(default_factory=tuple)
    """Code prefixes to run; empty means every registered rule."""

    ignore: Tuple[str, ...] = field(default_factory=tuple)
    """Code prefixes to drop after selection."""

    @classmethod
    def from_options(
        cls,
        select: Sequence[str] = (),
        ignore: Sequence[str] = (),
    ) -> "LintConfig":
        return cls(select=_normalise(select), ignore=_normalise(ignore))

    def enabled(self, code: str) -> bool:
        code = code.upper()
        if self.select and not any(code.startswith(prefix) for prefix in self.select):
            return False
        return not any(code.startswith(prefix) for prefix in self.ignore)

    def validate(self, known_codes: Sequence[str]) -> None:
        """Reject selectors that match no registered rule."""
        for prefix in (*self.select, *self.ignore):
            if not any(code.startswith(prefix) for code in known_codes):
                raise ValueError(
                    f"selector {prefix!r} matches no registered rule "
                    f"(known: {', '.join(sorted(known_codes))})"
                )
