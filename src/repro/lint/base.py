"""The rule contract and the process-wide rule registry.

A rule is a class with a ``code`` (``DET001``), a one-line ``summary`` and a
``check(project)`` generator yielding :class:`~repro.lint.diagnostics.Diagnostic`.
Rules see the whole :class:`~repro.lint.project.Project`, not one file at a
time: several contracts are inherently cross-module (the cache-key partition
spans ``core/config.py`` and ``catalog/formats.py``; kernel-dispatch guards
resolve across call sites in other files).

Registration is import-time (``@register`` in ``repro.lint.rules``); the
engine asks :func:`all_rules` for the selected set.  Codes are unique —
re-registering a code is a programming error and raises immediately.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Type

from .diagnostics import Diagnostic
from .project import Module, Project

__all__ = ["Rule", "register", "all_rules", "get_rule"]

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class: subclass, set ``code``/``summary``, implement ``check``."""

    code: str = ""
    summary: str = ""

    def check(self, project: Project) -> Iterator[Diagnostic]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # emission helper
    # ------------------------------------------------------------------ #
    def diagnostic(self, module: Module, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=module.qualpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )

    def at(self, module: Module, line: int, message: str, column: int = 0) -> Diagnostic:
        return Diagnostic(
            path=module.qualpath,
            line=line,
            column=column,
            code=self.code,
            message=message,
        )


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (codes are unique)."""
    code = rule_class.code
    if not code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"rule code {code} registered twice")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    from . import rules  # noqa: F401  - importing registers the shipped rules

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Optional[Rule]:
    from . import rules  # noqa: F401

    rule_class = _REGISTRY.get(code.upper())
    return rule_class() if rule_class is not None else None
