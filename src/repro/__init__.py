"""SpiderMine reproduction: mining top-K large structural patterns in a massive network.

This package is a from-scratch Python reproduction of

    Feida Zhu, Qiang Qu, David Lo, Xifeng Yan, Jiawei Han, Philip S. Yu.
    "Mining Top-K Large Structural Patterns in a Massive Network."
    PVLDB 4(11): 807-818, 2011.

Quickstart
----------
>>> from repro import mine_top_k_patterns
>>> from repro.graph import synthetic_single_graph
>>> data = synthetic_single_graph(
...     num_vertices=300, num_labels=50, average_degree=2.0,
...     num_large_patterns=2, large_pattern_vertices=15, large_pattern_support=2,
...     num_small_patterns=3, small_pattern_vertices=3, small_pattern_support=2,
...     seed=7,
... )
>>> result = mine_top_k_patterns(data.graph, min_support=2, k=5, d_max=8)
>>> len(result.patterns) <= 5
True

Sub-packages
------------
``repro.graph``        labeled-graph substrate (graphs, isomorphism, generators)
``repro.patterns``     patterns, embeddings, support measures, spiders
``repro.core``         SpiderMine itself
``repro.parallel``     execution policies + shared-memory process-pool mining
``repro.baselines``    SUBDUE, SEuS, MoSS, GREW, ORIGAMI, gSpan reimplementations
``repro.transaction``  graph-transaction setting
``repro.datasets``     the paper's synthetic datasets + DBLP/Jeti stand-ins
``repro.analysis``     distributions, reports, experiment harness
"""

from .core import (
    MiningResult,
    MiningStatistics,
    SpiderMine,
    SpiderMineConfig,
    mine_top_k_patterns,
)
from .parallel import ExecutionPolicy
from .patterns import Pattern, SupportMeasure
from .graph import FrozenGraph, GraphView, LabeledGraph, freeze, thaw

__version__ = "1.2.0"

__all__ = [
    "MiningResult",
    "MiningStatistics",
    "SpiderMine",
    "SpiderMineConfig",
    "ExecutionPolicy",
    "mine_top_k_patterns",
    "Pattern",
    "SupportMeasure",
    "LabeledGraph",
    "FrozenGraph",
    "GraphView",
    "freeze",
    "thaw",
    "__version__",
]
