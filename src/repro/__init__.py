"""SpiderMine reproduction: mining top-K large structural patterns in a massive network.

This package is a from-scratch Python reproduction of

    Feida Zhu, Qiang Qu, David Lo, Xifeng Yan, Jiawei Han, Philip S. Yu.
    "Mining Top-K Large Structural Patterns in a Massive Network."
    PVLDB 4(11): 807-818, 2011.

Quickstart
----------
The stable entry points live in :mod:`repro.api` (re-exported here): ``mine``
to run SpiderMine, ``open_catalog`` to query or serve stored results, and
``load_graph``/``save_graph`` for single-graph file I/O.

>>> import repro
>>> from repro.graph import synthetic_single_graph
>>> data = synthetic_single_graph(
...     num_vertices=300, num_labels=50, average_degree=2.0,
...     num_large_patterns=2, large_pattern_vertices=15, large_pattern_support=2,
...     num_small_patterns=3, small_pattern_vertices=3, small_pattern_support=2,
...     seed=7,
... )
>>> result = repro.mine(data.graph, min_support=2, k=5, d_max=8,
...                     catalog="./catalog")          # doctest: +SKIP
>>> catalog = repro.open_catalog("./catalog")        # doctest: +SKIP
>>> best = catalog.top_k(k=3, by="vertices")         # doctest: +SKIP
>>> hits = catalog.contains_batch([needle1, needle2])  # doctest: +SKIP
>>> catalog.serve(port=8080)  # HTTP: /runs /top-k /label /contains[/batch]
...                                                  # doctest: +SKIP

The serving tier meters itself — ``GET /metrics`` is a flat ``name →
number`` dump of per-endpoint request counts and latency histograms
(``GET /stats`` adds the registry snapshot, LRU cache stats and uptime)::

    $ curl -s http://127.0.0.1:8080/metrics
    {"http.latency_seconds.top_k.count":3, ..., "http.requests.top_k":3}

Mining publishes into the same telemetry layer (:mod:`repro.obs`) when
asked: ``repro mine ... --telemetry`` prints a per-stage phase-time table
and persists a run-telemetry sidecar next to the cached result — with
bit-identical mining output, telemetry on or off.

Without a catalog, mining alone needs no filesystem at all:

>>> result = repro.mine(data.graph, min_support=2, k=5, d_max=8)
>>> len(result.patterns) <= 5
True

Sub-packages
------------
``repro.graph``        labeled-graph substrate (graphs, isomorphism, generators)
``repro.patterns``     patterns, embeddings, support measures, spiders
``repro.core``         SpiderMine itself
``repro.parallel``     execution policies + shared-memory process-pool mining
``repro.api``          the stable facade: mine / open_catalog / graph I/O
``repro.catalog``      persistent result store, run cache, query + HTTP serving tier
``repro.baselines``    SUBDUE, SEuS, MoSS, GREW, ORIGAMI, gSpan reimplementations
``repro.transaction``  graph-transaction setting
``repro.datasets``     the paper's synthetic datasets + DBLP/Jeti stand-ins
``repro.analysis``     distributions, reports, experiment harness
"""

import re as _re
from importlib import metadata as _metadata
from pathlib import Path as _Path

from .core import (
    CachePolicy,
    MiningResult,
    MiningStatistics,
    SpiderMine,
    SpiderMineConfig,
    mine_top_k_patterns,
)
from .parallel import ExecutionPolicy
from .patterns import Pattern, SupportMeasure
from .graph import FrozenGraph, GraphView, LabeledGraph, freeze, thaw
from .catalog import CatalogQuery, CatalogStore, PatternRecord, RunCache
from .api import Catalog, load_graph, mine, open_catalog, save_graph


def _detect_version() -> str:
    """The installed package version (single source of truth: pyproject).

    Falls back to parsing ``pyproject.toml`` for source checkouts that were
    never ``pip install``-ed (the test conftests only extend ``sys.path``).
    """
    try:
        return _metadata.version("spidermine-repro")
    except _metadata.PackageNotFoundError:
        pyproject = _Path(__file__).resolve().parents[2] / "pyproject.toml"
        try:
            text = pyproject.read_text(encoding="utf-8")
        except OSError:
            return "0+unknown"
        match = _re.search(r'^version\s*=\s*"([^"]+)"', text, _re.MULTILINE)
        return match.group(1) if match else "0+unknown"


__version__ = _detect_version()

__all__ = [
    # stable facade (repro.api)
    "Catalog",
    "mine",
    "open_catalog",
    "load_graph",
    "save_graph",
    # mining engine
    "MiningResult",
    "MiningStatistics",
    "SpiderMine",
    "SpiderMineConfig",
    "CachePolicy",
    "ExecutionPolicy",
    "mine_top_k_patterns",
    "Pattern",
    "SupportMeasure",
    # graph substrate
    "LabeledGraph",
    "FrozenGraph",
    "GraphView",
    "freeze",
    "thaw",
    # catalog internals (constructors may deprecate; prefer the facade)
    "CatalogStore",
    "CatalogQuery",
    "PatternRecord",
    "RunCache",
    "__version__",
]
