"""Command-line interface: ``spidermine`` / ``python -m repro``.

Sub-commands
------------
``mine``      run SpiderMine on a graph file (``.lg`` or ``.json``)
``generate``  generate one of the paper's synthetic datasets and save it
``compare``   run SpiderMine and the single-graph baselines on a dataset
``spiders``   run only Stage I and report the spider statistics
``catalog``   the persistent pattern catalog: ``ingest``/``list``/``query``/``gc``
``serve``     HTTP JSON API over a catalog (read-only; same answers as ``query``)

``catalog query`` and ``serve`` share one option set (``--top``/``--by``/
``--label``/``--run``/``--json``): what filters a one-shot query becomes the
server's defaults, so the two surfaces can never drift apart.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__
from .analysis import RuntimeTable, SizeDistributionComparison
from .api import open_catalog
from .baselines import run_seus, run_subdue
from .catalog import CatalogError, CatalogFormatError, CatalogStore
from .catalog.query import RANKINGS
from .core import CachePolicy, SpiderMine, SpiderMineConfig, mine_spiders
from .datasets import generate_gid
from .graph import GRAPH_BACKENDS, GraphView, io as graph_io
from .lint.cli import add_lint_arguments, run_from_args as _run_lint_from_args
from .obs import configure_logging, enable_metrics, enable_tracing, get_tracer
from .parallel import ExecutionPolicy


def _load_graph(path: str, backend: str = "csr") -> GraphView:
    """Load the first graph of ``path`` in the requested backend.

    ``backend="csr"`` (the mining default) freezes the graph into an
    immutable CSR snapshot; ``"dict"`` keeps the mutable builder.
    """
    p = Path(path)
    if not p.exists():
        raise SystemExit(f"error: graph file not found: {path}")
    frozen = backend == "csr"
    if p.suffix == ".json":
        graphs = graph_io.read_json(p, frozen=frozen)
    else:
        graphs = graph_io.read_lg(p, frozen=frozen)
    if not graphs:
        raise SystemExit(f"error: no graphs found in {path}")
    if len(graphs) > 1:
        print(f"note: {path} holds {len(graphs)} graphs; using the first", file=sys.stderr)
    return graphs[0]


def _execution_policy(args: argparse.Namespace) -> ExecutionPolicy:
    """Validate ``--workers`` up front and turn it into an execution policy.

    Failing here — with an actionable message and a non-zero exit — beats the
    opaque traceback a bad worker count would otherwise produce deep inside
    the process pool.
    """
    workers = getattr(args, "workers", 1)
    if workers < 1:
        raise SystemExit(
            f"error: --workers must be at least 1 (got {workers}); "
            "use --workers 1 for serial mining"
        )
    available = os.cpu_count() or 1
    if workers > available:
        raise SystemExit(
            f"error: --workers {workers} exceeds the {available} CPU(s) "
            "available on this machine; oversubscribing worker processes only "
            "adds scheduling overhead"
        )
    return ExecutionPolicy.process_pool(workers)


def _cache_policy(args: argparse.Namespace) -> CachePolicy:
    """The run-cache policy from ``--cache`` / ``--cache-mode`` (default off)."""
    directory = getattr(args, "cache", None)
    if directory is None:
        return CachePolicy.off()
    return CachePolicy.at(directory, mode=getattr(args, "cache_mode", "readwrite"))


def _cmd_mine(args: argparse.Namespace) -> int:
    execution = _execution_policy(args)
    if args.telemetry:
        # Telemetry never reaches the config (and so never the cache keys):
        # it lives in the process-local obs globals, provably result-neutral.
        enable_metrics()
        enable_tracing()
    graph = _load_graph(args.graph, backend=args.backend)
    config = SpiderMineConfig(
        min_support=args.support,
        k=args.k,
        d_max=args.dmax,
        epsilon=args.epsilon,
        radius=args.radius,
        seed=args.seed,
        execution=execution,
        cache=_cache_policy(args),
    )
    result = SpiderMine(graph, config).mine()
    if args.telemetry:
        from .analysis import phase_time_table

        print(phase_time_table(result, spans=get_tracer().roots()))
    if result.cache_info is not None:
        status = result.cache_info["status"]
        run_id = result.cache_info.get("run_id", "")
        detail = f" run {run_id[:12]}" if run_id else ""
        print(f"cache: {status}{detail} ({result.cache_info['store']})")
    print(result.summary())
    for index, pattern in enumerate(result.patterns, start=1):
        print(f"  #{index}: |V|={pattern.num_vertices} |E|={pattern.num_edges} "
              f"support={pattern.support}")
    if args.output:
        graph_io.write_json([p.graph for p in result.patterns], args.output)
        print(f"patterns written to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    data = generate_gid(args.gid, seed=args.seed, scale=args.scale)
    graph_io.write_lg([data.graph], args.output)
    planted = {
        "large_sizes": [p.pattern.num_vertices for p in data.large_patterns],
        "small_sizes": [p.pattern.num_vertices for p in data.small_patterns],
    }
    print(f"GID {args.gid}: |V|={data.graph.num_vertices} |E|={data.graph.num_edges} "
          f"written to {args.output}")
    print(json.dumps(planted))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    execution = _execution_policy(args)
    graph = _load_graph(args.graph, backend=args.backend)
    table = RuntimeTable()
    comparison = SizeDistributionComparison()

    config = SpiderMineConfig(
        min_support=args.support, k=args.k, d_max=args.dmax, seed=args.seed, execution=execution
    )
    spidermine_result = SpiderMine(graph, config).mine()
    table.record_result("input", spidermine_result)
    comparison.add(spidermine_result)

    subdue_result = run_subdue(graph, num_best=args.k)
    table.record_result("input", subdue_result)
    comparison.add(subdue_result)

    seus_result = run_seus(graph, min_support=args.support)
    table.record_result("input", seus_result)
    comparison.add(seus_result)

    print(comparison.to_text())
    print()
    print(table.to_text())
    return 0


def _cmd_spiders(args: argparse.Namespace) -> int:
    execution = _execution_policy(args)
    graph = _load_graph(args.graph, backend=args.backend)
    spiders = mine_spiders(
        graph,
        min_support=args.support,
        radius=args.radius,
        max_spider_size=args.max_size,
        execution=execution,
    )
    print(f"{len(spiders)} frequent {args.radius}-spiders "
          f"(min_support={args.support}, max_size={args.max_size})")
    sizes = {}
    for spider in spiders:
        sizes[spider.num_vertices] = sizes.get(spider.num_vertices, 0) + 1
    for size in sorted(sizes):
        print(f"  |V|={size}: {sizes[size]} spiders")
    return 0


# ---------------------------------------------------------------------- #
# catalog sub-commands
# ---------------------------------------------------------------------- #
def _cmd_catalog_ingest(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, backend=args.backend)
    store = CatalogStore(args.store)
    digest = store.put_graph(graph, pinned=True)
    print(f"ingested {args.graph}: |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(f"graph digest: {digest}")
    return 0


def _cmd_catalog_list(args: argparse.Namespace) -> int:
    store = CatalogStore(args.store)
    graphs = store.list_graphs()
    runs = store.list_runs()
    if args.json:
        print(json.dumps({"graphs": graphs, "runs": runs}, indent=2, sort_keys=True))
        return 0
    print(f"catalog at {store.root}: {len(graphs)} graph(s), {len(runs)} run(s)")
    for digest, meta in sorted(graphs.items()):
        pin = " [pinned]" if meta.get("pinned") else ""
        print(f"  graph {digest[:12]}: |V|={meta['num_vertices']} "
              f"|E|={meta['num_edges']}{pin}")
    for run in runs:
        if run["kind"] == "result":
            print(f"  run {run['run_id'][:12]}: {run['algorithm']} "
                  f"{run['num_patterns']} patterns, "
                  f"largest |V|={run['largest_vertices']} "
                  f"(graph {run['graph_digest'][:12]})")
        else:
            print(f"  run {run['run_id'][:12]}: stage-I spiders "
                  f"({run['num_spiders']}, graph {run['graph_digest'][:12]})")
    return 0


def _validated_top(args: argparse.Namespace) -> int:
    if args.top is not None and args.top < 0:
        raise SystemExit(f"error: --top must be non-negative (got {args.top})")
    return args.top if args.top is not None else 10


def _cmd_catalog_query(args: argparse.Namespace) -> int:
    top = _validated_top(args)
    catalog = open_catalog(args.store)
    if args.contains:
        needle = _load_graph(args.contains, backend="dict")
        records = catalog.contains(needle, run=args.run)
        if args.label is not None:
            records = [r for r in records if args.label in r.labels]
        records = records[:top]
    else:
        records = catalog.top_k(top, by=args.by, label=args.label, run=args.run)
    if args.json:
        # The same schema (PatternRecord.to_dict) the HTTP API serves.
        print(json.dumps([r.to_dict() for r in records], indent=2, sort_keys=True))
        return 0
    if not records:
        print("no matching patterns in the catalog")
        return 0
    for rank, record in enumerate(records, start=1):
        print(f"  #{rank}: {record.describe()}")
    return 0


def _cmd_catalog_gc(args: argparse.Namespace) -> int:
    removed = CatalogStore(args.store).gc()
    print(f"gc: removed {removed['runs']} run(s), {removed['graphs']} graph(s), "
          f"{removed['indexes']} index sidecar(s), "
          f"{removed['telemetry']} telemetry sidecar(s), "
          f"{removed['stray_files']} stray file(s); "
          f"recovered {removed['recovered']} unindexed object(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    top = _validated_top(args)
    catalog = open_catalog(args.store, read_only=True)
    catalog.serve(
        host=args.host,
        port=args.port,
        default_top=top,
        default_by=args.by,
        default_label=args.label,
        default_run=args.run,
        access_log=args.access_log,
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return _run_lint_from_args(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spidermine",
        description="SpiderMine reproduction: top-K large structural pattern mining",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"spidermine-repro {__version__}",
        help="print the installed package version and exit",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        dest="log_json",
        help="emit log records as structured JSON lines (one object per line) "
             "instead of plain text",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable span tracing: phase timers are collected as a span tree "
             "and logged at TRACE level as they close",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_option(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--backend",
            choices=list(GRAPH_BACKENDS),
            default="csr",
            help="data-graph representation: immutable CSR snapshot (csr, default) "
                 "or the mutable dict-of-sets builder (dict); mining results are "
                 "identical, csr is faster on large graphs",
        )
        command.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for Stage-I spider mining (default 1 = serial); "
                 "workers share one zero-copy graph snapshot and results are "
                 "identical for any worker count",
        )

    mine = sub.add_parser("mine", help="run SpiderMine on a graph file")
    mine.add_argument("graph", help="input graph (.lg or .json)")
    mine.add_argument("--support", type=int, default=2, help="support threshold σ")
    mine.add_argument("-k", type=int, default=10, help="number of patterns to return")
    mine.add_argument("--dmax", type=int, default=6, help="pattern diameter bound Dmax")
    mine.add_argument("--epsilon", type=float, default=0.1, help="error bound ε")
    mine.add_argument("--radius", type=int, default=1, help="spider radius r")
    mine.add_argument("--seed", type=int, default=0, help="random seed")
    mine.add_argument("--output", help="write mined pattern graphs to this JSON file")
    mine.add_argument(
        "--cache",
        metavar="DIR",
        help="catalog directory for the content-addressed run cache: a repeat "
             "of a (graph, config, version) key re-serves the stored result "
             "bit-identically instead of re-mining",
    )
    mine.add_argument(
        "--cache-mode",
        choices=["readwrite", "readonly", "refresh"],
        default="readwrite",
        dest="cache_mode",
        help="readwrite serves hits and stores misses (default); readonly "
             "never writes; refresh always re-mines and overwrites",
    )
    mine.add_argument(
        "--telemetry",
        action="store_true",
        help="collect metrics + phase spans during the mine and print a "
             "phase-time table; results are bit-identical either way, and "
             "with --cache the telemetry persists as a run sidecar",
    )
    add_backend_option(mine)
    mine.set_defaults(func=_cmd_mine)

    generate = sub.add_parser("generate", help="generate a synthetic dataset (GID 1-10)")
    generate.add_argument("gid", type=int, help="dataset id from Table 1 / Table 3")
    generate.add_argument("output", help="output .lg path")
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--scale", type=float, default=1.0,
                          help="scale factor in (0,1] applied to |V| and pattern sizes")
    generate.set_defaults(func=_cmd_generate)

    compare = sub.add_parser("compare", help="compare SpiderMine with SUBDUE and SEuS")
    compare.add_argument("graph", help="input graph (.lg or .json)")
    compare.add_argument("--support", type=int, default=2)
    compare.add_argument("-k", type=int, default=10)
    compare.add_argument("--dmax", type=int, default=6)
    compare.add_argument("--seed", type=int, default=0)
    add_backend_option(compare)
    compare.set_defaults(func=_cmd_compare)

    spiders = sub.add_parser("spiders", help="run Stage I only and report spider statistics")
    spiders.add_argument("graph", help="input graph (.lg or .json)")
    spiders.add_argument("--support", type=int, default=2)
    spiders.add_argument("--radius", type=int, default=1)
    spiders.add_argument("--max-size", type=int, default=6, dest="max_size")
    add_backend_option(spiders)
    spiders.set_defaults(func=_cmd_spiders)

    catalog = sub.add_parser(
        "catalog", help="persistent pattern catalog: ingest, list, query, gc"
    )
    catalog_sub = catalog.add_subparsers(dest="catalog_command", required=True)

    ingest = catalog_sub.add_parser(
        "ingest", help="store a graph snapshot in the catalog (pinned)"
    )
    ingest.add_argument("store", help="catalog directory (created if missing)")
    ingest.add_argument("graph", help="input graph (.lg or .json)")
    ingest.add_argument(
        "--backend", choices=list(GRAPH_BACKENDS), default="csr",
        help="backend used while reading the graph (stored form is canonical)",
    )
    ingest.set_defaults(func=_cmd_catalog_ingest)

    list_cmd = catalog_sub.add_parser(
        "list", help="list stored graphs and runs"
    )
    list_cmd.add_argument("store", help="catalog directory")
    list_cmd.add_argument("--json", action="store_true", help="machine-readable output")
    list_cmd.set_defaults(func=_cmd_catalog_list)

    # One option set shared by `catalog query` and `serve`: a one-shot
    # query's filters are exactly the server's defaults.
    query_options = argparse.ArgumentParser(add_help=False)
    query_options.add_argument("--top", type=int, default=None, metavar="K",
                               help="return the K best patterns (default 10)")
    query_options.add_argument("--by", choices=list(RANKINGS), default="vertices",
                               help="ranking key for --top (ignored with "
                                    "--contains, whose results keep stored-run "
                                    "order)")
    query_options.add_argument("--label",
                               help="only patterns containing this vertex label")
    query_options.add_argument("--run", metavar="RUN_ID",
                               help="restrict to one stored run")
    query_options.add_argument("--json", action="store_true",
                               help="machine-readable output (the HTTP API's "
                                    "schema; servers always emit JSON)")

    query_cmd = catalog_sub.add_parser(
        "query",
        parents=[query_options],
        help="query stored patterns (top-k, label filter, containment)",
    )
    query_cmd.add_argument("store", help="catalog directory")
    query_cmd.add_argument("--contains", metavar="GRAPH",
                           help="only patterns containing this graph file "
                                "(.lg/.json) as a subgraph")
    query_cmd.set_defaults(func=_cmd_catalog_query)

    gc_cmd = catalog_sub.add_parser(
        "gc", help="drop orphaned objects and unreferenced unpinned graphs"
    )
    gc_cmd.add_argument("store", help="catalog directory")
    gc_cmd.set_defaults(func=_cmd_catalog_gc)

    serve_cmd = sub.add_parser(
        "serve",
        parents=[query_options],
        help="serve a catalog over HTTP (read-only JSON API); the shared "
             "query options become the server's endpoint defaults",
    )
    serve_cmd.add_argument("store", help="catalog directory")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1; use 0.0.0.0 "
                                "in containers)")
    serve_cmd.add_argument("--port", type=int, default=8080,
                           help="TCP port (default 8080; 0 picks a free port)")
    serve_cmd.add_argument("--access-log", action="store_true", dest="access_log",
                           help="log one line per HTTP request (method, path, "
                                "status, duration ms); off by default so perf "
                                "numbers are unaffected")
    serve_cmd.set_defaults(func=_cmd_serve)

    lint_cmd = sub.add_parser(
        "lint",
        help="run reprolint, the AST-based invariant checker (determinism, "
             "cache-key partition, telemetry neutrality, lock discipline, "
             "kernel dispatch)",
    )
    add_lint_arguments(lint_cmd)
    lint_cmd.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Wire the repro logger for every command: plain text at INFO by
    # default, JSON lines with --log-json, TRACE-level span records with
    # --trace.  Re-invocations replace the handler, never stack it.
    configure_logging(json_lines=args.log_json, trace=args.trace)
    if args.trace:
        enable_tracing()
    try:
        return args.func(args)
    except (CatalogError, CatalogFormatError) as error:
        raise SystemExit(f"error: {error}") from error


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
