"""Process-local metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a lock-protected bag of named series.  Names
are flat dotted strings following the span naming scheme
(``layer.stage.unit`` — e.g. ``cache.result.hits``,
``http.latency_seconds.top_k``); there are no label dimensions, which keeps
``snapshot()`` a plain deterministic dict and the hot-path cost one dict
update under one lock.

The default registry is :class:`NullRegistry` — every method is a no-op and
``enabled`` is ``False``, so instrumented call sites guard with::

    registry = get_registry()
    if registry.enabled:
        registry.counter("cache.result.hits")

which costs one attribute check when telemetry is off.  Nothing in this
module is ever consulted by the miners' algorithms: telemetry is provably
result-neutral (see ``tests/test_obs_parity.py``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - Protocol exists on every supported Python (3.8+)
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Snapshottable",
    "enable_metrics",
    "get_registry",
    "set_registry",
    "use_registry",
]

Number = Union[int, float]

#: Default histogram bucket upper bounds, in seconds — a latency-shaped
#: exponential ladder from 1ms to 10s.  Values above the last bound land in
#: the implicit +Inf overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@runtime_checkable
class Snapshottable(Protocol):
    """Anything that can dump its counters as a JSON-ready dict.

    The one shape shared by every stats object in the system
    (``MatcherStats``, ``IndexStats``, ``MiningStatistics``,
    ``LRUCache``): a ``to_dict()`` whose values are scalars (or nested
    dicts of scalars, which :meth:`MetricsRegistry.publish` flattens).
    """

    def to_dict(self) -> Dict[str, object]: ...  # pragma: no cover - protocol


class Histogram:
    """A fixed-bucket histogram: cumulative-friendly counts plus sum/count.

    ``buckets`` are the sorted upper bounds (inclusive); one extra overflow
    bucket catches everything above the last bound.  Bucketing is a single
    ``bisect`` — no allocation per observation.
    """

    __slots__ = ("buckets", "counts", "count", "total")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets) or not self.buckets:
            raise ValueError("histogram buckets must be a non-empty sorted sequence")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class NullRegistry:
    """The disabled default: every operation is a no-op.

    Shares the :class:`MetricsRegistry` surface so call sites never branch
    on the registry *type* — only, optionally, on ``enabled`` (one attribute
    check, the documented hot-path budget of disabled telemetry).
    """

    enabled = False

    def counter(self, name: str, value: Number = 1) -> None:
        pass

    def gauge(self, name: str, value: Number) -> None:
        pass

    def observe(self, name: str, value: Number,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        pass

    def publish(self, prefix: str, stats: "Snapshottable") -> None:
        pass

    def merge_counters(self, prefix: str, stats: "Snapshottable") -> None:
        pass

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def flat(self) -> Dict[str, Number]:
        return {}


class MetricsRegistry(NullRegistry):
    """A live, lock-protected registry of counters, gauges and histograms."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def counter(self, name: str, value: Number = 1) -> None:
        """Add ``value`` (default 1) to the monotonically increasing series."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: Number) -> None:
        """Set a point-in-time value (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: Number,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Record one sample into the named fixed-bucket histogram."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(buckets)
            histogram.observe(value)

    # ------------------------------------------------------------------ #
    # Snapshottable bridging
    # ------------------------------------------------------------------ #
    def publish(self, prefix: str, stats: Snapshottable) -> None:
        """Mirror a cumulative stats object into gauges under ``prefix``.

        For stats that are themselves running totals (``IndexStats``,
        ``LRUCache.to_dict()``, ``MiningStatistics``): re-publishing
        overwrites, so the registry always shows the latest snapshot.
        Nested dicts flatten with dotted keys; non-numeric values are
        skipped (they belong in logs, not metrics).
        """
        for key, value in _flatten(stats.to_dict()):
            self.gauge(f"{prefix}.{key}", value)

    def merge_counters(self, prefix: str, stats: Snapshottable) -> None:
        """Accumulate a per-instance stats object into counters.

        For short-lived stats (one :class:`MatcherStats` per matcher): each
        merge *adds*, so the registry totals work across every instance.
        """
        for key, value in _flatten(stats.to_dict()):
            self.counter(f"{prefix}.{key}", value)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Dict]:
        """Deterministic JSON-ready dump (all series, sorted names)."""
        with self._lock:
            return {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "histograms": {
                    k: self._histograms[k].to_dict()
                    for k in sorted(self._histograms)
                },
            }

    def flat(self) -> Dict[str, Number]:
        """One flat name → number dict (the ``/metrics`` wire shape).

        Histograms contribute ``<name>.count`` and ``<name>.sum``; bucket
        vectors stay in :meth:`snapshot` (the ``/stats`` shape).
        """
        with self._lock:
            out: Dict[str, Number] = {}
            out.update(self._counters)
            out.update(self._gauges)
            for name, histogram in self._histograms.items():
                out[f"{name}.count"] = histogram.count
                out[f"{name}.sum"] = histogram.total
            return {k: out[k] for k in sorted(out)}


def _flatten(data: Dict[str, object], prefix: str = "") -> Iterator[Tuple[str, Number]]:
    for key in sorted(data, key=repr):
        value = data[key]
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            yield name, value
        elif isinstance(value, dict):
            yield from _flatten(value, prefix=f"{name}.")


# ---------------------------------------------------------------------- #
# the process-local registry
# ---------------------------------------------------------------------- #
_NULL_REGISTRY = NullRegistry()
_registry: NullRegistry = _NULL_REGISTRY


def get_registry() -> NullRegistry:
    """The active registry (a :class:`NullRegistry` unless enabled)."""
    return _registry


def set_registry(registry: Optional[NullRegistry]) -> NullRegistry:
    """Install ``registry`` (``None`` restores the null default); returns the old one."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else _NULL_REGISTRY
    return previous


def enable_metrics() -> MetricsRegistry:
    """Install and return a fresh live registry (idempotent convenience)."""
    registry = MetricsRegistry()
    set_registry(registry)
    return registry


@contextmanager
def use_registry(registry: Optional[NullRegistry]) -> Iterator[NullRegistry]:
    """Scoped :func:`set_registry`: restores the previous registry on exit."""
    previous = set_registry(registry)
    try:
        yield _registry
    finally:
        set_registry(previous)
