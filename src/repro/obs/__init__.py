"""``repro.obs`` — the unified telemetry layer (metrics, spans, logging).

Observability is a first-class subsystem of the reproduction: a 10-hour
mine or a saturated ``repro serve`` must never be a black box.  This
package provides the process-local runtime every other layer instruments
itself against, built on three invariants:

* **Result-neutral.**  Telemetry can never change what is mined or served:
  mining result digests are bit-identical with telemetry enabled, disabled
  or tracing, pinned by ``tests/test_obs_parity.py``.  The registry and
  tracer live in module globals — never in :class:`SpiderMineConfig` — so
  catalog cache keys cannot move and no version bump is needed.
* **Free when off.**  The default :class:`NullRegistry` / :class:`NullTracer`
  cost one attribute check (``registry.enabled``) on hot paths; nothing is
  allocated, locked or formatted until a caller opts in.
* **One shape.**  Every stats object in the system —
  :class:`~repro.graph.isomorphism.MatcherStats`,
  :class:`~repro.catalog.pattern_index.IndexStats`,
  :class:`~repro.core.results.MiningStatistics`,
  :class:`~repro.catalog.lru.LRUCache` — satisfies the
  :class:`Snapshottable` protocol (``to_dict() -> dict``), so any of them
  can be published into a registry or serialised into a sidecar verbatim.
  All four are re-exported here for one-import access.

Entry points
------------
``get_registry()`` / ``set_registry()`` / ``enable_metrics()`` manage the
process-local :class:`MetricsRegistry`; ``span("layer.stage", **attrs)``
opens a phase timer on the active tracer (``enable_tracing()`` turns the
no-op default into a real span tree); ``configure_logging(json_lines=...,
trace=...)`` wires the stdlib ``repro`` logger, optionally as structured
JSON lines with the custom ``TRACE`` level (the CLI's ``--log-json`` /
``--trace`` flags).

Span names follow ``layer.stage[.unit]``: ``mine.stage1``,
``mine.stage1.unit`` (one per mining unit, serial or merged back from
workers), ``mine.stage2``, ``mine.stage3``, ``serve.request``.
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Snapshottable,
    enable_metrics,
    get_registry,
    set_registry,
    use_registry,
)
from .trace import (
    TRACE,
    NullTracer,
    Span,
    Tracer,
    configure_logging,
    enable_tracing,
    get_logger,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)


def __getattr__(name):
    # Lazy re-exports of the unified Snapshottable stats objects: importing
    # them eagerly here would cycle (graph/catalog/core all import repro.obs).
    if name == "MatcherStats":
        from ..graph.isomorphism import MatcherStats

        return MatcherStats
    if name == "IndexStats":
        from ..catalog.pattern_index import IndexStats

        return IndexStats
    if name == "MiningStatistics":
        from ..core.results import MiningStatistics

        return MiningStatistics
    if name == "LRUCache":
        from ..catalog.lru import LRUCache

        return LRUCache
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    # metrics
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Snapshottable",
    "enable_metrics",
    "get_registry",
    "set_registry",
    "use_registry",
    # tracing + logging
    "TRACE",
    "NullTracer",
    "Span",
    "Tracer",
    "configure_logging",
    "enable_tracing",
    "get_logger",
    "get_tracer",
    "set_tracer",
    "span",
    "use_tracer",
    # unified Snapshottable stats (lazy re-exports)
    "MatcherStats",
    "IndexStats",
    "MiningStatistics",
    "LRUCache",
]
