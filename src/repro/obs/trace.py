"""Span-tree phase timers and structured logging for the ``repro`` pipeline.

A :class:`Tracer` turns nested ``with span("mine.stage1"):`` blocks into a
structured tree of :class:`Span` records: monotonic-clock durations, child
aggregation, JSON-ready ``to_dict()``/``from_dict()`` so worker processes
can ship their subtrees back to the driver (``Tracer.attach``).  Two entry
points cover code that cannot use a context manager:

* ``tracer.record(name, duration, **attrs)`` emits a synthetic completed
  span — the serial Stage-I loop interleaves unit generators round-robin,
  so per-unit time is accumulated and recorded after the fact;
* ``tracer.attach(span)`` grafts an already-built tree (a worker's) under
  the current span.

The default tracer is :class:`NullTracer` (``enabled`` is ``False``, spans
are a shared no-op context manager), matching the metrics layer's
free-when-off budget.  Logging rides the stdlib: :func:`configure_logging`
wires the ``repro`` logger — optionally as structured JSON lines — and
registers the custom ``TRACE`` level (5, below ``DEBUG``) that span
closures log at when tracing is verbose.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "TRACE",
    "NullTracer",
    "Span",
    "Tracer",
    "configure_logging",
    "enable_tracing",
    "get_logger",
    "get_tracer",
    "set_tracer",
    "span",
    "use_tracer",
]

#: Custom log level for span-closure records: more verbose than DEBUG.
TRACE = 5
logging.addLevelName(TRACE, "TRACE")

_LOGGER_ROOT = "repro"


# ---------------------------------------------------------------------- #
# spans
# ---------------------------------------------------------------------- #
@dataclass
class Span:
    """One timed phase: a name, flat attrs, a duration, and child spans."""

    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    duration: float = 0.0
    children: List["Span"] = field(default_factory=list)

    def annotate(self, **attrs: object) -> "Span":
        """Attach extra attributes to an open (or finished) span."""
        self.attrs.update(attrs)
        return self

    def child_total(self) -> float:
        """Sum of direct children's durations (aggregation helper)."""
        return sum(child.duration for child in self.children)

    def self_time(self) -> float:
        """Time spent in this span outside any child (never below zero)."""
        return max(0.0, self.duration - self.child_total())

    def iter_spans(self) -> Iterator["Span"]:
        """Depth-first walk over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"name": self.name, "duration": self.duration}
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        return cls(
            name=str(payload["name"]),
            attrs=dict(payload.get("attrs", {})),  # type: ignore[arg-type]
            duration=float(payload.get("duration", 0.0)),  # type: ignore[arg-type]
            children=[
                cls.from_dict(child)
                for child in payload.get("children", ())  # type: ignore[union-attr]
            ],
        )


class _NullSpan:
    """Shared no-op span: context manager + inert ``annotate``."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, object] = {}
    duration = 0.0
    children: List[Span] = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled default: spans cost one attribute check and a yield."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, duration: float, **attrs: object) -> None:
        pass

    def attach(self, tree: Span) -> None:
        pass

    def roots(self) -> List[Span]:
        return []

    def to_dict(self) -> Dict[str, object]:
        return {"spans": []}


class Tracer(NullTracer):
    """A live tracer: per-thread span stacks feeding one shared root list.

    Each thread nests independently (the asyncio server and worker threads
    never interleave each other's trees); completed top-level spans append
    to the shared ``roots`` list under a lock.  Span closures log at
    ``TRACE`` level — free unless a handler opted into that verbosity.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []
        self._logger = logging.getLogger(f"{_LOGGER_ROOT}.trace")

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _close(self, node: Span) -> None:
        stack = self._stack()
        stack.pop()
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self._roots.append(node)
        if self._logger.isEnabledFor(TRACE):
            self._logger.log(
                TRACE,
                "span %s %.6fs",
                node.name,
                node.duration,
                extra={"span": node.name, "duration": node.duration,
                       "attrs": dict(node.attrs)},
            )

    @contextmanager  # type: ignore[override]
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        node = Span(name=name, attrs=dict(attrs))
        self._stack().append(node)
        started = time.monotonic()
        try:
            yield node
        finally:
            node.duration = time.monotonic() - started
            self._close(node)

    def record(self, name: str, duration: float, **attrs: object) -> None:
        """Emit a synthetic completed span under the current nesting."""
        node = Span(name=name, attrs=dict(attrs), duration=float(duration))
        stack = self._stack()
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self._roots.append(node)

    def attach(self, tree: Span) -> None:
        """Graft an already-built span tree (e.g. a worker's) in place."""
        stack = self._stack()
        if stack:
            stack[-1].children.append(tree)
        else:
            with self._lock:
                self._roots.append(tree)

    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def to_dict(self) -> Dict[str, object]:
        return {"spans": [root.to_dict() for root in self.roots()]}


# ---------------------------------------------------------------------- #
# the process-local tracer
# ---------------------------------------------------------------------- #
_NULL_TRACER = NullTracer()
_tracer: NullTracer = _NULL_TRACER


def get_tracer() -> NullTracer:
    """The active tracer (a :class:`NullTracer` unless enabled)."""
    return _tracer


def set_tracer(tracer: Optional[NullTracer]) -> NullTracer:
    """Install ``tracer`` (``None`` restores the null default); returns the old one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else _NULL_TRACER
    return previous


def enable_tracing() -> Tracer:
    """Install and return a fresh live tracer."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


@contextmanager
def use_tracer(tracer: Optional[NullTracer]) -> Iterator[NullTracer]:
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield _tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs: object):
    """Open a span on the active tracer (module-level convenience)."""
    return _tracer.span(name, **attrs)


# ---------------------------------------------------------------------- #
# logging
# ---------------------------------------------------------------------- #
class _JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg, plus structured extras."""

    _SKIP = frozenset(vars(logging.LogRecord("", 0, "", 0, "", (), None))) | {
        "message", "asctime", "taskName",
    }

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in self._SKIP and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["traceback"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger('serve')``)."""
    return logging.getLogger(f"{_LOGGER_ROOT}.{name}" if name else _LOGGER_ROOT)


def configure_logging(
    json_lines: bool = False,
    trace: bool = False,
    stream: Optional[io.TextIOBase] = None,
    level: Optional[int] = None,
) -> logging.Logger:
    """Wire the ``repro`` logger tree: one stream handler, optional JSON lines.

    ``trace=True`` lowers the threshold to the ``TRACE`` level so span
    closures are logged; otherwise ``level`` (default ``INFO``) applies.
    Re-configuring replaces the handler installed by a previous call, so
    tests and repeated CLI invocations don't stack duplicates.
    """
    logger = logging.getLogger(_LOGGER_ROOT)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)  # None -> sys.stderr
    handler._repro_obs = True  # type: ignore[attr-defined]
    if json_lines:
        handler.setFormatter(_JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    logger.addHandler(handler)
    logger.setLevel(TRACE if trace else (logging.INFO if level is None else level))
    logger.propagate = False
    return logger
