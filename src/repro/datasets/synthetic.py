"""The paper's synthetic datasets (Tables 1, 2 and 3 plus the scalability series).

Every experiment in Section 5 / Appendix C.1 is driven by synthetic single
graphs built with the recipe of :func:`repro.graph.synthetic_single_graph`:
an Erdős–Rényi or Barabási–Albert background with injected large and small
patterns.  This module pins the exact parameter rows of the paper's tables
(``GID_SETTINGS`` = Table 1, ``GID_6_10_SETTINGS`` = Table 3) and offers a
``scale`` knob: at ``scale=1.0`` the graphs match the paper's sizes, while
the benchmark defaults use smaller scales so a pure-Python run finishes in
seconds (see EXPERIMENTS.md for the scales actually used).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.generators import SyntheticSingleGraph, synthetic_single_graph
from ..transaction.database import GraphDatabase
from ..graph.generators import (
    erdos_renyi_graph,
    inject_pattern,
    label_alphabet,
    random_connected_pattern,
)


@dataclass(frozen=True)
class DataSetting:
    """One row of Table 1 / Table 3: the parameters of a synthetic single graph."""

    gid: int
    num_vertices: int
    num_labels: int
    average_degree: float
    num_large: int
    large_vertices: int
    large_support: int
    num_small: int
    small_vertices: int
    small_support: int

    def generate(
        self,
        seed: Optional[int] = None,
        scale: float = 1.0,
        model: str = "erdos_renyi",
        max_pattern_diameter: Optional[int] = 4,
        frozen: bool = False,
    ) -> SyntheticSingleGraph:
        """Build the dataset, optionally scaled down by ``scale`` ∈ (0, 1].

        ``frozen=True`` hands back the data graph as an immutable CSR
        snapshot ready for mining.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must lie in (0, 1]")
        num_vertices = max(40, int(round(self.num_vertices * scale)))
        num_labels = max(5, int(round(self.num_labels * scale)) if scale < 1.0 else self.num_labels)
        large_vertices = max(6, int(round(self.large_vertices * (scale ** 0.5))))
        small_vertices = self.small_vertices
        num_large = self.num_large if scale == 1.0 else max(2, int(round(self.num_large * scale)))
        num_small = self.num_small if scale == 1.0 else max(1, int(round(self.num_small * scale)))
        large_support = self.large_support
        small_support = self.small_support if scale == 1.0 else max(
            2, int(round(self.small_support * scale))
        )
        if scale < 1.0:
            # Keep the injected material from saturating a scaled-down background:
            # the injected large-pattern vertices should not exceed ~half the graph.
            budget = num_vertices // 2
            while num_large > 2 and num_large * large_vertices * large_support > budget:
                num_large -= 1
            while large_vertices > 6 and num_large * large_vertices * large_support > budget:
                large_vertices -= 1
            while large_support > 2 and num_large * large_vertices * large_support > budget:
                large_support -= 1
            small_budget = num_vertices // 4
            while small_support > 2 and num_small * small_vertices * small_support > small_budget:
                small_support -= 1
        return synthetic_single_graph(
            num_vertices=num_vertices,
            num_labels=num_labels,
            average_degree=self.average_degree,
            num_large_patterns=num_large,
            large_pattern_vertices=large_vertices,
            large_pattern_support=large_support,
            num_small_patterns=num_small,
            small_pattern_vertices=small_vertices,
            small_pattern_support=small_support,
            seed=seed if seed is not None else self.gid,
            model=model,
            max_pattern_diameter=max_pattern_diameter,
            frozen=frozen,
        )


#: Table 1 — data settings GID 1–5 (single-graph, Erdős–Rényi background).
GID_SETTINGS: Dict[int, DataSetting] = {
    1: DataSetting(1, 400, 70, 2, 5, 30, 2, 5, 3, 2),
    2: DataSetting(2, 400, 70, 4, 5, 30, 2, 5, 3, 2),
    3: DataSetting(3, 1000, 250, 2, 5, 30, 2, 5, 3, 20),
    4: DataSetting(4, 1000, 250, 4, 5, 30, 2, 5, 3, 20),
    5: DataSetting(5, 600, 130, 4, 5, 30, 2, 20, 3, 2),
}

#: Table 2 — the qualitative differences between the GID 1–5 settings.
GID_DIFFERENCES: Dict[Tuple[int, int], str] = {
    (2, 1): "GID 2 doubles the average degree",
    (3, 1): "GID 3 increases the support of small patterns",
    (4, 3): "GID 4 doubles the average degree",
    (5, 2): "GID 5 increases the number of small patterns",
}

#: Table 3 — data settings GID 6–10 (growing share of small patterns).
#: The paper's sizes (|V| from 20 490 to 56 740) are kept here verbatim; the
#: robustness benchmark scales them down via ``DataSetting.generate(scale=...)``.
GID_6_10_SETTINGS: Dict[int, DataSetting] = {
    6: DataSetting(6, 20490, 1064, 3.05, 5, 50, 12, 50, 5, 10),
    7: DataSetting(7, 31110, 1658, 3.05, 5, 50, 12, 50, 5, 15),
    8: DataSetting(8, 37595, 2062, 3.05, 5, 50, 12, 50, 5, 20),
    9: DataSetting(9, 47410, 2610, 3.05, 5, 50, 12, 50, 5, 25),
    10: DataSetting(10, 56740, 3138, 3.05, 5, 50, 12, 50, 5, 30),
}


def generate_gid(
    gid: int, seed: Optional[int] = None, scale: float = 1.0, frozen: bool = False
) -> SyntheticSingleGraph:
    """Generate the dataset for a GID from Table 1 (1–5) or Table 3 (6–10)."""
    if gid in GID_SETTINGS:
        return GID_SETTINGS[gid].generate(seed=seed, scale=scale, frozen=frozen)
    if gid in GID_6_10_SETTINGS:
        return GID_6_10_SETTINGS[gid].generate(seed=seed, scale=scale, frozen=frozen)
    raise ValueError(f"unknown GID {gid}; expected 1..10")


def scalability_series(
    sizes: List[int],
    average_degree: float = 3.0,
    num_labels: int = 100,
    num_large: int = 4,
    large_vertices: int = 20,
    large_support: int = 2,
    seed: int = 11,
    model: str = "erdos_renyi",
) -> List[SyntheticSingleGraph]:
    """The growing-graph series behind Figures 10–13 and 17.

    The paper grows |V| up to 40 000 (random) and |E| up to ~1.2 M
    (scale-free); callers choose the concrete ``sizes`` so the pure-Python
    harness stays within budget while preserving the series shape.
    """
    series = []
    for index, size in enumerate(sizes):
        pattern_vertices = min(large_vertices, max(6, size // 10))
        # Injected copies claim disjoint vertices; fit the injections into
        # roughly 60% of the graph so small sweep points stay generatable.
        count = num_large
        while count > 1 and count * pattern_vertices * large_support + 18 > int(0.6 * size):
            count -= 1
        series.append(
            synthetic_single_graph(
                num_vertices=size,
                num_labels=num_labels,
                average_degree=average_degree,
                num_large_patterns=count,
                large_pattern_vertices=pattern_vertices,
                large_pattern_support=large_support,
                num_small_patterns=3,
                small_pattern_vertices=3,
                small_pattern_support=2,
                seed=seed + index,
                model=model,
                max_pattern_diameter=8,
            )
        )
    return series


def transaction_database(
    num_graphs: int = 10,
    graph_vertices: int = 500,
    average_degree: float = 5.0,
    num_labels: int = 65,
    num_large: int = 5,
    large_vertices: int = 30,
    num_small: int = 0,
    small_vertices: int = 5,
    seed: int = 21,
) -> GraphDatabase:
    """The graph-transaction databases of Figures 14 and 15.

    Figure 14 uses 10 ER graphs with 5 injected large patterns (each present
    in several transactions); Figure 15 additionally injects 100 small
    patterns, which is what pushes ORIGAMI toward small outputs.
    """
    import random as _random

    rng = _random.Random(seed)
    labels = label_alphabet(num_labels)
    graphs = [
        erdos_renyi_graph(graph_vertices, average_degree, num_labels, seed=rng.randrange(10**9))
        for _ in range(num_graphs)
    ]
    large_patterns = [
        random_connected_pattern(large_vertices, labels, extra_edge_probability=0.15,
                                 seed=rng.randrange(10**9), max_diameter=6)
        for _ in range(num_large)
    ]
    small_patterns = [
        random_connected_pattern(small_vertices, labels, extra_edge_probability=0.3,
                                 seed=rng.randrange(10**9))
        for _ in range(num_small)
    ]
    # Each large pattern goes into most transactions (high transaction support);
    # small patterns are spread across transactions.  Injections into the same
    # transaction claim disjoint vertices (per-graph reserved sets) so a later
    # small-pattern injection can never relabel part of a large pattern.
    reserved_per_graph = {id(graph): set() for graph in graphs}
    for pattern in large_patterns:
        for graph in graphs[: max(2, int(0.8 * num_graphs))]:
            inject_pattern(graph, pattern, copies=1, seed=rng.randrange(10**9),
                           reserved=reserved_per_graph[id(graph)])
    for pattern in small_patterns:
        for graph in rng.sample(graphs, max(2, num_graphs // 2)):
            inject_pattern(graph, pattern, copies=1, seed=rng.randrange(10**9),
                           reserved=reserved_per_graph[id(graph)])
    return GraphDatabase(graphs=graphs)
