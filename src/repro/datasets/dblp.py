"""Synthetic DBLP-like co-authorship network (stand-in for the paper's real data).

The paper builds a co-author relationship graph for the Database & Data
Mining community: 6 508 authors, 24 402 edges, and four seniority labels —
"Prolific" (≥ 50 papers), "Senior" (20–49), "Junior" (10–19) and "Beginner"
(5–9) — with an edge when two authors co-author a significant fraction of
their papers.  The real DBLP snapshot is not redistributable, so this module
generates a synthetic graph that preserves the properties the experiment
actually exercises:

* the four-label vocabulary with a pyramid-shaped label distribution (few
  prolific authors, many beginners);
* research-group community structure: authors cluster around prolific hubs,
  giving sparse global connectivity but dense local collaboration;
* repeated collaborative motifs: a number of group-shaped patterns (a
  prolific author surrounded by seniors/juniors/beginners) are injected
  several times each, which is what SpiderMine's large-pattern mining is
  shown to recover (Figures 20, 22, 23).

Sizes default to a scaled-down graph; pass ``num_authors=6508`` to match the
paper's scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graph.generators import InjectedPattern, inject_pattern
from ..graph.labeled_graph import LabeledGraph

#: The paper's seniority labels.
PROLIFIC = "P"
SENIOR = "S"
JUNIOR = "J"
BEGINNER = "B"
DBLP_LABELS = (PROLIFIC, SENIOR, JUNIOR, BEGINNER)

#: Approximate share of each label in the paper's 6 762-author subset.
DEFAULT_LABEL_SHARES = {PROLIFIC: 0.04, SENIOR: 0.12, JUNIOR: 0.28, BEGINNER: 0.56}


@dataclass
class DblpLikeGraph:
    """The generated co-authorship graph plus the injected collaboration motifs."""

    graph: LabeledGraph
    collaboration_patterns: List[InjectedPattern] = field(default_factory=list)

    @property
    def num_authors(self) -> int:
        return self.graph.num_vertices


def _collaboration_motif(size: int, rng: random.Random) -> LabeledGraph:
    """A research-group motif: a prolific hub, senior lieutenants, junior/beginner leaves."""
    motif = LabeledGraph()
    motif.add_vertex(0, PROLIFIC)
    seniors = max(1, size // 4)
    for i in range(1, 1 + seniors):
        motif.add_vertex(i, SENIOR)
        motif.add_edge(0, i)
    next_id = 1 + seniors
    while next_id < size:
        label = JUNIOR if rng.random() < 0.5 else BEGINNER
        motif.add_vertex(next_id, label)
        # Attach to the hub or to a senior, occasionally to another leaf.
        anchor = rng.choice([0] + list(range(1, 1 + seniors)))
        motif.add_edge(next_id, anchor)
        if next_id > 1 + seniors and rng.random() < 0.35:
            other = rng.randrange(1, next_id)
            if not motif.has_edge(next_id, other):
                motif.add_edge(next_id, other)
        next_id += 1
    return motif


def generate_dblp_like_graph(
    num_authors: int = 1200,
    average_degree: float = 3.7,
    num_communities: int = 40,
    num_collaboration_patterns: int = 6,
    pattern_size: int = 14,
    pattern_support: int = 4,
    label_shares: Optional[Dict[str, float]] = None,
    seed: Optional[int] = 0,
    frozen: bool = False,
) -> DblpLikeGraph:
    """Generate the synthetic co-authorship network.

    Parameters mirror the structural knobs of the real data: the paper's graph
    has 6 508 vertices, 24 402 edges (average degree ≈ 7.5 within communities,
    ≈ 3.7 overall after thresholding), four labels, and the mined patterns of
    interest have ~10–25 vertices with support ≥ 4.
    """
    rng = random.Random(seed)
    shares = dict(label_shares or DEFAULT_LABEL_SHARES)
    total_share = sum(shares.values())
    labels = list(shares)
    weights = [shares[l] / total_share for l in labels]

    graph = LabeledGraph()
    for author in range(num_authors):
        graph.add_vertex(author, rng.choices(labels, weights=weights)[0])

    # Community structure: authors are partitioned into groups; most edges are
    # intra-community (collaborations inside a research group), a few are
    # inter-community (cross-group collaborations).
    community_of = {author: rng.randrange(num_communities) for author in graph.vertices()}
    members: Dict[int, List[int]] = {}
    for author, community in community_of.items():
        members.setdefault(community, []).append(author)

    target_edges = int(num_authors * average_degree / 2)
    attempts = 0
    while graph.num_edges < target_edges and attempts < 60 * target_edges:
        attempts += 1
        if rng.random() < 0.85:
            community = rng.randrange(num_communities)
            pool = members.get(community, [])
            if len(pool) < 2:
                continue
            u, v = rng.sample(pool, 2)
        else:
            u = rng.randrange(num_authors)
            v = rng.randrange(num_authors)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)

    # Injected copies claim disjoint author sets; keep the total claim within
    # ~60% of the graph so small instances remain generatable (the motif count
    # is reduced, never the motif itself, when the request does not fit).
    budget = int(0.6 * num_authors)
    per_motif = pattern_size * pattern_support
    num_motifs = max(1, min(num_collaboration_patterns, budget // max(1, per_motif)))
    support = pattern_support
    while support > 2 and num_motifs * pattern_size * support > budget:
        support -= 1

    records: List[InjectedPattern] = []
    reserved: set = set()
    for _ in range(num_motifs):
        motif = _collaboration_motif(pattern_size, rng)
        records.append(
            inject_pattern(graph, motif, copies=support,
                           seed=rng.randrange(10**9), reserved=reserved)
        )
    if frozen:
        graph = graph.freeze()
    return DblpLikeGraph(graph=graph, collaboration_patterns=records)
