"""Datasets: the paper's synthetic settings plus DBLP-like and Jeti-like stand-ins."""

from .synthetic import (
    DataSetting,
    GID_DIFFERENCES,
    GID_SETTINGS,
    GID_6_10_SETTINGS,
    generate_gid,
    scalability_series,
    transaction_database,
)
from .dblp import (
    BEGINNER,
    DBLP_LABELS,
    DblpLikeGraph,
    JUNIOR,
    PROLIFIC,
    SENIOR,
    generate_dblp_like_graph,
)
from .jeti import JetiLikeGraph, generate_call_graph

__all__ = [
    "DataSetting",
    "GID_DIFFERENCES",
    "GID_SETTINGS",
    "GID_6_10_SETTINGS",
    "generate_gid",
    "scalability_series",
    "transaction_database",
    "BEGINNER",
    "DBLP_LABELS",
    "DblpLikeGraph",
    "JUNIOR",
    "PROLIFIC",
    "SENIOR",
    "generate_dblp_like_graph",
    "JetiLikeGraph",
    "generate_call_graph",
]
