"""The probabilistic seeding analysis of SpiderMine (Lemma 2 / Theorem 1).

The paper draws ``M`` seed spiders uniformly at random.  A pattern ``P`` is
*hit* by one draw with probability at least ``|V(P)| / |V(G)|`` and is
*successfully identified* when at least two of its spiders are drawn (the two
then provably merge within ``Dmax / 2r`` growth iterations — Lemma 1).  The
probability that all top-K patterns are identified is bounded below by

    P_success ≥ (1 − (M + 1) · (1 − Vmin / |V(G)|)^M)^K

and ``M`` is chosen as the smallest integer for which this bound reaches
``1 − ε``.  The worked example in the paper (ε = 0.1, K = 10,
Vmin = |V(G)|/10) gives M = 85, which the unit tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def hit_probability(pattern_vertices: int, graph_vertices: int) -> float:
    """Lower bound on the probability that one random spider draw hits the pattern."""
    if graph_vertices <= 0:
        raise ValueError("graph_vertices must be positive")
    if pattern_vertices < 0:
        raise ValueError("pattern_vertices must be non-negative")
    return min(1.0, pattern_vertices / graph_vertices)


def failure_probability(hit: float, num_draws: int) -> float:
    """Upper bound on the probability that at most one draw hits the pattern.

    This is the paper's ``P_fail(P) ≤ (M + 1)(1 − P_hit)^M`` bound (valid for
    ``P_hit ≤ 1/2``; for larger hit probabilities the exact binomial tail is
    even smaller, so we return the exact expression capped by the bound).
    """
    if not 0.0 <= hit <= 1.0:
        raise ValueError("hit probability must lie in [0, 1]")
    if num_draws < 0:
        raise ValueError("num_draws must be non-negative")
    if num_draws == 0:
        return 1.0
    exact = (1.0 - hit) ** num_draws + num_draws * hit * (1.0 - hit) ** (num_draws - 1)
    bound = (num_draws + 1) * (1.0 - hit) ** num_draws
    return min(1.0, max(exact, 0.0) if hit > 0.5 else max(bound, 0.0))


def success_probability(
    num_draws: int,
    k: int,
    v_min: int,
    graph_vertices: int,
) -> float:
    """Lower bound on P[all top-K patterns identified] for a draw of ``num_draws`` spiders."""
    if k < 1:
        raise ValueError("k must be at least 1")
    hit = hit_probability(v_min, graph_vertices)
    fail = failure_probability(hit, num_draws)
    per_pattern = max(0.0, 1.0 - fail)
    return per_pattern ** k


def compute_seed_count(
    k: int,
    epsilon: float,
    v_min: int,
    graph_vertices: int,
    max_seed_count: Optional[int] = None,
) -> int:
    """The smallest ``M`` with ``success_probability(M) ≥ 1 − ε``.

    Found by doubling then binary search; monotonicity of the bound in ``M``
    holds for every ``M ≥ 1/hit`` and the search only relies on the final
    check, so the returned ``M`` always satisfies the bound — when the bound
    is unreachable within the 10M-seed search ceiling and no cap was
    supplied, a :class:`ValueError` is raised rather than silently returning
    an ``M`` that violates the promise.  A supplied ``max_seed_count`` always
    caps the result (the caller has explicitly traded the guarantee for a
    budget), even below the default floor of 2.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must lie strictly between 0 and 1")
    if v_min < 1 or graph_vertices < 1:
        raise ValueError("v_min and graph_vertices must be positive")
    if max_seed_count is not None and max_seed_count < 1:
        raise ValueError("max_seed_count must be at least 1")
    target = 1.0 - epsilon
    hit = hit_probability(v_min, graph_vertices)
    if hit >= 1.0:
        # Every draw hits, so two draws suffice — but a tighter explicit cap
        # still wins (the old max(2, min(2, cap)) returned 2 even for cap=1).
        return 2 if max_seed_count is None else min(2, max_seed_count)

    # Exponential search for an upper bracket.
    upper = 2
    while success_probability(upper, k, v_min, graph_vertices) < target:
        upper *= 2
        if upper > 10_000_000:
            if max_seed_count is None:
                raise ValueError(
                    f"no seed count up to 10M draws reaches the 1-epsilon={target} "
                    f"success bound (k={k}, v_min={v_min}, graph_vertices="
                    f"{graph_vertices}); supply max_seed_count to accept a "
                    "capped, weaker guarantee"
                )
            break
    # The bound is not perfectly monotone for tiny M, so anchor the lower end at 2.
    lo, hi = 2, upper
    while lo < hi:
        mid = (lo + hi) // 2
        if success_probability(mid, k, v_min, graph_vertices) >= target:
            hi = mid
        else:
            lo = mid + 1
    result = max(2, lo)
    if max_seed_count is not None:
        result = min(result, max_seed_count)
    return result


@dataclass(frozen=True)
class SeedPlan:
    """The resolved randomized-seeding plan for one SpiderMine run."""

    num_draws: int
    v_min: int
    graph_vertices: int
    k: int
    epsilon: float

    @property
    def guaranteed_success(self) -> float:
        """The success lower bound actually achieved by ``num_draws``."""
        return success_probability(self.num_draws, self.k, self.v_min, self.graph_vertices)


def plan_seeds(
    k: int,
    epsilon: float,
    v_min: int,
    graph_vertices: int,
    max_seed_count: Optional[int] = None,
) -> SeedPlan:
    """Compute the full seeding plan (``M`` plus the achieved guarantee)."""
    m = compute_seed_count(k, epsilon, v_min, graph_vertices, max_seed_count=max_seed_count)
    return SeedPlan(num_draws=m, v_min=v_min, graph_vertices=graph_vertices, k=k, epsilon=epsilon)
