"""Configuration for the SpiderMine miner.

The user-facing parameters are exactly the paper's inputs (support threshold
``σ``, result count ``K``, error bound ``ε``, diameter bound ``Dmax``, spider
radius ``r`` and the large-pattern vertex lower bound ``Vmin``).  The
remaining knobs are engineering limits that keep the pure-Python
implementation within memory/time budgets; each documents its default and its
effect on fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..parallel.policy import ExecutionPolicy
from ..patterns.support import SupportMeasure

#: Accepted values for :attr:`CachePolicy.mode`.
CACHE_MODES = ("readwrite", "readonly", "refresh")


@dataclass(frozen=True)
class CachePolicy:
    """Whether and how a mining run uses the persistent catalog's run cache.

    The cache (:mod:`repro.catalog.cache`) is content-addressed by
    ``(graph digest, config digest, code version)``, so a hit re-serves a
    result bit-identical to mining afresh — the policy is purely an
    engineering switch, like :class:`~repro.parallel.policy.ExecutionPolicy`.
    """

    directory: Optional[str] = None
    """Catalog root directory; ``None`` (the default) disables caching."""

    mode: str = "readwrite"
    """``"readwrite"`` serves hits and stores misses; ``"readonly"`` serves
    hits but never writes; ``"refresh"`` always re-mines and overwrites the
    stored run (cache-busting for debugging or after data corrections)."""

    store_graph: bool = True
    """Also ingest the (content-addressed) data-graph snapshot on insert, so
    the catalog stays self-contained — re-mining a stored run needs nothing
    but the store.  Identical graphs are stored once."""

    def __post_init__(self) -> None:
        if self.mode not in CACHE_MODES:
            raise ValueError(
                f"unknown cache mode {self.mode!r}; expected one of {CACHE_MODES}"
            )

    @classmethod
    def off(cls) -> "CachePolicy":
        """The disabled default."""
        return cls()

    @classmethod
    def at(cls, directory, mode: str = "readwrite") -> "CachePolicy":
        """Cache in ``directory`` (created on first use)."""
        return cls(directory=str(directory), mode=mode)

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    @property
    def reads(self) -> bool:
        """Whether lookups may serve cached runs."""
        return self.enabled and self.mode in ("readwrite", "readonly")

    @property
    def writes(self) -> bool:
        """Whether freshly mined runs are stored."""
        return self.enabled and self.mode in ("readwrite", "refresh")


@dataclass
class SpiderMineConfig:
    """All parameters of a SpiderMine run."""

    # --- the paper's user-specified inputs ---------------------------------
    min_support: int = 2
    """Support threshold σ: minimum (overlap-aware) support of a reported pattern."""

    k: int = 10
    """Number of largest patterns to return (the K in top-K)."""

    epsilon: float = 0.1
    """Error bound ε: the result misses a top-K pattern with probability ≤ ε."""

    d_max: int = 4
    """Diameter upper bound Dmax for reported patterns."""

    radius: int = 1
    """Spider radius r.  The paper finds r ∈ {1, 2} the right trade-off."""

    v_min: Optional[int] = None
    """Vmin: user lower bound on the vertex count of a "large" pattern.

    Used only to size the random seed draw (Lemma 2).  Defaults to
    |V(G)| / 10 as in the paper's worked example when left as ``None``."""

    support_measure: SupportMeasure = SupportMeasure.HARMFUL_OVERLAP
    """Single-graph support definition (SpiderMine adopts harmful overlap)."""

    seed: Optional[int] = 0
    """Seed for the random seed-spider draw; ``None`` uses a fresh RNG."""

    # --- engineering limits -------------------------------------------------
    max_spider_size: int = 6
    """Maximum number of vertices in a Stage-I spider.

    Stage I mines *all* frequent patterns of radius ≤ r; on label-poor graphs
    that set is exponential, so enumeration stops at this vertex count.  The
    default (6) comfortably covers the radius-1 stars that drive growth."""

    max_spiders: int = 20000
    """Hard cap on the number of distinct spiders mined in Stage I."""

    max_embeddings_per_pattern: int = 400
    """Embedding lists are truncated (deterministically) beyond this length.

    Truncation can only under-count support, so frequent output stays sound;
    it never manufactures frequency."""

    max_patterns_per_iteration: int = 1500
    """Cap on candidate patterns produced by one SpiderGrow sweep."""

    max_occurrences_grown_per_entry: int = 60
    """How many of a pattern's occurrences are expanded in one SpiderGrow sweep.

    Support is still computed over every stored occurrence; this cap only
    bounds the growth fan-out on patterns with very many embeddings (common
    on label-poor graphs such as the DBLP co-authorship network)."""

    max_extensions_per_boundary: int = 3
    """How many qualifying spiders may extend a pattern at one boundary vertex.

    Spiders are tried largest-first, so this keeps the best (maximal-overlap)
    extensions while bounding the branching factor of SpiderGrow."""

    max_growth_iterations: int = 30
    """Safety cap on Stage-III growth iterations ("until no new patterns")."""

    max_seed_count: Optional[int] = None
    """Optional cap on M (the seed draw size) for very small ε on small graphs."""

    keep_unmerged_if_empty: bool = True
    """If no merge ever happens (pruning would empty the candidate set), fall
    back to keeping the grown seeds so the miner still reports patterns.  The
    paper's analysis assumes merges occur for truly large patterns; this flag
    only affects degenerate inputs."""

    min_vertices_reported: int = 1
    """Patterns smaller than this many vertices are dropped from the result."""

    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    """How Stage-I mining executes (serial or a worker-process pool).

    Purely an engineering switch: the parallel driver merges per-unit results
    in canonical order, so mining output is identical for every policy — see
    :mod:`repro.parallel`.  Flip with ``ExecutionPolicy.process_pool(n)`` or
    the CLI ``--workers`` flag."""

    cache: CachePolicy = field(default_factory=CachePolicy)
    """Run-cache policy (disabled by default; see :class:`CachePolicy`).

    Like ``execution``, the cache never changes *what* is mined: its key
    digests exclude both policies, so a result mined serially, in parallel,
    or served from the cache is bit-identical.  Flip with
    ``CachePolicy.at(directory)`` or the CLI ``--cache DIR`` flag."""

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise ValueError("min_support must be at least 1")
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must lie strictly between 0 and 1")
        if self.d_max < 1:
            raise ValueError("d_max must be at least 1")
        if self.radius < 1:
            raise ValueError("radius must be at least 1")
        if self.v_min is not None and self.v_min < 1:
            raise ValueError("v_min must be positive when given")
        if self.max_spider_size < 1:
            raise ValueError("max_spider_size must be at least 1")
        if not isinstance(self.support_measure, SupportMeasure):
            self.support_measure = SupportMeasure(self.support_measure)
        if not isinstance(self.execution, ExecutionPolicy):
            raise ValueError("execution must be an ExecutionPolicy instance")
        if not isinstance(self.cache, CachePolicy):
            raise ValueError("cache must be a CachePolicy instance")

    @property
    def growth_iterations(self) -> int:
        """Stage-II iteration count ⌈Dmax / (2r)⌉ (Lemma 1)."""
        return max(1, -(-self.d_max // (2 * self.radius)))

    def resolved_v_min(self, num_graph_vertices: int) -> int:
        """The Vmin actually used: the user's value or |V(G)|/10 (paper's example)."""
        if self.v_min is not None:
            return self.v_min
        return max(1, num_graph_vertices // 10)
