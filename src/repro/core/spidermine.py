"""The SpiderMine algorithm (Algorithm 1 of the paper).

Three stages:

* **Stage I — Mining Spiders.**  Mine every frequent r-spider of the input
  graph (``repro.core.spider_miner``).  After this stage all frequent
  patterns of diameter ≤ 2r and all their embeddings are known.
* **Stage II — Large Pattern Identification.**  Draw ``M`` seed spiders
  uniformly at random, where ``M`` is computed from ``K``, ``ε`` and ``Vmin``
  by Lemma 2 (``repro.core.probability``).  Grow each seed for
  ``Dmax / 2r`` iterations with ``SpiderGrow``; merge patterns whose
  embeddings start to overlap (``CheckMerge``).  Keep only patterns that
  participated in a merge — with probability ≥ 1 − ε these contain a portion
  of every top-K large pattern.
* **Stage III — Large Pattern Recovery.**  Keep growing the retained patterns
  until no new frequent pattern appears, then report the top-K largest
  patterns whose diameter is within ``Dmax``.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional

from ..graph.algorithms import diameter as graph_diameter
from ..graph.view import GraphView
from ..obs import get_registry, get_tracer
from ..patterns.pattern import Pattern
from ..patterns.spider import Spider
from .config import SpiderMineConfig
from .growth import CandidateEntry, GrowthEngine, occurrence_support, occurrences_to_pattern
from .probability import SeedPlan, plan_seeds
from .results import MiningResult, MiningStatistics, stage_timer
from .spider_miner import SpiderMiner, build_spider_index


class SpiderMine:
    """Top-K largest frequent pattern miner for a single labeled graph.

    ``graph`` is any :class:`GraphView`; all three stages only read it.  For
    large inputs freeze the graph once (``graph.freeze()`` or
    ``repro.graph.freeze``) and mine the snapshot — the result is identical
    on either backend for a fixed seed, the frozen run is just faster.
    """

    def __init__(self, graph: GraphView, config: Optional[SpiderMineConfig] = None) -> None:
        self.graph = graph
        self.config = config or SpiderMineConfig()
        self._rng = random.Random(self.config.seed)
        self.spiders: List[Spider] = []
        self.seed_plan: Optional[SeedPlan] = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def mine(self) -> MiningResult:
        """Run all three stages and return the top-K largest patterns.

        When ``config.cache`` points at a catalog directory, the run cache is
        consulted first: a hit re-serves the stored result — bit-identical to
        mining afresh, because the cache key covers everything that affects
        output (graph structure, result-affecting config, package version)
        and nothing that does not (backend, worker count).  Fresh results are
        stored back according to the policy's mode.

        Contract on a cache hit: the *returned result* is complete, but the
        run-internals attributes a fresh mine populates as byproducts
        (``self.spiders``, ``self.seed_plan``) stay at their initial empty
        values — Stage I never executes.  Code that inspects those must mine
        without a cache (or with ``mode="refresh"``).
        """
        policy = self.config.cache
        if not policy.enabled:
            return self._mine_fresh()

        from ..catalog.cache import RunCache

        cache = RunCache(policy.directory)
        if policy.reads:
            cached = cache.load_result(self.graph, self.config)
            if cached is not None:
                return cached
        # The same RunCache flows down to Stage I, so the (expensive) graph
        # digest is computed once per mine, not once per layer.
        result = self._mine_fresh(run_cache=cache)
        if policy.writes:
            run_id = cache.store_result(self.graph, self.config, result)
            result.cache_info = {
                "status": "stored",
                "run_id": run_id,
                "store": str(policy.directory),
            }
            # Telemetry rides as a sidecar of the stored run: written only
            # when a live registry/tracer is installed, never part of the
            # cache key, gc-collected with its run.
            cache.store_telemetry(run_id, result)
        else:
            result.cache_info = {"status": "miss", "store": str(policy.directory)}
        return result

    def _mine_fresh(self, run_cache=None) -> MiningResult:
        """The three mining stages (full-result cache not consulted).

        ``run_cache`` is the caller's already-open
        :class:`~repro.catalog.cache.RunCache`, shared with Stage I so the
        graph digest is computed once; Stage I still applies the cache
        *policy* itself (its ``spiders`` runs remain independently cached).
        """
        config = self.config
        statistics = MiningStatistics()
        tracer = get_tracer()
        # Re-arm the seed RNG so repeated mine() calls on one instance are
        # deterministic — required for the cached == fresh parity guarantee.
        self._rng = random.Random(config.seed)
        start = time.perf_counter()

        # Stage I ---------------------------------------------------------
        with stage_timer(statistics, "stage1_spiders"), tracer.span(
            "mine.stage1", radius=config.radius
        ):
            self.spiders = SpiderMiner(self.graph, config, run_cache=run_cache).mine()
        statistics.num_spiders = len(self.spiders)
        spider_index = build_spider_index(self.spiders)
        engine = GrowthEngine(self.graph, spider_index, config)

        # Stage II --------------------------------------------------------
        with stage_timer(statistics, "stage2_identification"), tracer.span(
            "mine.stage2"
        ) as stage2_span:
            seeds = self._draw_seeds()
            statistics.num_seeds = len(seeds)
            entries = engine.seed_entries(seeds)
            for _ in range(config.growth_iterations):
                if not entries:
                    break
                entries = engine.grow(entries, merge_enabled=True)
                statistics.num_growth_iterations += 1
            merged_entries = {code: e for code, e in entries.items() if e.merged}
            if not merged_entries and config.keep_unmerged_if_empty:
                merged_entries = entries
            stage2_span.annotate(seeds=statistics.num_seeds, merges=engine.merge_events)
        statistics.num_merges = engine.merge_events

        # Stage III -------------------------------------------------------
        archive: Dict[str, CandidateEntry] = dict(merged_entries)
        with stage_timer(statistics, "stage3_recovery"), tracer.span("mine.stage3"):
            entries = merged_entries
            for _ in range(config.max_growth_iterations):
                if not entries:
                    break
                next_entries = engine.grow(entries, merge_enabled=True)
                statistics.num_growth_iterations += 1
                new_codes = set(next_entries) - set(archive)
                for code in set(next_entries):
                    existing = archive.get(code)
                    if existing is None:
                        archive[code] = next_entries[code]
                    else:
                        existing.occurrences = engine._dedupe(
                            existing.occurrences + next_entries[code].occurrences
                        )
                if not new_codes:
                    break
                entries = next_entries
        statistics.num_candidates_generated = engine.candidates_generated

        patterns = self._report(archive)
        runtime = time.perf_counter() - start
        registry = get_registry()
        if registry.enabled:
            registry.publish("mine.statistics", statistics)
            registry.counter("mine.runs")
        return MiningResult(
            algorithm="SpiderMine",
            patterns=patterns,
            runtime_seconds=runtime,
            statistics=statistics,
            parameters={
                "min_support": config.min_support,
                "k": config.k,
                "epsilon": config.epsilon,
                "d_max": config.d_max,
                "radius": config.radius,
                "support_measure": config.support_measure.value,
                "num_seeds": statistics.num_seeds,
                "execution_mode": config.execution.mode,
                "workers": config.execution.n_workers,
            },
        )

    # ------------------------------------------------------------------ #
    # stage II helpers
    # ------------------------------------------------------------------ #
    def _draw_seeds(self) -> List[Spider]:
        """RandomSeed: draw M spiders uniformly at random from the Stage-I set."""
        config = self.config
        if not self.spiders:
            return []
        v_min = config.resolved_v_min(self.graph.num_vertices)
        self.seed_plan = plan_seeds(
            k=config.k,
            epsilon=config.epsilon,
            v_min=v_min,
            graph_vertices=max(1, self.graph.num_vertices),
            max_seed_count=config.max_seed_count,
        )
        m = self.seed_plan.num_draws
        if m >= len(self.spiders):
            return list(self.spiders)
        return self._rng.sample(self.spiders, m)

    # ------------------------------------------------------------------ #
    # stage III reporting
    # ------------------------------------------------------------------ #
    def _report(self, archive: Dict[str, CandidateEntry]) -> List[Pattern]:
        """Convert surviving candidates to Pattern objects and keep the top-K."""
        config = self.config
        candidates: List[Pattern] = []
        for entry in archive.values():
            support = occurrence_support(entry.occurrences, config.support_measure)
            if support < config.min_support:
                continue
            pattern = occurrences_to_pattern(self.graph, entry.occurrences)
            if pattern.num_vertices < config.min_vertices_reported:
                continue
            if graph_diameter(pattern.graph) > config.d_max:
                continue
            candidates.append(pattern)
        candidates.sort(key=lambda p: (p.num_vertices, p.num_edges, p.code), reverse=True)
        return candidates[: config.k]


def mine_top_k_patterns(
    graph: GraphView,
    min_support: int,
    k: int = 10,
    d_max: int = 4,
    epsilon: float = 0.1,
    radius: int = 1,
    v_min: Optional[int] = None,
    seed: Optional[int] = 0,
    **overrides,
) -> MiningResult:
    """One-call convenience API: run SpiderMine with the paper's parameters.

    Example
    -------
    >>> from repro.graph import synthetic_single_graph
    >>> data = synthetic_single_graph(200, 40, 2.0, 2, 12, 2, 2, 3, 2, seed=1)
    >>> result = mine_top_k_patterns(data.graph, min_support=2, k=5, d_max=6)
    >>> result.largest_size_vertices >= 5
    True
    """
    config = SpiderMineConfig(
        min_support=min_support,
        k=k,
        d_max=d_max,
        epsilon=epsilon,
        radius=radius,
        v_min=v_min,
        seed=seed,
        **overrides,
    )
    return SpiderMine(graph, config).mine()
