"""Stage I of SpiderMine: mine all frequent r-spiders.

A level-wise pattern-growth search anchored at the spider head.  Level 0 is
the set of frequent single-vertex patterns (one per frequent label); each
level extends every spider either *forward* (a new edge from a pattern vertex
at depth < r to a fresh vertex) or by *closing* an edge between two existing
pattern vertices.  Both operations keep the pattern r-bounded from the head,
so by construction every generated pattern is an r-spider (Definition 4) and
— because the search is exhaustive up to ``max_spider_size`` vertices — Stage
I "knows all the frequent patterns up to a diameter 2r with all their
embeddings", as the paper requires.

Candidates are deduplicated with head-distinguished canonical codes; support
is computed with the configured single-graph measure.

Mining units
------------
Spider codes distinguish the head's label, so the search trees rooted at
different frequent labels never interact: no code collision, no shared
frontier, no shared support counting.  The miner exploits that by splitting
the search into **units** — one per frequent label, in canonical (repr-sorted)
label order — each mined independently by :meth:`SpiderMiner.mine_unit` into
per-level spider buckets.  :func:`merge_unit_levels` then interleaves the
buckets level-major / unit-minor, which reproduces the insertion order of the
classic single-loop search exactly (including ``max_spiders`` truncation).
Units are the fan-out boundary of the parallel engine
(:mod:`repro.parallel.driver`): because the merge is canonical, serial and
process-pool runs are bit-identical for a fixed seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..graph.isomorphism import SubgraphMatcher
from ..graph.labeled_graph import LabeledGraph, Vertex
from ..graph.view import GraphView
from ..obs import get_registry, get_tracer
from ..patterns.embedding import Embedding
from ..patterns.spider import Spider, head_distinguished_code
from ..patterns.support import SupportMeasure, is_frequent
from .config import SpiderMineConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel.policy import ExecutionPolicy

_HEAD = 0  # the head is always pattern vertex 0


@dataclass
class _Candidate:
    """A spider candidate under construction (graph + anchored embeddings)."""

    graph: LabeledGraph
    depth: Dict[int, int]                       # pattern vertex -> distance from head
    embeddings: List[Dict[int, Vertex]]         # pattern vertex -> data vertex


class SpiderMiner:
    """Mines all frequent r-spiders of a single data graph.

    ``graph`` is any read-only :class:`GraphView` — pass a
    :class:`~repro.graph.frozen.FrozenGraph` snapshot for large inputs; the
    miner never mutates it.  Pattern graphs under construction stay mutable.
    """

    def __init__(
        self,
        graph: GraphView,
        config: Optional[SpiderMineConfig] = None,
        run_cache=None,
    ) -> None:
        self.graph = graph
        self.config = config or SpiderMineConfig()
        self._unit_labels: Optional[List[Hashable]] = None
        # An optional already-open catalog RunCache (shared by SpiderMine so
        # the graph digest is computed once per mine).  The cache *policy*
        # still comes from config.cache; this only reuses the handle.
        self._run_cache = run_cache

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def mine(self) -> List[Spider]:
        """All frequent r-spiders, each with its (possibly capped) embedding list.

        Execution follows ``config.execution``: the serial policy mines every
        unit in-process; a process policy fans units out over a worker pool
        sharing one zero-copy graph snapshot.  Both paths feed
        :func:`merge_unit_levels`, so the returned list is identical.

        With an active ``config.cache``, the catalog's run cache is consulted
        first under the ``spiders`` kind (keyed on the Stage-I-relevant config
        fields only): a hit skips the search — including the whole parallel
        fan-out — and re-serves the stored spider list unchanged.
        """
        cache = None
        policy = self.config.cache
        if policy.enabled:
            cache = self._run_cache
            if cache is None:
                from ..catalog.cache import RunCache

                cache = RunCache(policy.directory)
            if policy.reads:
                cached = cache.load_spiders(self.graph, self.config)
                if cached is not None:
                    return cached
        if self.config.execution.uses_processes and self.unit_labels():
            from ..parallel.driver import mine_units_in_processes

            unit_levels = mine_units_in_processes(
                self.graph, self.config, num_units=len(self.unit_labels())
            )
        else:
            unit_levels = self._mine_units_serial()
        spiders = merge_unit_levels(unit_levels, self.config.max_spiders)
        registry = get_registry()
        if registry.enabled:
            registry.counter("mine.stage1.units", len(unit_levels))
            registry.counter("mine.stage1.spiders", len(spiders))
        if cache is not None and policy.writes:
            cache.store_spiders(self.graph, self.config, spiders)
        return spiders

    def _mine_units_serial(self) -> Dict[int, List[List[Spider]]]:
        """All units in-process, level-synchronized across units.

        Units advance one level at a time, round-robin, and expansion stops as
        soon as the mined total reaches ``max_spiders``: everything past that
        point sits after the truncation cut of :func:`merge_unit_levels`
        (levels only deepen), so the serial path never does meaningfully more
        work than the classic single-frontier search did when the cap binds.
        """
        cap = self.config.max_spiders
        searches = {
            unit: self.iter_unit_levels(unit) for unit in range(len(self.unit_labels()))
        }
        unit_levels: Dict[int, List[List[Spider]]] = {unit: [] for unit in searches}
        active = sorted(searches)
        total = 0
        # The round-robin interleave means no per-unit block of code to wrap
        # in a span: per-unit time is accumulated across level steps and
        # emitted as synthetic completed spans afterwards (Tracer.record).
        tracer = get_tracer()
        timing = tracer.enabled
        elapsed: Dict[int, float] = {}
        while active and total < cap:
            still_active = []
            for unit in active:
                if timing:
                    step_start = time.monotonic()
                bucket = next(searches[unit], None)
                if timing:
                    elapsed[unit] = (
                        elapsed.get(unit, 0.0) + time.monotonic() - step_start
                    )
                if bucket is None:
                    continue
                unit_levels[unit].append(bucket)
                total += len(bucket)
                still_active.append(unit)
            active = still_active
        if timing:
            for unit in sorted(elapsed):
                tracer.record(
                    "mine.stage1.unit",
                    elapsed[unit],
                    unit=unit,
                    spiders=sum(len(bucket) for bucket in unit_levels[unit]),
                )
        return unit_levels

    def unit_labels(self) -> List[Hashable]:
        """The mining units: frequent labels in canonical (repr-sorted) order.

        Frequency here is the raw member count — the same pre-filter the
        level-0 candidates always used — so the unit list is a pure function
        of (graph, min_support) and agrees across processes and backends.
        """
        if self._unit_labels is None:
            counts = self.graph.label_counts()
            self._unit_labels = [
                label
                for label in sorted(counts, key=repr)
                if counts[label] >= self.config.min_support
            ]
        return self._unit_labels

    def mine_unit(self, unit: int) -> List[List[Spider]]:
        """Mine one unit exhaustively: per-level lists of frequent spiders.

        Pure with respect to the unit index: touches only the (read-only)
        data graph and the config, so units can run in any order, in any
        process.  ``levels[d]`` holds the frequent spiders first reached by
        ``d`` extension steps, in the deterministic discovery order of the
        level-wise search restricted to this unit's root label.
        """
        return list(self.iter_unit_levels(unit))

    def iter_unit_levels(self, unit: int):
        """Lazily yield one unit's per-level spider buckets (see :meth:`mine_unit`).

        The serial path consumes units through this generator so it can stop
        all searches as soon as the global ``max_spiders`` cap is covered;
        workers simply drain it.
        """
        config = self.config
        root = self._initial_candidate(self.unit_labels()[unit])
        mined: Set[str] = set()
        level0: List[Spider] = []
        spider = self._to_spider(root)
        if spider is not None:
            mined.add(spider.spider_code())
            level0.append(spider)
        yield level0
        # The root stays on the frontier even when its own support measure
        # falls short — level 0 has always seeded extensions unconditionally.
        frontier = [root]
        while frontier and len(mined) < config.max_spiders:
            next_by_code: Dict[str, _Candidate] = {}
            for candidate in frontier:
                at_size_cap = candidate.graph.num_vertices >= config.max_spider_size
                # At the vertex cap, closing edges (which add no vertex) are
                # still allowed so cyclic spiders like triangles are not lost.
                extensions = (
                    self._closing_extensions(candidate)
                    if at_size_cap
                    else self._extensions(candidate)
                )
                for extended in extensions:
                    code = head_distinguished_code(extended.graph, _HEAD)
                    if code in mined:
                        continue
                    existing = next_by_code.get(code)
                    if existing is None:
                        next_by_code[code] = extended
                    else:
                        self._merge_embeddings(existing, extended)
            frontier = []
            bucket: List[Spider] = []
            for code, candidate in next_by_code.items():
                spider = self._to_spider(candidate)
                if spider is None:
                    continue
                mined.add(code)
                bucket.append(spider)
                frontier.append(candidate)
                if len(mined) >= config.max_spiders:
                    break
            yield bucket

    # ------------------------------------------------------------------ #
    # level 0
    # ------------------------------------------------------------------ #
    def _initial_candidate(self, label: Hashable) -> _Candidate:
        """The single-vertex root candidate of one unit."""
        vertices = sorted(self.graph.vertices_with_label(label), key=repr)
        pattern = LabeledGraph()
        pattern.add_vertex(_HEAD, label)
        embeddings = [{_HEAD: v} for v in vertices]
        return _Candidate(graph=pattern, depth={_HEAD: 0}, embeddings=self._cap(embeddings))

    # ------------------------------------------------------------------ #
    # extension generation
    # ------------------------------------------------------------------ #
    def _extensions(self, candidate: _Candidate) -> List[_Candidate]:
        """All frequent one-step extensions of ``candidate``."""
        forward = self._forward_extensions(candidate)
        closing = self._closing_extensions(candidate)
        return forward + closing

    def _forward_extensions(self, candidate: _Candidate) -> List[_Candidate]:
        config = self.config
        radius = config.radius
        # descriptor: (attach vertex, new label) -> list of extended embeddings
        grouped: Dict[Tuple[int, object], List[Dict[int, Vertex]]] = {}
        attach_points = [v for v, d in candidate.depth.items() if d < radius]
        for mapping in candidate.embeddings:
            used = set(mapping.values())
            for p_vertex in attach_points:
                g_vertex = mapping[p_vertex]
                for neighbor in sorted(self.graph.neighbors(g_vertex), key=repr):
                    if neighbor in used:
                        continue
                    key = (p_vertex, self.graph.label(neighbor))
                    new_mapping = dict(mapping)
                    new_mapping[max(candidate.graph.vertices()) + 1] = neighbor
                    grouped.setdefault(key, []).append(new_mapping)

        extensions: List[_Candidate] = []
        new_vertex = max(candidate.graph.vertices()) + 1
        for (p_vertex, label), mappings in grouped.items():
            if len(mappings) < config.min_support:
                continue
            graph = candidate.graph.copy()
            graph.add_vertex(new_vertex, label)
            graph.add_edge(p_vertex, new_vertex)
            depth = dict(candidate.depth)
            depth[new_vertex] = depth[p_vertex] + 1
            extensions.append(
                _Candidate(graph=graph, depth=depth, embeddings=self._dedupe(mappings))
            )
        return extensions

    def _closing_extensions(self, candidate: _Candidate) -> List[_Candidate]:
        config = self.config
        vertices = sorted(candidate.graph.vertices())
        if len(vertices) < 3:
            return []
        grouped: Dict[Tuple[int, int], List[Dict[int, Vertex]]] = {}
        non_edges = [
            (u, v)
            for i, u in enumerate(vertices)
            for v in vertices[i + 1:]
            if not candidate.graph.has_edge(u, v)
        ]
        if not non_edges:
            return []
        for mapping in candidate.embeddings:
            for u, v in non_edges:
                if self.graph.has_edge(mapping[u], mapping[v]):
                    grouped.setdefault((u, v), []).append(dict(mapping))
        extensions: List[_Candidate] = []
        for (u, v), mappings in grouped.items():
            if len(mappings) < config.min_support:
                continue
            graph = candidate.graph.copy()
            graph.add_edge(u, v)
            depth = dict(candidate.depth)
            extensions.append(
                _Candidate(graph=graph, depth=depth, embeddings=self._dedupe(mappings))
            )
        return extensions

    # ------------------------------------------------------------------ #
    # bookkeeping helpers
    # ------------------------------------------------------------------ #
    def _dedupe(self, mappings: List[Dict[int, Vertex]]) -> List[Dict[int, Vertex]]:
        """Keep one mapping per (head image, vertex image set), capped."""
        seen: Set[Tuple[Vertex, FrozenSet[Vertex]]] = set()
        unique: List[Dict[int, Vertex]] = []
        for mapping in mappings:
            key = (mapping[_HEAD], frozenset(mapping.values()))
            if key in seen:
                continue
            seen.add(key)
            unique.append(mapping)
        return self._cap(unique)

    def _cap(self, mappings: List[Dict[int, Vertex]]) -> List[Dict[int, Vertex]]:
        cap = self.config.max_embeddings_per_pattern
        if len(mappings) <= cap:
            return mappings
        return mappings[:cap]

    def _merge_embeddings(self, target: _Candidate, extra: _Candidate) -> None:
        """Union the embedding lists of two candidates for the same spider code.

        Candidates reached through different growth orders can name their
        pattern vertices differently even though the codes agree, so the extra
        embeddings are realigned through one head-preserving isomorphism
        before being unioned.  The anchored search runs in BFS order rooted at
        the head (the matcher's anchored-order contract), so it never degrades
        to label-scan candidate pools on these connected spider graphs.

        *Which* head-preserving isomorphism is found first does not matter
        downstream: two choices differ by an automorphism fixing the head, so
        the realigned embeddings have identical (head image, vertex image,
        edge image) triples — the dedup key here and everything Stage II/III
        reads (occurrence images, the head index).  Only the literal mapping
        dicts differ, which reach nothing but the version-fenced spiders
        cache payload; mining result digests were verified bit-identical
        across the 1.5.0 anchored-order change on merge-heavy runs.
        """
        if extra.graph == target.graph:
            rename = {v: v for v in extra.graph.vertices()}
        else:
            matcher = SubgraphMatcher(extra.graph, target.graph, induced=True)
            found = matcher.find_embeddings(limit=1, anchor=(_HEAD, _HEAD))
            if not found:
                return
            rename = found[0]
        seen = {(m[_HEAD], frozenset(m.values())) for m in target.embeddings}
        for mapping in extra.embeddings:
            remapped = {rename[p]: g for p, g in mapping.items()}
            key = (remapped[_HEAD], frozenset(remapped.values()))
            if key not in seen and len(target.embeddings) < self.config.max_embeddings_per_pattern:
                target.embeddings.append(remapped)
                seen.add(key)

    def _to_spider(self, candidate: _Candidate) -> Optional[Spider]:
        """Build a :class:`Spider` if the candidate is frequent, else ``None``.

        Frequency goes through the overlap engine's ``is_frequent``: its raw
        count and distinct-image upper bounds skip the MIS entirely for the
        many candidates whose embedding lists already fall short.
        """
        embeddings = [Embedding.from_dict(m) for m in candidate.embeddings]
        spider = Spider(
            graph=candidate.graph.copy(),
            embeddings=embeddings,
            head=_HEAD,
            radius=self.config.radius,
        )
        if not is_frequent(
            spider, self.config.min_support, measure=self.config.support_measure
        ):
            return None
        return spider


def merge_unit_levels(
    unit_levels: Dict[int, List[List[Spider]]], max_spiders: int
) -> List[Spider]:
    """Deterministic merge of per-unit spider buckets into the result list.

    Interleaves level-major / unit-minor — all level-``d`` spiders, units in
    canonical order, before any level-``d+1`` spider — and truncates at
    ``max_spiders``.  This is exactly the insertion order of the classic
    single-frontier search, so the merged list is independent of *where* and
    in *what order* the units were mined: the determinism guarantee of the
    parallel engine.
    """
    merged: List[Spider] = []
    if max_spiders <= 0:
        return merged
    depth = max((len(levels) for levels in unit_levels.values()), default=0)
    for level in range(depth):
        for unit in sorted(unit_levels):
            levels = unit_levels[unit]
            if level >= len(levels):
                continue
            for spider in levels[level]:
                merged.append(spider)
                if len(merged) >= max_spiders:
                    return merged
    return merged


def mine_spiders(
    graph: GraphView,
    min_support: int,
    radius: int = 1,
    max_spider_size: int = 6,
    support_measure: SupportMeasure = SupportMeasure.HARMFUL_OVERLAP,
    max_spiders: int = 20000,
    max_embeddings_per_pattern: int = 400,
    execution: Optional["ExecutionPolicy"] = None,
) -> List[Spider]:
    """Convenience wrapper around :class:`SpiderMiner` (the paper's ``InitSpider``)."""
    config = SpiderMineConfig(
        min_support=min_support,
        radius=radius,
        max_spider_size=max_spider_size,
        support_measure=support_measure,
        max_spiders=max_spiders,
        max_embeddings_per_pattern=max_embeddings_per_pattern,
    )
    if execution is not None:
        config.execution = execution
    return SpiderMiner(graph, config).mine()


def build_spider_index(spiders: List[Spider]) -> Dict[Vertex, List[Tuple[Spider, Embedding]]]:
    """``Spider(v)`` from the paper: data vertex → spiders with an embedding headed there."""
    index: Dict[Vertex, List[Tuple[Spider, Embedding]]] = {}
    for spider in spiders:
        for embedding in spider.embeddings:
            head_image = dict(embedding.mapping)[spider.head]
            index.setdefault(head_image, []).append((spider, embedding))
    return index
