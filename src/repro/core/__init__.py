"""SpiderMine — the paper's primary contribution.

Public surface:

* :class:`SpiderMine` / :func:`mine_top_k_patterns` — the full algorithm;
* :class:`SpiderMineConfig` — every paper parameter plus engineering limits;
* :class:`MiningResult` / :class:`MiningStatistics` — uniform result objects;
* :class:`SpiderMiner` / :func:`mine_spiders` — Stage I on its own;
* :func:`compute_seed_count` / :func:`plan_seeds` — the Lemma 2 seed sizing;
* :class:`GrowthEngine` — SpiderGrow / SpiderExtend / CheckMerge.
"""

from .config import CachePolicy, SpiderMineConfig
from .probability import (
    SeedPlan,
    compute_seed_count,
    failure_probability,
    hit_probability,
    plan_seeds,
    success_probability,
)
from .results import MiningResult, MiningStatistics
from .spider_miner import SpiderMiner, build_spider_index, merge_unit_levels, mine_spiders
from .growth import (
    CandidateEntry,
    GrowthEngine,
    Occurrence,
    occurrence_code,
    occurrence_subgraph,
    occurrence_support,
    occurrences_to_pattern,
)
from .spidermine import SpiderMine, mine_top_k_patterns

__all__ = [
    "CachePolicy",
    "SpiderMineConfig",
    "SeedPlan",
    "compute_seed_count",
    "failure_probability",
    "hit_probability",
    "plan_seeds",
    "success_probability",
    "MiningResult",
    "MiningStatistics",
    "SpiderMiner",
    "build_spider_index",
    "merge_unit_levels",
    "mine_spiders",
    "CandidateEntry",
    "GrowthEngine",
    "Occurrence",
    "occurrence_code",
    "occurrence_subgraph",
    "occurrence_support",
    "occurrences_to_pattern",
    "SpiderMine",
    "mine_top_k_patterns",
]
