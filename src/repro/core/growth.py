"""SpiderGrow / SpiderExtend / CheckMerge — the growth engine of SpiderMine.

Stages II and III of SpiderMine repeatedly run ``SpiderGrow``: every current
pattern is extended at its boundary vertices by appending frequent spiders
(Algorithm 2/3 of the paper), and patterns whose embeddings start to overlap
are merged (Algorithm 4, ``CheckMerge``).

The engine is *occurrence-based*: a pattern is represented by the set of its
**occurrences** — the concrete (vertex set, edge set) images of its
embeddings in the data graph — grouped under the canonical code of the
occurrence subgraph.  This is equivalent to carrying abstract pattern graphs
plus embedding maps (the code identifies the abstract pattern; the occurrence
is the embedding image) but makes gluing during growth and merging trivial:
it is just a union of vertex/edge sets, with the paper's two SpiderExtend
conditions checked directly on data vertices:

* **Maximal overlap** (Algorithm 3, condition I): the spider used at boundary
  vertex ``v`` must cover every pattern edge incident to ``v``;
* **Internal integrity** (condition II): the spider must not contribute an
  edge between two vertices that are already part of the pattern occurrence.

Support is the configured single-graph measure computed over the occurrence
vertex/edge sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.canonical import canonical_code
from ..graph.isomorphism import SubgraphMatcher
from ..graph.labeled_graph import LabeledGraph, Vertex, normalise_edge
from ..graph.view import GraphView
from ..patterns.embedding import Embedding
from ..patterns.overlap import (
    DEFAULT_EXACT_LIMIT,
    EmbeddingIndex,
    independent_set_size,
)
from ..patterns.pattern import Pattern
from ..patterns.spider import Spider
from ..patterns.support import SupportMeasure
from .config import SpiderMineConfig

EdgeTuple = Tuple[Vertex, Vertex]

# Shared with Embedding.edge_image — one endpoint ordering, it can never drift.
_normalise_edge = normalise_edge


@dataclass(frozen=True)
class Occurrence:
    """One concrete image of a pattern in the data graph."""

    vertices: FrozenSet[Vertex]
    edges: FrozenSet[EdgeTuple]

    @classmethod
    def from_embedding(cls, pattern_graph: LabeledGraph, embedding: Embedding) -> "Occurrence":
        mapping = dict(embedding.mapping)
        vertices = frozenset(mapping.values())
        edges = frozenset(
            _normalise_edge(mapping[u], mapping[v]) for u, v in pattern_graph.edges()
        )
        return cls(vertices=vertices, edges=edges)

    @classmethod
    def from_vertices_edges(
        cls, vertices: Iterable[Vertex], edges: Iterable[EdgeTuple]
    ) -> "Occurrence":
        return cls(
            vertices=frozenset(vertices),
            edges=frozenset(_normalise_edge(u, v) for u, v in edges),
        )

    def union(self, other: "Occurrence") -> "Occurrence":
        return Occurrence(vertices=self.vertices | other.vertices, edges=self.edges | other.edges)

    def overlaps(self, other: "Occurrence", edge_based: bool = False) -> bool:
        """Pairwise conflict test under the requested overlap notion.

        Spot checks only — batch overlap scans go through the shared
        :class:`~repro.patterns.overlap.EmbeddingIndex` instead.
        """
        if edge_based:
            return bool(self.edges & other.edges)
        return bool(self.vertices & other.vertices)

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)


@dataclass
class CandidateEntry:
    """A candidate pattern during growth: its occurrences plus growth metadata."""

    code: str
    occurrences: List[Occurrence]
    merged: bool = False
    frontier: Optional[Set[Vertex]] = None   # data vertices added by the last growth step


def occurrence_code(data_graph: GraphView, occurrence: Occurrence) -> str:
    """Canonical code of the pattern an occurrence realises."""
    sub = LabeledGraph()
    for v in occurrence.vertices:
        sub.add_vertex(v, data_graph.label(v))
    for u, v in occurrence.edges:
        sub.add_edge(u, v)
    return canonical_code(sub)


def occurrence_subgraph(data_graph: GraphView, occurrence: Occurrence) -> LabeledGraph:
    """The labeled subgraph realised by an occurrence (its vertices + its edges)."""
    sub = LabeledGraph()
    for v in occurrence.vertices:
        sub.add_vertex(v, data_graph.label(v))
    for u, v in occurrence.edges:
        sub.add_edge(u, v)
    return sub


# ---------------------------------------------------------------------- #
# occurrence-level support
# ---------------------------------------------------------------------- #
def occurrence_support(
    occurrences: Sequence[Occurrence],
    measure: SupportMeasure,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> int:
    """Support of a pattern given its distinct occurrences.

    Deduplication follows the measure's conflict notion: vertex sets for the
    vertex-overlap measures, edge sets for the edge-disjoint measure (two
    occurrences on the same vertices through different data edges are distinct
    edge-disjoint witnesses; an edgeless occurrence dedupes on its vertices).
    The conflict graph comes from the shared inverted-index overlap engine.
    """
    edge_based = measure is SupportMeasure.EDGE_DISJOINT
    seen: Set[object] = set()
    items: List[Occurrence] = []
    for occ in occurrences:
        if edge_based:
            key = ("e", occ.edges) if occ.edges else ("v", occ.vertices)
        else:
            key = occ.vertices
        if key in seen:
            continue
        seen.add(key)
        items.append(occ)
    if measure is SupportMeasure.EMBEDDING_IMAGES:
        return len(items)
    index = EmbeddingIndex.from_occurrences(items)
    conflict = index.conflict_graph(edge_based=edge_based)
    return independent_set_size(conflict, exact_limit)


def occurrences_to_pattern(data_graph: GraphView, occurrences: Sequence[Occurrence]) -> Pattern:
    """Convert a group of same-code occurrences into a :class:`Pattern` object.

    The pattern graph is the first occurrence's subgraph relabeled onto
    ``0..n-1``; each occurrence contributes one embedding found by matching
    the pattern graph inside the occurrence subgraph.
    """
    if not occurrences:
        raise ValueError("cannot build a pattern from zero occurrences")
    first = occurrence_subgraph(data_graph, occurrences[0])
    order = sorted(first.vertices(), key=repr)
    rename = {v: i for i, v in enumerate(order)}
    pattern_graph = first.relabeled(rename)
    embeddings: List[Embedding] = []
    seen_images: Set[FrozenSet[Vertex]] = set()
    for occ in occurrences:
        if occ.vertices in seen_images:
            continue
        sub = occurrence_subgraph(data_graph, occ)
        matcher = SubgraphMatcher(pattern_graph, sub, induced=False)
        found = matcher.find_embeddings(limit=1)
        if not found:
            continue
        embeddings.append(Embedding.from_dict(found[0]))
        seen_images.add(occ.vertices)
    return Pattern(graph=pattern_graph, embeddings=embeddings)


# ---------------------------------------------------------------------- #
# the growth engine
# ---------------------------------------------------------------------- #
class GrowthEngine:
    """Implements SpiderGrow over a fixed data graph and Stage-I spider index."""

    def __init__(
        self,
        data_graph: GraphView,
        spider_index: Dict[Vertex, List[Tuple[Spider, Embedding]]],
        config: SpiderMineConfig,
    ) -> None:
        self.data_graph = data_graph
        self.config = config
        # Pre-convert the spider index to occurrences once, keeping only the
        # *maximal* occurrences at each head: a spider occurrence whose vertex
        # set is contained in another occurrence at the same head can never
        # satisfy the maximal-overlap condition better than the larger one, so
        # dropping it removes redundant growth branches without losing any
        # reachable pattern.
        self._spider_occurrences: Dict[Vertex, List[Occurrence]] = {}
        for head, entries in spider_index.items():
            occs: List[Occurrence] = []
            seen: Set[FrozenSet[Vertex]] = set()
            for spider, embedding in entries:
                occ = Occurrence.from_embedding(spider.graph, embedding)
                if occ.vertices not in seen:
                    seen.add(occ.vertices)
                    occs.append(occ)
            # Larger spiders first: they satisfy maximal overlap more often and
            # grow the pattern faster (fewer, bigger steps).
            occs.sort(key=lambda o: (o.num_vertices, o.num_edges), reverse=True)
            maximal: List[Occurrence] = []
            for occ in occs:
                if not any(occ.vertices <= bigger.vertices and occ.edges <= bigger.edges
                           for bigger in maximal):
                    maximal.append(occ)
            self._spider_occurrences[head] = maximal
        # Memoised occurrence codes: the same (vertices, edges) pair is coded
        # many times across growth iterations and merge checks.
        self._code_cache: Dict[Tuple[FrozenSet[Vertex], FrozenSet[EdgeTuple]], str] = {}
        # Counters surfaced in MiningStatistics.
        self.merge_events = 0
        self.candidates_generated = 0

    def _code(self, occurrence: Occurrence) -> str:
        key = (occurrence.vertices, occurrence.edges)
        cached = self._code_cache.get(key)
        if cached is None:
            cached = occurrence_code(self.data_graph, occurrence)
            self._code_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    def seed_entries(self, seeds: Sequence[Spider]) -> Dict[str, CandidateEntry]:
        """Initial candidate entries from the randomly drawn seed spiders."""
        entries: Dict[str, CandidateEntry] = {}
        for spider in seeds:
            occurrences = [
                Occurrence.from_embedding(spider.graph, e) for e in spider.embeddings
            ]
            code = self._code(occurrences[0]) if occurrences else None
            if code is None:
                continue
            entry = entries.get(code)
            if entry is None:
                entries[code] = CandidateEntry(
                    code=code,
                    occurrences=self._dedupe(occurrences),
                    frontier=(
                        set().union(*(o.vertices for o in occurrences))
                        if occurrences
                        else set()
                    ),
                )
            else:
                entry.occurrences = self._dedupe(entry.occurrences + occurrences)
                if entry.frontier is not None:
                    for occ in occurrences:
                        entry.frontier |= occ.vertices
        return entries

    # ------------------------------------------------------------------ #
    def grow(
        self,
        entries: Dict[str, CandidateEntry],
        merge_enabled: bool = True,
    ) -> Dict[str, CandidateEntry]:
        """One SpiderGrow iteration: extend every entry, then check merges.

        Returns the next generation of candidate entries.  Entries that cannot
        be extended are carried over unchanged (a pattern that stops growing
        must not silently vanish).
        """
        config = self.config
        new_groups: Dict[str, List[Occurrence]] = {}
        new_meta: Dict[str, Dict[str, object]] = {}
        usage: Dict[Vertex, Set[str]] = {}

        for code, entry in entries.items():
            grew = False
            for occ in entry.occurrences[: config.max_occurrences_grown_per_entry]:
                for new_occ, head_used in self._extend_occurrence(occ, entry.frontier):
                    grew = True
                    new_code = self._code(new_occ)
                    new_groups.setdefault(new_code, []).append(new_occ)
                    meta = new_meta.setdefault(
                        new_code, {"merged": False, "frontier": set(), "parents": set()}
                    )
                    meta["merged"] = bool(meta["merged"]) or entry.merged
                    meta["frontier"] |= new_occ.vertices - occ.vertices  # type: ignore[operator]
                    meta["parents"].add(code)  # type: ignore[union-attr]
                    usage.setdefault(head_used, set()).add(code)
                    self.candidates_generated += 1
            if not grew:
                # Carry the unextendable entry forward untouched.
                new_groups.setdefault(code, []).extend(entry.occurrences)
                meta = new_meta.setdefault(
                    code,
                    {
                        "merged": entry.merged,
                        "frontier": set(entry.frontier or set()),
                        "parents": {code},
                    },
                )
                meta["merged"] = bool(meta["merged"]) or entry.merged

        next_entries = self._build_entries(new_groups, new_meta)

        # A pattern whose every extension fell below the support threshold must
        # not vanish: carry it forward unchanged (it is a local maximum).
        surviving_parents: Set[str] = set()
        for code, _entry in next_entries.items():
            parents = new_meta.get(code, {}).get("parents", set())
            surviving_parents |= set(parents)  # type: ignore[arg-type]
        for code, entry in entries.items():
            if code not in surviving_parents and code not in next_entries:
                next_entries[code] = entry

        if merge_enabled:
            self._check_merge(next_entries, usage)

        next_entries = self._prune_subsumed(next_entries)
        next_entries = self._enforce_caps(next_entries)
        return next_entries

    # ------------------------------------------------------------------ #
    # SpiderExtend on one occurrence
    # ------------------------------------------------------------------ #
    def _extend_occurrence(
        self,
        occurrence: Occurrence,
        frontier: Optional[Set[Vertex]],
    ) -> List[Tuple[Occurrence, Vertex]]:
        """All one-spider extensions of ``occurrence`` (the paper's SpiderExtend).

        Returns (new occurrence, boundary data vertex whose spider was used).
        """
        results: List[Tuple[Occurrence, Vertex]] = []
        boundary = occurrence.vertices if frontier is None else (occurrence.vertices & frontier)
        if not boundary:
            boundary = occurrence.vertices
        per_boundary_cap = self.config.max_extensions_per_boundary
        for head in boundary:
            incident = {e for e in occurrence.edges if head in e}
            accepted = 0
            for spider_occ in self._spider_occurrences.get(head, ()):
                new_vertices = spider_occ.vertices - occurrence.vertices
                if not new_vertices:
                    continue
                # Condition (I) — maximal overlap: the spider covers every
                # pattern edge incident to the boundary vertex.
                if not incident <= spider_occ.edges:
                    continue
                # Condition (II) — internal integrity: no spider edge may
                # connect two vertices already inside the pattern occurrence.
                violates = False
                for u, v in spider_occ.edges - occurrence.edges:
                    if u in occurrence.vertices and v in occurrence.vertices:
                        violates = True
                        break
                if violates:
                    continue
                results.append((occurrence.union(spider_occ), head))
                accepted += 1
                if accepted >= per_boundary_cap:
                    break
        return results

    # ------------------------------------------------------------------ #
    # CheckMerge
    # ------------------------------------------------------------------ #
    def _check_merge(
        self,
        entries: Dict[str, CandidateEntry],
        usage: Dict[Vertex, Set[str]],
    ) -> None:
        """Merge candidate patterns whose occurrences started to overlap.

        Detection follows the paper: two patterns are merge candidates when
        they used a spider headed at the same data vertex (``usage``) or when
        their occurrences share vertices.  Merged results are added to
        ``entries`` with ``merged=True``; the inputs are also flagged so the
        Stage-II pruning keeps them.
        """
        # The shared overlap engine's inverted vertex→ids map: merge candidates
        # are discovered per shared data vertex, so only occurrence pairs that
        # actually overlap are ever examined, and hard caps bound the work on
        # dense, label-poor graphs.
        occurrences_per_entry_indexed = 30
        pairs_per_vertex_cap = 12
        merge_unions_cap = 2000
        indexed: List[Tuple[str, Occurrence]] = []
        for code, entry in entries.items():
            for occ in entry.occurrences[:occurrences_per_entry_indexed]:
                indexed.append((code, occ))
        vertex_index = EmbeddingIndex.from_occurrences(
            occ for _, occ in indexed
        ).vertex_map

        merged_groups: Dict[str, List[Occurrence]] = {}
        merged_meta: Dict[str, Dict[str, object]] = {}
        unions_done = 0
        seen_union_keys: Set[Tuple[FrozenSet[Vertex], FrozenSet[EdgeTuple]]] = set()
        for vertex in sorted(vertex_index, key=repr):
            covering = [indexed[i] for i in vertex_index[vertex]]
            if len(covering) < 2 or unions_done >= merge_unions_cap:
                continue
            pairs_here = 0
            for i in range(len(covering)):
                if pairs_here >= pairs_per_vertex_cap or unions_done >= merge_unions_cap:
                    break
                code_a, occ_a = covering[i]
                for j in range(i + 1, len(covering)):
                    if pairs_here >= pairs_per_vertex_cap or unions_done >= merge_unions_cap:
                        break
                    code_b, occ_b = covering[j]
                    if code_a == code_b:
                        continue
                    entry_a = entries.get(code_a)
                    entry_b = entries.get(code_b)
                    if entry_a is None or entry_b is None:
                        continue
                    pairs_here += 1
                    union = occ_a.union(occ_b)
                    if union.vertices == occ_a.vertices or union.vertices == occ_b.vertices:
                        # One occurrence contains the other: the two growth
                        # lineages already cover overlapping ground, which is
                        # exactly the merge evidence Lemma 1 waits for — flag
                        # both patterns as merged without creating a new one.
                        entry_a.merged = True
                        entry_b.merged = True
                        continue
                    union_key = (union.vertices, union.edges)
                    if union_key in seen_union_keys:
                        continue
                    seen_union_keys.add(union_key)
                    unions_done += 1
                    new_code = self._code(union)
                    merged_groups.setdefault(new_code, []).append(union)
                    meta = merged_meta.setdefault(
                        new_code, {"merged": True, "frontier": set(), "parents": set()}
                    )
                    meta["frontier"] |= union.vertices  # type: ignore[operator]
                    meta["parents"] |= {code_a, code_b}  # type: ignore[operator]
                    entry_a.merged = True
                    entry_b.merged = True
                    self.merge_events += 1

        for code, entry in self._build_entries(merged_groups, merged_meta).items():
            existing = entries.get(code)
            if existing is None:
                entries[code] = entry
            else:
                existing.occurrences = self._dedupe(existing.occurrences + entry.occurrences)
                existing.merged = True
                if existing.frontier is not None and entry.frontier is not None:
                    existing.frontier |= entry.frontier

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _build_entries(
        self,
        groups: Dict[str, List[Occurrence]],
        meta: Dict[str, Dict[str, object]],
    ) -> Dict[str, CandidateEntry]:
        """Turn grouped occurrences into frequency-checked candidate entries."""
        config = self.config
        entries: Dict[str, CandidateEntry] = {}
        for code, occurrences in groups.items():
            deduped = self._dedupe(occurrences)
            support = occurrence_support(deduped, config.support_measure)
            if support < config.min_support:
                continue
            info = meta.get(code, {})
            entries[code] = CandidateEntry(
                code=code,
                occurrences=deduped,
                merged=bool(info.get("merged", False)),
                frontier=set(info.get("frontier", set())) or None,
            )
        return entries

    def _prune_subsumed(self, entries: Dict[str, CandidateEntry]) -> Dict[str, CandidateEntry]:
        """Drop candidates fully covered by a larger candidate.

        An entry A is *subsumed* by entry B when every occurrence of A is a
        vertex-subset of some occurrence of B.  A is then a sub-pattern of B
        with no additional support evidence, so — since the miner only looks
        for the top-K *largest* patterns — keeping A merely multiplies the
        next iteration's work.  The merged flag of A is propagated to B so
        Stage-II pruning never loses merge evidence.
        """
        if len(entries) <= 1:
            return entries
        ordered = sorted(
            entries.values(),
            key=lambda e: (
                max(o.num_vertices for o in e.occurrences),
                max(o.num_edges for o in e.occurrences),
            ),
            reverse=True,
        )
        # Inverted index: data vertex -> codes of larger-or-equal entries seen so far.
        vertex_index: Dict[Vertex, Set[str]] = {}
        kept: Dict[str, CandidateEntry] = {}
        for entry in ordered:
            candidate_codes: Optional[Set[str]] = None
            smallest = min(entry.occurrences, key=lambda o: o.num_vertices)
            for v in smallest.vertices:
                codes = vertex_index.get(v)
                if not codes:
                    candidate_codes = set()
                    break
                if candidate_codes is None:
                    candidate_codes = set(codes)
                else:
                    candidate_codes &= codes
                if not candidate_codes:
                    break
            subsumed_by: Optional[CandidateEntry] = None
            for code in sorted(candidate_codes or ()):
                other = kept.get(code)
                if other is None or other is entry:
                    continue
                if all(
                    any(occ.vertices <= big.vertices and occ.edges <= big.edges
                        for big in other.occurrences)
                    for occ in entry.occurrences
                ):
                    subsumed_by = other
                    break
            if subsumed_by is not None:
                subsumed_by.merged = subsumed_by.merged or entry.merged
                continue
            kept[entry.code] = entry
            for occ in entry.occurrences:
                for v in occ.vertices:
                    vertex_index.setdefault(v, set()).add(entry.code)
        return kept

    def _dedupe(self, occurrences: Sequence[Occurrence]) -> List[Occurrence]:
        seen: Set[Tuple[FrozenSet[Vertex], FrozenSet[EdgeTuple]]] = set()
        unique: List[Occurrence] = []
        for occ in occurrences:
            key = (occ.vertices, occ.edges)
            if key in seen:
                continue
            seen.add(key)
            unique.append(occ)
            if len(unique) >= self.config.max_embeddings_per_pattern:
                break
        return unique

    def _enforce_caps(self, entries: Dict[str, CandidateEntry]) -> Dict[str, CandidateEntry]:
        cap = self.config.max_patterns_per_iteration
        if len(entries) <= cap:
            return entries
        # Keep the largest candidates (ties broken by support, then code) —
        # the miner is after the top-K *largest* patterns.
        ranked = sorted(
            entries.values(),
            key=lambda e: (
                max(o.num_vertices for o in e.occurrences),
                len(e.occurrences),
                e.code,
            ),
            reverse=True,
        )
        return {entry.code: entry for entry in ranked[:cap]}
