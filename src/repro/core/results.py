"""Result and statistics objects returned by the miners.

Every miner in this package (SpiderMine and the baselines) returns a
:class:`MiningResult`, so benchmarks and examples can treat them uniformly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, List, Optional

from ..patterns.pattern import Pattern
from ..patterns.lattice import size_distribution


@dataclass
class MiningStatistics:
    """Counters collected during a mining run (all optional, default 0)."""

    num_spiders: int = 0
    num_seeds: int = 0
    num_merges: int = 0
    num_candidates_generated: int = 0
    num_isomorphism_checks: int = 0
    num_isomorphism_checks_pruned: int = 0
    num_growth_iterations: int = 0
    stage_durations: Dict[str, float] = field(default_factory=dict)

    def record_stage(self, name: str, seconds: float) -> None:
        self.stage_durations[name] = self.stage_durations.get(name, 0.0) + seconds

    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready dict (stage durations in sorted key order)."""
        return {
            "num_spiders": self.num_spiders,
            "num_seeds": self.num_seeds,
            "num_merges": self.num_merges,
            "num_candidates_generated": self.num_candidates_generated,
            "num_isomorphism_checks": self.num_isomorphism_checks,
            "num_isomorphism_checks_pruned": self.num_isomorphism_checks_pruned,
            "num_growth_iterations": self.num_growth_iterations,
            "stage_durations": {
                name: self.stage_durations[name] for name in sorted(self.stage_durations)
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MiningStatistics":
        """Inverse of :meth:`to_dict`; missing counters default to zero."""
        known = {f.name for f in fields(cls)}
        fields_in = {k: v for k, v in data.items() if k in known}
        durations = dict(fields_in.pop("stage_durations", {}) or {})
        return cls(stage_durations=durations, **fields_in)


@dataclass
class MiningResult:
    """Patterns found by a miner plus run metadata."""

    algorithm: str
    patterns: List[Pattern]
    runtime_seconds: float = 0.0
    statistics: MiningStatistics = field(default_factory=MiningStatistics)
    parameters: Dict[str, object] = field(default_factory=dict)
    cache_info: Optional[Dict[str, object]] = field(default=None, repr=False, compare=False)
    """Run-cache provenance (``{"status": "hit"|"miss"|"stored", ...}``).

    Set by :meth:`repro.core.spidermine.SpiderMine.mine` when a
    :class:`~repro.core.config.CachePolicy` is active.  Purely informational:
    never serialised and never part of the result digest, so a cache-served
    result stays bit-identical to the freshly mined one."""

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    @property
    def largest_pattern(self) -> Optional[Pattern]:
        if not self.patterns:
            return None
        return max(self.patterns, key=lambda p: (p.num_vertices, p.num_edges))

    @property
    def largest_size_vertices(self) -> int:
        largest = self.largest_pattern
        return largest.num_vertices if largest else 0

    @property
    def largest_size_edges(self) -> int:
        largest = self.largest_pattern
        return largest.num_edges if largest else 0

    def size_distribution(self, by: str = "vertices") -> Dict[int, int]:
        """size → count, the format the paper's histogram figures use."""
        return size_distribution(self.patterns, by=by)

    def sizes(self, by: str = "vertices") -> List[int]:
        """Pattern sizes, largest first."""
        key = (lambda p: p.num_vertices) if by == "vertices" else (lambda p: p.num_edges)
        return sorted((key(p) for p in self.patterns), reverse=True)

    def top(self, k: int) -> List[Pattern]:
        ranked = sorted(
            self.patterns, key=lambda p: (p.num_vertices, p.num_edges), reverse=True
        )
        return ranked[:k]

    def to_json_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready payload of the full result.

        Canonical ordering throughout (sorted keys, canonical vertex/edge
        order inside pattern graphs), so the emission is byte-stable across
        processes and Python versions — the contract behind the catalog's
        content-addressed digests.  See :mod:`repro.catalog.formats`.
        """
        from ..catalog.formats import result_payload

        return result_payload(self)

    def digest(self) -> str:
        """Stable digest of the deterministic core of this result.

        Excludes wall-clock fields (``runtime_seconds``, stage durations) and
        execution metadata (worker count, execution mode), so a serial run, a
        parallel run and a cache-served copy of the same mining output all
        share one digest.
        """
        from ..catalog.formats import result_digest

        return result_digest(self)

    def summary(self) -> str:
        """One-line human-readable summary used by the CLI and examples."""
        dist = self.size_distribution()
        return (
            f"{self.algorithm}: {len(self.patterns)} patterns, "
            f"largest |V|={self.largest_size_vertices}, "
            f"runtime={self.runtime_seconds:.3f}s, sizes={dist}"
        )


@contextmanager
def stage_timer(statistics: MiningStatistics, stage: str) -> Iterator[None]:
    """Context manager that adds the elapsed wall time of a stage to the stats."""
    start = time.perf_counter()
    try:
        yield
    finally:
        statistics.record_stage(stage, time.perf_counter() - start)
