"""The pattern catalog: persistent storage and serving for mining runs.

The fourth architectural layer of the reproduction (beneath graph →
patterns/core → parallel): mine once, store durably, answer queries fast.

* :mod:`repro.catalog.formats` — canonical JSON payloads and stable
  content digests for graphs, spiders, results and configs;
* :mod:`repro.catalog.store` — :class:`CatalogStore`, the content-addressed
  on-disk store (graph snapshots + run records, atomic JSON index);
* :mod:`repro.catalog.cache` — :class:`RunCache`, the
  ``(graph, config, code version)``-keyed run cache that lets
  :meth:`SpiderMine.mine` re-serve bit-identical results instead of
  re-mining (enable with :class:`repro.core.config.CachePolicy` or the CLI
  ``--cache DIR``);
* :mod:`repro.catalog.query` — :class:`CatalogQuery`, top-k / label-filter /
  containment queries over stored runs without loading data graphs
  (construct via :func:`repro.api.open_catalog`);
* :mod:`repro.catalog.pattern_index` — the persisted needle-side domain
  index (per-run sidecars derived at mine time) that makes containment's
  candidate seeding a pure metadata check;
* :mod:`repro.catalog.server` — ``repro serve``, the asyncio HTTP JSON API
  over a read-only store;
* :mod:`repro.catalog.lru` — the thread-safe LRU bounding the hot payload
  and pattern-index caches.
"""

from .cache import RunCache, RunKey, code_version
from .formats import (
    FORMAT_VERSION,
    CatalogFormatError,
    canonical_json,
    config_digest,
    graph_digest,
    payload_digest,
    result_digest,
    result_from_payload,
    result_payload,
)
from .lru import LRUCache
from .pattern_index import IndexStats, PatternDomainEntry
from .query import CatalogQuery, PatternRecord
from .server import CatalogServer, ServerHandle, serve
from .store import CatalogError, CatalogStore

__all__ = [
    "FORMAT_VERSION",
    "CatalogError",
    "CatalogFormatError",
    "CatalogQuery",
    "CatalogServer",
    "CatalogStore",
    "IndexStats",
    "LRUCache",
    "PatternDomainEntry",
    "PatternRecord",
    "RunCache",
    "RunKey",
    "ServerHandle",
    "serve",
    "canonical_json",
    "code_version",
    "config_digest",
    "graph_digest",
    "payload_digest",
    "result_digest",
    "result_from_payload",
    "result_payload",
]
