"""A small thread-safe LRU cache shared by the catalog serving tier.

Three hot-object caches use it: :class:`~repro.catalog.query.CatalogQuery`'s
per-run payload cache (previously an unbounded dict — the bug this class
fixes), its per-run pattern-index cache, and the HTTP server's hot-index
reuse across requests.  The lock makes it safe under the server's
executor-thread concurrency; every operation is O(1).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, TypeVar

__all__ = ["LRUCache"]

K = TypeVar("K")
V = TypeVar("V")


class LRUCache:
    """Bounded mapping evicting the least-recently-used entry.

    ``max_entries <= 0`` disables storage entirely (every lookup misses),
    which keeps call sites free of "is caching on?" branches.
    """

    def __init__(self, max_entries: int) -> None:
        self.max_entries = int(max_entries)
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        with self._lock:
            if key not in self._data:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]

    def put(self, key: K, value: V) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_build(self, key: K, build: Callable[[], V]) -> V:
        """The cached value, building (and storing) it on a miss.

        ``build`` runs outside the lock — two threads may race to build the
        same entry, which is safe for the catalog's idempotent derivations
        (last writer wins, both values are equal).
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = build()
        self.put(key, value)
        return value

    def discard(self, key: K) -> None:
        with self._lock:
            self._data.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._data),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # The unified Snapshottable spelling (repro.obs); stats() predates it
    # and stays for existing callers.
    to_dict = stats
