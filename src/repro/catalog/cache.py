"""The content-addressed run cache: mine once, re-serve bit-identically.

A run is addressed by :class:`RunKey` — the digests of the data graph's
canonical structure and of the result-affecting config fields, plus the
package version and the run *kind* (``"result"`` for full
:class:`~repro.core.results.MiningResult`\\ s, ``"spiders"`` for Stage-I
spider sets).  Two consequences of that key choice:

* **Execution-neutral.**  Worker count, partition strategy, backend and the
  cache policy itself are excluded (they provably do not change results —
  the parallel engine's parity guarantee), so a result mined with
  ``--workers 8`` on the CSR backend serves a later serial dict-backend run
  of the same graph+config, and vice versa.
* **Version-fenced.**  ``code_version`` (the installed package version) is in
  the key, so upgrading the miner silently invalidates old entries instead
  of re-serving output a newer algorithm would no longer produce.

:class:`RunCache` is deliberately dumb: look up, deserialise, insert.  The
policy — whether to read, whether to write (:class:`repro.core.config.CachePolicy`)
— is enforced by the callers (`SpiderMine.mine`, `SpiderMiner.mine`), which
keeps every decision about *when* to cache next to the mining code it guards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..core.results import MiningResult
from ..graph.io import graph_to_dict
from ..graph.view import GraphView
from ..obs import get_registry, get_tracer
from ..patterns.spider import Spider
from .formats import (
    FORMAT_VERSION,
    config_digest,
    config_payload,
    payload_digest,
    result_from_payload,
    result_payload,
    run_id_for_key,
    run_summary_from_record,
    spiders_from_payload,
    spiders_payload,
    stage1_config_digest,
    stage1_config_payload,
)
from .pattern_index import run_index_payload
from .store import CatalogError, CatalogStore, PathLike

__all__ = ["RunKey", "RunCache", "code_version"]

RUN_KINDS = ("result", "spiders")


def code_version() -> str:
    """The installed package version — the cache key's code fence."""
    from .. import __version__

    return __version__


@dataclass(frozen=True)
class RunKey:
    """The content address of one cached run."""

    graph_digest: str
    config_digest: str
    code_version: str
    kind: str = "result"

    def payload(self) -> Dict[str, str]:
        return {
            "graph": self.graph_digest,
            "config": self.config_digest,
            "code_version": self.code_version,
            "kind": self.kind,
        }

    @property
    def run_id(self) -> str:
        return run_id_for_key(self.payload())


class RunCache:
    """Serve and store mining runs in a :class:`CatalogStore`."""

    def __init__(self, store: Union[CatalogStore, PathLike]) -> None:
        self.store = store if isinstance(store, CatalogStore) else CatalogStore(store)
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        # Graph digests memoised by object identity: serialising the whole
        # data graph is the dominant key cost, and one mine() touches the key
        # several times (lookup, insert, graph put).  Each entry keeps a
        # strong reference to its graph, so a memoised id can never be
        # recycled by a different object while the entry exists — the
        # ``is`` check below is therefore exact, even for a long-lived cache.
        self._graph_digest_memo: Dict[int, tuple] = {}
        # The canonical body behind each digest, kept so a later graph
        # snapshot insert reuses it instead of re-serialising (popped on
        # first use).  Memory note: the digest memo above already pins the
        # graph itself, which dominates the body's footprint.
        self._graph_body_memo: Dict[int, Dict] = {}

    def to_dict(self) -> Dict[str, int]:
        """Cache traffic counters (the :class:`~repro.obs.Snapshottable` shape)."""
        return {"hits": self.hits, "misses": self.misses, "inserts": self.inserts}

    def _count(self, kind: str, outcome: str) -> None:
        """Mirror one cache event into the telemetry registry (free when off)."""
        registry = get_registry()
        if registry.enabled:
            registry.counter(f"cache.{kind}.{outcome}")

    def _graph_digest(self, graph: GraphView) -> str:
        entry = self._graph_digest_memo.get(id(graph))
        if entry is not None and entry[0] is graph:
            return entry[1]
        body = graph_to_dict(graph)
        digest = payload_digest(body)
        self._graph_digest_memo[id(graph)] = (graph, digest)
        self._graph_body_memo[id(graph)] = body
        return digest

    def _put_graph_snapshot(self, graph: GraphView, digest: str) -> None:
        """Store the graph once, reusing the canonical body the key built."""
        body = self._graph_body_memo.pop(id(graph), None)
        self.store.put_graph(graph, digest=digest, body=body)

    def _discard_graph_body(self, graph: GraphView) -> None:
        """Free the retained canonical body once no insert can follow.

        Called on every hit and on readonly lookups: the body only exists to
        feed a later :meth:`_put_graph_snapshot`, and for a large graph it is
        the one memo entry whose footprint rivals the graph itself."""
        self._graph_body_memo.pop(id(graph), None)

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    def result_key(self, graph: GraphView, config) -> RunKey:
        return RunKey(
            graph_digest=self._graph_digest(graph),
            config_digest=config_digest(config),
            code_version=code_version(),
            kind="result",
        )

    def spiders_key(self, graph: GraphView, config) -> RunKey:
        return RunKey(
            graph_digest=self._graph_digest(graph),
            config_digest=stage1_config_digest(config),
            code_version=code_version(),
            kind="spiders",
        )

    # ------------------------------------------------------------------ #
    # full mining results
    # ------------------------------------------------------------------ #
    def load_result(self, graph: GraphView, config) -> Optional[MiningResult]:
        """The cached result for ``(graph, config)``, or ``None`` on a miss.

        An unreadable or format-mismatched stored object (truncated file, a
        record written by a newer release) degrades to a **miss** rather than
        failing the mine: the caller re-mines, and in ``readwrite`` mode the
        broken object is overwritten by the fresh insert.
        """
        key = self.result_key(graph, config)
        if not config.cache.writes:
            self._discard_graph_body(graph)
        if not self.store.has_run(key.run_id):
            self.misses += 1
            self._count("result", "misses")
            return None
        try:
            record = self.store.get_run_payload(key.run_id)
            result = result_from_payload(record["result"])
        except (CatalogError, KeyError, TypeError, ValueError):
            self.misses += 1
            self._count("result", "misses")
            return None
        self._discard_graph_body(graph)
        result.cache_info = {
            "status": "hit",
            "run_id": key.run_id,
            "store": str(self.store.root),
        }
        self.hits += 1
        self._count("result", "hits")
        return result

    def store_result(self, graph: GraphView, config, result: MiningResult) -> str:
        """Insert a freshly mined result; returns the run id."""
        key = self.result_key(graph, config)
        record = {
            "format": FORMAT_VERSION,
            "kind": "result",
            "key": key.payload(),
            "config": config_payload(config),
            "result": result_payload(result),
        }
        if config.cache.store_graph:
            self._put_graph_snapshot(graph, key.graph_digest)
        self.store.put_run(key.run_id, record, run_summary_from_record(record))
        # Derive the needle-side pattern index while the payload is in hand,
        # so the serving tier's containment queries never pay the per-run
        # derivation cold (invalidation rides the same code_version fence).
        self.store.put_pattern_index(
            key.run_id,
            run_index_payload(
                key.run_id, record["result"]["patterns"], key.code_version
            ),
        )
        self.inserts += 1
        self._count("result", "inserts")
        return key.run_id

    def store_telemetry(self, run_id: str, result: MiningResult) -> Optional[Dict]:
        """Persist the run-telemetry sidecar for ``run_id``, if telemetry is on.

        Captures the active registry snapshot, the active tracer's span
        trees, and the run's :class:`~repro.core.results.MiningStatistics`
        into ``objects/telemetry/<run_id>.json``.  Returns the payload, or
        ``None`` when both registry and tracer are the null defaults (no
        sidecar is written — disabled telemetry leaves no residue).
        """
        registry = get_registry()
        tracer = get_tracer()
        if not (registry.enabled or tracer.enabled):
            return None
        payload = {
            "format": FORMAT_VERSION,
            "kind": "telemetry",
            "run_id": run_id,
            "code_version": code_version(),
            "metrics": registry.snapshot(),
            "spans": tracer.to_dict()["spans"],
            "statistics": result.statistics.to_dict(),
        }
        self.store.put_telemetry(run_id, payload)
        return payload

    # ------------------------------------------------------------------ #
    # Stage-I spider sets
    # ------------------------------------------------------------------ #
    def load_spiders(self, graph: GraphView, config) -> Optional[List[Spider]]:
        key = self.spiders_key(graph, config)
        if not config.cache.writes:
            self._discard_graph_body(graph)
        if not self.store.has_run(key.run_id):
            self.misses += 1
            self._count("spiders", "misses")
            return None
        try:
            record = self.store.get_run_payload(key.run_id)
            spiders = spiders_from_payload(record["spiders"])
        except (CatalogError, KeyError, TypeError, ValueError):
            # Same contract as load_result: broken objects are misses.
            self.misses += 1
            self._count("spiders", "misses")
            return None
        self._discard_graph_body(graph)
        self.hits += 1
        self._count("spiders", "hits")
        return spiders

    def store_spiders(self, graph: GraphView, config, spiders: List[Spider]) -> str:
        key = self.spiders_key(graph, config)
        record = {
            "format": FORMAT_VERSION,
            "kind": "spiders",
            "key": key.payload(),
            "config": stage1_config_payload(config),
            "spiders": spiders_payload(spiders),
        }
        if config.cache.store_graph:
            self._put_graph_snapshot(graph, key.graph_digest)
        self.store.put_run(key.run_id, record, run_summary_from_record(record))
        self.inserts += 1
        self._count("spiders", "inserts")
        return key.run_id
