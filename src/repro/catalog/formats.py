"""Canonical on-disk formats and content digests for the pattern catalog.

Everything the catalog persists — data-graph snapshots, Stage-I spiders, full
:class:`~repro.core.results.MiningResult`\\ s — goes through this module, which
guarantees two properties:

* **Determinism.**  Payloads are plain JSON trees with canonical ordering
  everywhere (repr-sorted graph vertices/edges, sorted object keys at dump
  time, insertion-order-preserving lists where mining order is itself the
  deterministic contract).  Two processes — any Python version, any
  ``PYTHONHASHSEED`` — serialising the same object produce the same bytes.
* **Stable digests.**  :func:`payload_digest` is a SHA-256 over the canonical
  JSON bytes, so digests are usable as content addresses: the run cache keys
  on ``(graph_digest, config_digest, code_version)`` and a result's
  :func:`result_digest` certifies bit-identical mining output across
  backends, worker counts and cache hits.

Vertex identifiers follow the conventions of :mod:`repro.graph.io`: they are
coerced to strings on disk and decoded back to ``int`` when integer-like
(mixed int/str graphs whose ids collide under ``str()`` are out of scope, as
they already are for the ``.lg``/JSON graph formats).  Labels must be
JSON-native values (``str``/``int``/``float``/``bool``/``None``) — every
dataset and generator in this package uses strings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Sequence

from ..core.results import MiningResult, MiningStatistics
from ..graph.io import coerce_vertex_id, graph_from_dict, graph_to_dict
from ..graph.labeled_graph import LabeledGraph, Vertex
from ..graph.view import GraphView
from ..patterns.embedding import Embedding
from ..patterns.pattern import Pattern
from ..patterns.spider import Spider

__all__ = [
    "FORMAT_VERSION",
    "CatalogFormatError",
    "canonical_json",
    "payload_digest",
    "graph_digest",
    "config_payload",
    "config_digest",
    "stage1_config_digest",
    "pattern_payload",
    "pattern_from_payload",
    "spider_payload",
    "spider_from_payload",
    "spiders_payload",
    "spiders_from_payload",
    "spiders_digest",
    "result_payload",
    "result_from_payload",
    "result_digest",
    "run_id_for_key",
    "run_summary_from_record",
]

#: Version stamp written into every stored object.  Bump on any change to the
#: payload shapes below; readers refuse unknown versions instead of guessing.
FORMAT_VERSION = 1

#: Config fields that never influence mining output and are therefore
#: excluded from every config digest (the parity guarantee of the parallel
#: engine and the cache itself).
_RESULT_NEUTRAL_CONFIG_FIELDS = frozenset({"execution", "cache"})

#: Config fields only Stages II/III read — excluded from the ``spiders`` run
#: key.  A deny-list on purpose (mirroring the full-result key): a *new*
#: config field lands in **both** keys until someone proves Stage I ignores
#: it and adds it here, so a forgotten field can only cause an unnecessary
#: cache miss — never a stale Stage-I serve feeding a wrong "fresh" result.
STAGE2_ONLY_CONFIG_FIELDS = frozenset({
    "k",
    "epsilon",
    "d_max",
    "v_min",
    "seed",
    "max_patterns_per_iteration",
    "max_occurrences_grown_per_entry",
    "max_extensions_per_boundary",
    "max_growth_iterations",
    "max_seed_count",
    "keep_unmerged_if_empty",
    "min_vertices_reported",
})

#: Config fields Stage I reads — the complement of the two sets above, spelt
#: out so the three-way classification is *total* and checkable.  The runtime
#: payload builders stay deny-list-based (see :func:`stage1_config_payload`);
#: this set exists so every config field has exactly one declared home, which
#: ``reprolint``'s CACHE001 rule (and the drift-guard test built on it)
#: enforces against :class:`repro.core.config.SpiderMineConfig`.
STAGE1_CONFIG_FIELDS = frozenset({
    "min_support",
    "radius",
    "max_spider_size",
    "max_spiders",
    "max_embeddings_per_pattern",
    "support_measure",
})

#: Parameter keys that record *how* a run executed rather than *what* it
#: produced; stripped before digesting a result.
_VOLATILE_PARAMETER_KEYS = ("execution_mode", "workers")


class CatalogFormatError(ValueError):
    """Raised for payloads that cannot be serialised or parsed."""


# ---------------------------------------------------------------------- #
# canonical JSON + digests
# ---------------------------------------------------------------------- #
def canonical_json(payload) -> str:
    """The canonical JSON encoding: sorted keys, compact, ASCII-safe."""
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )
    except (TypeError, ValueError) as error:
        raise CatalogFormatError(
            f"payload is not canonically JSON-serialisable: {error}"
        ) from error


def payload_digest(payload) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()


def graph_digest(graph: GraphView) -> str:
    """Content digest of a graph's canonical structure.

    Backend- and insertion-order-independent: ``graph_to_dict`` emits
    repr-sorted vertices and normalised repr-sorted edges, so two structurally
    identical graphs always share a digest.
    """
    return payload_digest(graph_to_dict(graph))


# ---------------------------------------------------------------------- #
# vertex coding (matches repro.graph.io's conventions)
# ---------------------------------------------------------------------- #
def _encode_vertex(vertex: Vertex) -> str:
    return str(vertex)


def _decode_vertex(text: str) -> Vertex:
    return coerce_vertex_id(text)


# ---------------------------------------------------------------------- #
# config digests
# ---------------------------------------------------------------------- #
def _canonical_value(name: str, value):
    """A config field value as a canonical JSON scalar."""
    if hasattr(value, "value"):  # enums (SupportMeasure)
        return value.value
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CatalogFormatError(
        f"config field {name!r} has non-JSON-native value {value!r}"
    )


def config_payload(config, field_names: Optional[Sequence[str]] = None) -> Dict:
    """The result-affecting fields of a :class:`SpiderMineConfig` as a dict.

    ``field_names=None`` takes every dataclass field except the
    result-neutral policies (``execution``, ``cache``), so any *new* config
    knob automatically invalidates old cache entries — the safe default.
    """
    if field_names is None:
        field_names = [
            f.name
            for f in dataclass_fields(config)
            if f.name not in _RESULT_NEUTRAL_CONFIG_FIELDS
        ]
    return {name: _canonical_value(name, getattr(config, name)) for name in field_names}


def config_digest(config) -> str:
    """Digest over every result-affecting config field (full-run key)."""
    return payload_digest(config_payload(config))


def stage1_config_payload(config) -> Dict:
    """The Stage-I-relevant config fields (the ``spiders`` run key space)."""
    names = [
        f.name
        for f in dataclass_fields(config)
        if f.name not in _RESULT_NEUTRAL_CONFIG_FIELDS
        and f.name not in STAGE2_ONLY_CONFIG_FIELDS
    ]
    return config_payload(config, names)


def stage1_config_digest(config) -> str:
    """Digest over the Stage-I-relevant fields only (``spiders`` run key)."""
    return payload_digest(stage1_config_payload(config))


# ---------------------------------------------------------------------- #
# pattern graphs (order-preserving, unlike the canonical data-graph format)
# ---------------------------------------------------------------------- #
def _pattern_graph_payload(graph: LabeledGraph) -> Dict:
    """Pattern graphs keep *insertion* order: the miners' discovery order is
    deterministic, and preserving it exactly makes the round trip the
    identity (a reloaded spider grows precisely like the original)."""
    return {
        "vertices": [[_encode_vertex(v), graph.label(v)] for v in graph.vertices()],
        "edges": [[_encode_vertex(u), _encode_vertex(v)] for u, v in graph.edges()],
    }


def _pattern_graph_from_payload(data: Dict) -> LabeledGraph:
    graph = LabeledGraph()
    for key, label in data["vertices"]:
        graph.add_vertex(_decode_vertex(key), label)
    for u, v in data["edges"]:
        graph.add_edge(_decode_vertex(u), _decode_vertex(v))
    return graph


def _embedding_payload(embedding: Embedding) -> List[List[str]]:
    return [[_encode_vertex(p), _encode_vertex(g)] for p, g in embedding.mapping]


def _embedding_from_payload(pairs: List[List[str]]) -> Embedding:
    # Rebuilt pair-for-pair (not via from_dict) so the stored order — already
    # from_dict's canonical order at mining time — survives byte-exactly.
    return Embedding(
        mapping=tuple((_decode_vertex(p), _decode_vertex(g)) for p, g in pairs)
    )


def pattern_payload(pattern: Pattern) -> Dict:
    """One pattern with its graph, embeddings and cached canonical code."""
    return {
        "graph": _pattern_graph_payload(pattern.graph),
        "embeddings": [_embedding_payload(e) for e in pattern.embeddings],
        "code": pattern.code,
    }


def pattern_from_payload(data: Dict) -> Pattern:
    return Pattern(
        graph=_pattern_graph_from_payload(data["graph"]),
        embeddings=[_embedding_from_payload(e) for e in data["embeddings"]],
        _code=data.get("code"),
    )


def spider_payload(spider: Spider) -> Dict:
    payload = pattern_payload(spider)
    payload["head"] = _encode_vertex(spider.head)
    payload["radius"] = spider.radius
    return payload


def spider_from_payload(data: Dict) -> Spider:
    spider = Spider(
        graph=_pattern_graph_from_payload(data["graph"]),
        embeddings=[_embedding_from_payload(e) for e in data["embeddings"]],
        head=_decode_vertex(data["head"]),
        radius=data["radius"],
    )
    spider._code = data.get("code")
    return spider


def spiders_payload(spiders: Sequence[Spider]) -> Dict:
    """A Stage-I result: the ordered frequent-spider list."""
    return {
        "format": FORMAT_VERSION,
        "spiders": [spider_payload(s) for s in spiders],
    }


def spiders_from_payload(data: Dict) -> List[Spider]:
    _check_format(data)
    return [spider_from_payload(s) for s in data["spiders"]]


def spiders_digest(spiders: Sequence[Spider]) -> str:
    return payload_digest(spiders_payload(spiders))


# ---------------------------------------------------------------------- #
# mining results
# ---------------------------------------------------------------------- #
def result_payload(result: MiningResult) -> Dict:
    """The full, deterministic JSON payload of a :class:`MiningResult`."""
    return {
        "format": FORMAT_VERSION,
        "algorithm": result.algorithm,
        "runtime_seconds": result.runtime_seconds,
        "statistics": result.statistics.to_dict(),
        "parameters": dict(result.parameters),
        "patterns": [pattern_payload(p) for p in result.patterns],
    }


def result_from_payload(data: Dict) -> MiningResult:
    _check_format(data)
    return MiningResult(
        algorithm=data["algorithm"],
        patterns=[pattern_from_payload(p) for p in data["patterns"]],
        runtime_seconds=data.get("runtime_seconds", 0.0),
        statistics=MiningStatistics.from_dict(data.get("statistics", {})),
        parameters=dict(data.get("parameters", {})),
    )


def result_digest(result) -> str:
    """Digest of a result's deterministic core.

    Accepts a :class:`MiningResult` or an already-built payload dict.
    Wall-clock fields (``runtime_seconds``, per-stage durations) and execution
    metadata (``execution_mode``, ``workers`` parameters) are stripped first:
    they vary run to run while the mined output does not, and the digest
    certifies the *output* — serial, parallel and cache-served runs of the
    same key all share it.
    """
    payload = result if isinstance(result, dict) else result_payload(result)
    core = {k: v for k, v in payload.items() if k != "runtime_seconds"}
    statistics = dict(core.get("statistics", {}))
    statistics.pop("stage_durations", None)
    core["statistics"] = statistics
    parameters = dict(core.get("parameters", {}))
    for key in _VOLATILE_PARAMETER_KEYS:
        parameters.pop(key, None)
    core["parameters"] = parameters
    return payload_digest(core)


# ---------------------------------------------------------------------- #
# run records → index summaries
# ---------------------------------------------------------------------- #
def run_id_for_key(key_payload: Dict[str, str]) -> str:
    """The content address of a run: the digest of its key payload.

    Single definition shared by :class:`repro.catalog.cache.RunKey` and the
    store's gc, which validates recovered run files against their filename.
    """
    return payload_digest(key_payload)


def run_summary_from_record(record: Dict) -> Dict:
    """The lightweight index metadata of a stored run record.

    Pure function of the record itself, so the summary an insert writes and
    the summary :meth:`CatalogStore.gc` rebuilds when it recovers an
    unindexed-but-valid run object (say, after a lost index update from two
    concurrent writers) are identical.
    """
    _check_format(record)
    kind = record["kind"]
    key = record["key"]
    meta = {
        "kind": kind,
        "graph_digest": key["graph"],
        "config_digest": key["config"],
        "code_version": key["code_version"],
    }
    if kind == "result":
        payload = record["result"]
        summaries = []
        for index, pattern in enumerate(payload["patterns"]):
            vertices = pattern["graph"]["vertices"]
            summaries.append({
                "index": index,
                "num_vertices": len(vertices),
                "num_edges": len(pattern["graph"]["edges"]),
                "support": len(pattern["embeddings"]),
                "labels": sorted({label for _, label in vertices}, key=repr),
            })
        largest = max(
            ((s["num_vertices"], s["num_edges"]) for s in summaries),
            default=(0, 0),
        )
        meta.update({
            "algorithm": payload["algorithm"],
            "result_digest": result_digest(payload),
            "num_patterns": len(summaries),
            "largest_vertices": largest[0],
            "largest_edges": largest[1],
            "patterns": summaries,
        })
    elif kind == "spiders":
        body = record["spiders"]
        meta.update({
            "num_spiders": len(body["spiders"]),
            "result_digest": payload_digest(body),
        })
    else:
        raise CatalogFormatError(f"unknown run kind {kind!r}")
    return meta


# ---------------------------------------------------------------------- #
# shared helpers
# ---------------------------------------------------------------------- #
def _check_format(data: Dict) -> None:
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise CatalogFormatError(
            f"unsupported catalog format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )


def data_graph_payload(graph: GraphView) -> Dict:
    """A stored data-graph snapshot (canonical form + its digest)."""
    body = graph_to_dict(graph)
    return {"format": FORMAT_VERSION, "graph": body, "digest": payload_digest(body)}


def data_graph_from_payload(data: Dict, backend: str = "dict"):
    _check_format(data)
    return graph_from_dict(data["graph"], frozen=(backend == "csr"))
