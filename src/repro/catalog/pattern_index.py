"""The persisted needle-side domain index for catalog containment queries.

Containment (`which stored patterns contain this needle graph?`) is answered
by running :class:`~repro.graph.isomorphism.SubgraphMatcher` with the needle
as the pattern and each stored *pattern graph* as the target.  The expensive
part of every such match is the target-side setup the matcher re-derives per
``(pattern, needle)`` pair: each target vertex's label, degree and
neighbor-label multiset signature, grouped by label class — exactly the data
candidate-domain seeding filters on.  That derivation depends only on the
stored pattern, so this module computes it **once, at mine/ingest time**, and
persists it as a sidecar object next to the run
(``objects/indexes/<run_id>.json``).

A needle vertex with label ``l``, degree ``d`` and signature ``s`` has a
non-empty seed domain in a stored pattern iff the pattern's class-``l`` list
holds a vertex with degree ``>= d`` whose signature dominates ``s``
(:func:`entry_admits`).  Because matcher domains are a *subset* of these seed
domains (the matcher additionally runs arc consistency), an index rejection
is sound: the matcher would have proven zero embeddings anyway.  Only needles
that survive seeding load the pattern graph and enter a real search, so a
batch of N needles is answered in **one pass** over the per-run sidecars
instead of N full re-derivations.

Invalidation mirrors the run cache exactly: every sidecar records the
``code_version`` that derived it, and a reader treats any other version as
absent (the caller rebuilds from the run payload and overwrites).  Sidecars
are derived data — losing one costs a rebuild, never correctness — so they
live outside the catalog index and :meth:`CatalogStore.gc` simply drops the
ones whose run vanished.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.view import GraphView
from .formats import FORMAT_VERSION, CatalogFormatError

__all__ = [
    "PATTERN_INDEX_KIND",
    "IndexStats",
    "PatternDomainEntry",
    "entry_from_pattern_payload",
    "entry_admits",
    "needle_requirements",
    "run_index_payload",
    "run_index_from_payload",
]

#: ``kind`` stamp of every sidecar payload; readers refuse anything else.
PATTERN_INDEX_KIND = "pattern_index"


@dataclass
class IndexStats:
    """Work counters of the index-backed containment path (observational)."""

    #: sidecars derived from run payloads (cold builds)
    index_builds: int = 0
    #: sidecars loaded from disk (or the in-process LRU missing them)
    index_loads: int = 0
    #: (pattern, needle) seeding decisions taken purely from the index
    seed_checks: int = 0
    #: seeding decisions that answered "not contained" with zero matcher work
    seed_rejections: int = 0
    #: full SubgraphMatcher confirmations actually run
    matcher_calls: int = 0
    #: run payloads read from disk (pattern-graph materialisations)
    payload_loads: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "index_builds": self.index_builds,
            "index_loads": self.index_loads,
            "seed_checks": self.seed_checks,
            "seed_rejections": self.seed_rejections,
            "matcher_calls": self.matcher_calls,
            "payload_loads": self.payload_loads,
        }


@dataclass(frozen=True)
class PatternDomainEntry:
    """The needle-side seeding data of one stored pattern graph.

    ``classes`` maps each vertex label to the ``(degree, signature)`` pairs of
    the pattern vertices carrying it, where ``signature`` counts the labels of
    the vertex's neighbors.  Everything candidate-domain seeding needs — and
    nothing else: embeddings, vertex ids and edges stay in the run payload.
    """

    index: int
    num_vertices: int
    num_edges: int
    label_counts: Dict = field(default_factory=dict)
    classes: Dict = field(default_factory=dict)

    def labels(self) -> Tuple:
        return tuple(sorted(self.label_counts, key=repr))


# ---------------------------------------------------------------------- #
# building entries
# ---------------------------------------------------------------------- #
def entry_from_pattern_payload(index: int, data: Dict) -> PatternDomainEntry:
    """Derive one entry from a stored pattern payload (no graph object built).

    Works directly on the encoded string vertex keys — identity of vertices
    is irrelevant to seeding, only labels, degrees and signatures matter.
    """
    vertices = data["graph"]["vertices"]
    edges = data["graph"]["edges"]
    label_of = {key: label for key, label in vertices}
    degree: Counter = Counter()
    signature: Dict[str, Counter] = {key: Counter() for key in label_of}
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
        signature[u][label_of[v]] += 1
        signature[v][label_of[u]] += 1
    classes: Dict = {}
    for key, label in vertices:
        classes.setdefault(label, []).append((degree[key], dict(signature[key])))
    label_counts = dict(Counter(label for _, label in vertices))
    return PatternDomainEntry(
        index=index,
        num_vertices=len(vertices),
        num_edges=len(edges),
        label_counts=label_counts,
        classes=classes,
    )


def entry_from_graph(index: int, graph: GraphView) -> PatternDomainEntry:
    """Derive one entry from a live graph (ingest paths without a payload)."""
    classes: Dict = {}
    for v in graph.vertices():
        signature = dict(Counter(graph.label(n) for n in graph.neighbors(v)))
        classes.setdefault(graph.label(v), []).append((graph.degree(v), signature))
    return PatternDomainEntry(
        index=index,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        label_counts=dict(graph.label_counts()),
        classes=classes,
    )


# ---------------------------------------------------------------------- #
# needle-side seeding
# ---------------------------------------------------------------------- #
def needle_requirements(graph: GraphView) -> Optional[List[Tuple]]:
    """Per-needle-vertex ``(label, degree, signature)`` seeding requirements.

    ``None`` for the empty needle, which (matching the matcher's
    ``_query_feasible``) can never be "contained" in anything.  Computed once
    per needle and reused across every stored pattern of a batch.
    """
    if graph.num_vertices == 0:
        return None
    out = []
    for v in graph.vertices():
        signature = dict(Counter(graph.label(n) for n in graph.neighbors(v)))
        out.append((graph.label(v), graph.degree(v), signature))
    return out


def _dominates(have: Dict, need: Dict) -> bool:
    return all(have.get(label, 0) >= count for label, count in need.items())


def entry_admits(
    entry: PatternDomainEntry,
    requirements: Sequence[Tuple],
    needle_label_counts: Dict,
) -> bool:
    """Whether seeding leaves every needle vertex a non-empty domain.

    Mirrors :class:`SubgraphMatcher`'s pre-search filters — label-count
    feasibility (injectivity needs enough vertices per label) plus the
    label/degree/neighbor-signature domain seed — without touching the
    pattern graph.  ``False`` is a proof of zero embeddings.
    """
    for label, count in needle_label_counts.items():
        if entry.label_counts.get(label, 0) < count:
            return False
    for label, degree, signature in requirements:
        candidates = entry.classes.get(label)
        if not candidates:
            return False
        if not any(
            cand_degree >= degree and _dominates(cand_signature, signature)
            for cand_degree, cand_signature in candidates
        ):
            return False
    return True


# ---------------------------------------------------------------------- #
# sidecar payloads (JSON-safe: labels may be any JSON-native value, so
# label-keyed maps are emitted as repr-sorted pair lists, never dict keys)
# ---------------------------------------------------------------------- #
def _counts_payload(counts: Dict) -> List[List]:
    return [[label, counts[label]] for label in sorted(counts, key=repr)]


def _counts_from_payload(pairs: Sequence[Sequence]) -> Dict:
    return {label: count for label, count in pairs}


def _entry_payload(entry: PatternDomainEntry) -> Dict:
    return {
        "index": entry.index,
        "num_vertices": entry.num_vertices,
        "num_edges": entry.num_edges,
        "label_counts": _counts_payload(entry.label_counts),
        "classes": [
            [
                label,
                [
                    [degree, _counts_payload(signature)]
                    for degree, signature in entry.classes[label]
                ],
            ]
            for label in sorted(entry.classes, key=repr)
        ],
    }


def _entry_from_payload(data: Dict) -> PatternDomainEntry:
    return PatternDomainEntry(
        index=data["index"],
        num_vertices=data["num_vertices"],
        num_edges=data["num_edges"],
        label_counts=_counts_from_payload(data["label_counts"]),
        classes={
            label: [
                (degree, _counts_from_payload(signature))
                for degree, signature in members
            ]
            for label, members in data["classes"]
        },
    )


def run_index_payload(
    run_id: str, pattern_payloads: Sequence[Dict], version: str
) -> Dict:
    """The sidecar object for one run: every pattern's entry + the code fence."""
    return {
        "format": FORMAT_VERSION,
        "kind": PATTERN_INDEX_KIND,
        "run_id": run_id,
        "code_version": version,
        "patterns": [
            _entry_payload(entry_from_pattern_payload(i, p))
            for i, p in enumerate(pattern_payloads)
        ],
    }


def run_index_from_payload(
    data: Dict, run_id: str, version: str
) -> Optional[List[PatternDomainEntry]]:
    """Decode a sidecar, or ``None`` when it is stale or malformed.

    The invalidation contract of the run cache, applied to derived data: a
    ``code_version`` other than the current build's means the deriving code
    may have changed, so the sidecar is treated as absent and rebuilt.
    """
    try:
        if (
            data.get("format") != FORMAT_VERSION
            or data.get("kind") != PATTERN_INDEX_KIND
            or data.get("run_id") != run_id
            or data.get("code_version") != version
        ):
            return None
        return [_entry_from_payload(p) for p in data["patterns"]]
    except (KeyError, TypeError, ValueError):
        return None


def build_run_index(run_payload: Dict, run_id: str, version: str) -> Dict:
    """Derive the sidecar payload from a stored ``result`` run record."""
    try:
        patterns = run_payload["result"]["patterns"]
    except (KeyError, TypeError) as error:
        raise CatalogFormatError(
            f"run {run_id} has no result patterns to index: {error}"
        ) from error
    return run_index_payload(run_id, patterns, version)
