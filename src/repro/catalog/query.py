"""The catalog query layer: answer pattern questions from stored runs.

Serving path of the subsystem: once runs are in a
:class:`~repro.catalog.store.CatalogStore`, :class:`CatalogQuery` answers

* **top-k** — the k largest (by vertices or edges) or best-supported
  patterns across all stored result runs (or one run);
* **label filter** — patterns containing a vertex with a given label;
* **containment** — patterns containing a given needle graph as a
  (label-preserving) subgraph, single-needle or **batched**.

Top-k and label queries run entirely off the index's per-run summaries —
no graph object, not even a run payload, is read.  Containment runs off the
persisted **needle-side domain index**
(:mod:`repro.catalog.pattern_index`): per-run sidecars derived at mine time
hold every stored pattern's label classes, degrees and neighbor-label
signatures, so candidate-domain seeding — the work the matcher used to
re-derive per ``(pattern, needle)`` pair — becomes a pure metadata check.
Only needles that survive seeding materialise the pattern graph (via a
bounded LRU of run payloads) and enter a real
:class:`~repro.graph.isomorphism.SubgraphMatcher` search; a batch of N
needles is answered in one pass over the sidecars.  The *data* graphs — the
objects that are actually massive — are never touched by any query.

Construct queries through :func:`repro.api.open_catalog` — the stable facade
returns a handle whose ``.query`` is built here; calling ``CatalogQuery(...)``
directly is deprecated.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..graph.isomorphism import SubgraphMatcher
from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from ..patterns.pattern import Pattern
from .formats import pattern_from_payload
from .lru import LRUCache
from .pattern_index import (
    IndexStats,
    PatternDomainEntry,
    build_run_index,
    entry_admits,
    needle_requirements,
    run_index_from_payload,
)
from .store import CatalogStore, PathLike

__all__ = ["PatternRecord", "CatalogQuery", "RANKINGS"]

#: Ranking keys accepted by :meth:`CatalogQuery.top_k`.
RANKINGS = ("vertices", "edges", "support")

#: Default bound on cached run payloads (the bug fix for the previously
#: unbounded per-process ``_payload_cache``): a run payload holds full
#: pattern graphs + embeddings, so a handful covers the hot set.
PAYLOAD_CACHE_ENTRIES = 8

#: Default bound on cached per-run pattern indexes.  Entries are tiny
#: (labels/degrees/signatures only), so the serving tier keeps more of them
#: hot than payloads.
INDEX_CACHE_ENTRIES = 64


@dataclass(frozen=True)
class PatternRecord:
    """One stored pattern, as cheap metadata plus a lazy graph handle."""

    run_id: str
    index: int
    num_vertices: int
    num_edges: int
    support: int
    labels: Tuple = ()
    algorithm: str = ""

    def describe(self) -> str:
        return (
            f"{self.run_id[:12]}#{self.index}: |V|={self.num_vertices} "
            f"|E|={self.num_edges} support={self.support}"
        )

    def to_dict(self) -> Dict:
        """The one JSON schema shared by the CLI ``--json`` output, the HTTP
        API and Python callers — change it in lockstep everywhere."""
        return {
            "run_id": self.run_id,
            "index": self.index,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "support": self.support,
            "labels": list(self.labels),
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PatternRecord":
        return cls(
            run_id=data["run_id"],
            index=data["index"],
            num_vertices=data["num_vertices"],
            num_edges=data["num_edges"],
            support=data["support"],
            labels=tuple(data.get("labels", ())),
            algorithm=data.get("algorithm", ""),
        )


class CatalogQuery:
    """Read-only query interface over one catalog store.

    ``read_only=True`` (what :meth:`repro.api.Catalog.serve` uses) never
    writes to the store: stale or missing pattern-index sidecars are rebuilt
    into the in-process LRU only.  Otherwise rebuilt sidecars are persisted
    back, self-healing the store for the next process.
    """

    def __init__(self, store: Union[CatalogStore, PathLike], **kwargs) -> None:
        warnings.warn(
            "constructing CatalogQuery(...) directly is deprecated; use "
            "repro.api.open_catalog(...) — the stable facade returning a "
            "catalog handle with top_k/with_label/contains/contains_batch",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(store, **kwargs)

    @classmethod
    def _create(cls, store: Union[CatalogStore, PathLike], **kwargs) -> "CatalogQuery":
        """Internal constructor (no deprecation warning) for the facade."""
        self = cls.__new__(cls)
        self._init(store, **kwargs)
        return self

    def _init(
        self,
        store: Union[CatalogStore, PathLike],
        payload_cache_size: int = PAYLOAD_CACHE_ENTRIES,
        index_cache_size: int = INDEX_CACHE_ENTRIES,
        read_only: bool = False,
    ) -> None:
        self.store = store if isinstance(store, CatalogStore) else CatalogStore(store)
        self.read_only = read_only
        self.stats = IndexStats()
        self._payload_cache = LRUCache(payload_cache_size)
        self._index_cache = LRUCache(index_cache_size)

    # ------------------------------------------------------------------ #
    # record enumeration (index summaries only)
    # ------------------------------------------------------------------ #
    def records(self, run_id: Optional[str] = None) -> Iterator[PatternRecord]:
        """Every stored result pattern as a :class:`PatternRecord`.

        Deterministic order: runs sorted by id, patterns by stored rank.
        """
        runs = self.store.list_runs(kind="result")
        runs.sort(key=lambda r: r["run_id"])
        for run in runs:
            if run_id is not None and run["run_id"] != run_id:
                continue
            for entry in run.get("patterns", []):
                yield PatternRecord(
                    run_id=run["run_id"],
                    index=entry["index"],
                    num_vertices=entry["num_vertices"],
                    num_edges=entry["num_edges"],
                    support=entry["support"],
                    labels=tuple(entry.get("labels", ())),
                    algorithm=run.get("algorithm", ""),
                )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def top_k(
        self,
        k: int,
        by: str = "vertices",
        label=None,
        run_id: Optional[str] = None,
    ) -> List[PatternRecord]:
        """The k best stored patterns by size or support, optionally filtered.

        ``by``: ``"vertices"`` (paper's default size notion), ``"edges"``
        (the formal |P|) or ``"support"``.  Ties break deterministically on
        the secondary size, then (run id, index).
        """
        if by not in RANKINGS:
            raise ValueError(f"unknown ranking {by!r}; expected one of {RANKINGS}")
        if k < 0:
            raise ValueError("k must be non-negative")
        pool = self.records(run_id=run_id)
        if label is not None:
            pool = (r for r in pool if label in r.labels)

        def rank(record: PatternRecord):
            if by == "vertices":
                primary = (record.num_vertices, record.num_edges)
            elif by == "edges":
                primary = (record.num_edges, record.num_vertices)
            else:
                primary = (record.support, record.num_vertices, record.num_edges)
            # Negate the deterministic tiebreak so one reverse sort suffices.
            return (*primary, record.run_id, -record.index)

        ranked = sorted(pool, key=rank, reverse=True)
        return ranked[:k]

    def with_label(self, label, run_id: Optional[str] = None) -> List[PatternRecord]:
        """All stored patterns containing a vertex labeled ``label``."""
        return [r for r in self.records(run_id=run_id) if label in r.labels]

    def containing(
        self,
        needle: Union[LabeledGraph, Pattern],
        run_id: Optional[str] = None,
    ) -> List[PatternRecord]:
        """Stored patterns that contain ``needle`` as a label-preserving subgraph.

        A batch of one: see :meth:`contains_batch` for how the persisted
        pattern index answers most negatives without loading any graph.
        """
        return self.contains_batch([needle], run_id=run_id)[0]

    def contains_batch(
        self,
        needles: Sequence[Union[LabeledGraph, Pattern]],
        run_id: Optional[str] = None,
    ) -> List[List[PatternRecord]]:
        """Containment for many needles in **one pass** over the stored runs.

        Per stored pattern, every needle is first settled against the
        persisted :class:`~repro.catalog.pattern_index.PatternDomainEntry`
        (label counts + degree/neighbor-signature domain seeding — a sound
        rejection, since matcher domains are subsets of these seeds); only
        surviving ``(pattern, needle)`` pairs materialise the pattern graph
        and run a real subgraph search.  Results preserve stored-run order
        per needle, exactly like N independent :meth:`containing` calls.
        """
        registry = get_registry()
        graphs: List[Optional[LabeledGraph]] = []
        requirements: List[Optional[List[Tuple]]] = []
        label_counts: List[Dict] = []
        for needle in needles:
            graph = needle.graph if isinstance(needle, Pattern) else needle
            graphs.append(graph)
            requirements.append(needle_requirements(graph))
            label_counts.append(dict(graph.label_counts()))

        results: List[List[PatternRecord]] = [[] for _ in needles]
        for record in self.records(run_id=run_id):
            # Cheap metadata prefilter straight off the record summary.
            survivors = [
                i
                for i, graph in enumerate(graphs)
                if requirements[i] is not None
                and record.num_vertices >= graph.num_vertices
                and record.num_edges >= graph.num_edges
                and all(label in record.labels for label in label_counts[i])
            ]
            if not survivors:
                continue
            entry = self._index_entry(record)
            alive = []
            for i in survivors:
                self.stats.seed_checks += 1
                if entry_admits(entry, requirements[i], label_counts[i]):
                    alive.append(i)
                else:
                    self.stats.seed_rejections += 1
            if not alive:
                continue
            target = self.load_pattern(record).graph
            for i in alive:
                self.stats.matcher_calls += 1
                matcher = SubgraphMatcher(graphs[i], target)
                if matcher.exists():
                    results[i].append(record)
                if registry.enabled:
                    registry.merge_counters("matcher", matcher.stats)
        self.publish_stats()
        return results

    def _containing_unindexed(
        self,
        needle: Union[LabeledGraph, Pattern],
        run_id: Optional[str] = None,
    ) -> List[PatternRecord]:
        """The pre-index containment path: re-seed domains per (pattern, needle).

        Kept as the behavioural reference for parity tests and as the cold
        baseline the serving benchmark (``BENCH_serving.json``) measures the
        persisted index against.
        """
        graph = needle.graph if isinstance(needle, Pattern) else needle
        needle_labels = set(graph.labels().values())
        matches = []
        for record in self.records(run_id=run_id):
            if (
                record.num_vertices < graph.num_vertices
                or record.num_edges < graph.num_edges
                or not needle_labels.issubset(record.labels)
            ):
                continue
            candidate = self.load_pattern(record)
            self.stats.matcher_calls += 1
            if SubgraphMatcher(graph, candidate.graph).exists():
                matches.append(record)
        return matches

    def publish_stats(self, registry=None) -> None:
        """Mirror this query's cumulative stats into a telemetry registry.

        Defaults to the process-local registry (free when telemetry is off);
        the serving tier passes its own server registry so ``/metrics`` and
        ``/stats`` always reflect the latest :class:`IndexStats` and LRU
        snapshots (all three satisfy the ``Snapshottable`` shape).  Called
        after every batch containment pass.
        """
        if registry is None:
            registry = get_registry()
        if registry.enabled:
            registry.publish("catalog.index", self.stats)
            registry.publish("catalog.payload_cache", self._payload_cache)
            registry.publish("catalog.index_cache", self._index_cache)

    # ------------------------------------------------------------------ #
    # materialisation + the persisted pattern index
    # ------------------------------------------------------------------ #
    def load_pattern(self, record: PatternRecord) -> Pattern:
        """The full :class:`Pattern` (graph + embeddings) behind a record."""
        payload = self._payload_cache.get(record.run_id)
        if payload is None:
            payload = self.store.get_run_payload(record.run_id)
            self.stats.payload_loads += 1
            self._payload_cache.put(record.run_id, payload)
        return pattern_from_payload(payload["result"]["patterns"][record.index])

    def _index_entry(self, record: PatternRecord) -> PatternDomainEntry:
        return self._run_index(record.run_id)[record.index]

    def _run_index(self, run_id: str) -> List[PatternDomainEntry]:
        """The per-run pattern index: LRU → sidecar → rebuild (+ self-heal).

        A sidecar written by a different ``code_version`` is treated as
        absent — the invalidation contract shared with the run cache — and
        rebuilt from the run payload; unless ``read_only``, the rebuilt
        sidecar is persisted back (best-effort) so the next process is warm.
        """
        entries = self._index_cache.get(run_id)
        if entries is not None:
            return entries
        from .cache import code_version  # local: avoids import cycle at load

        version = code_version()
        payload = self.store.get_pattern_index(run_id)
        entries = (
            run_index_from_payload(payload, run_id, version)
            if payload is not None
            else None
        )
        if entries is not None:
            self.stats.index_loads += 1
        else:
            run_payload = self._payload_cache.get(run_id)
            if run_payload is None:
                run_payload = self.store.get_run_payload(run_id)
                self.stats.payload_loads += 1
                self._payload_cache.put(run_id, run_payload)
            sidecar = build_run_index(run_payload, run_id, version)
            entries = run_index_from_payload(sidecar, run_id, version)
            assert entries is not None  # freshly built with the current version
            self.stats.index_builds += 1
            if not self.read_only:
                try:
                    self.store.put_pattern_index(run_id, sidecar)
                except OSError:
                    pass  # serving beats self-healing on unwritable stores
        self._index_cache.put(run_id, entries)
        return entries
