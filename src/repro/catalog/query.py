"""The catalog query layer: answer pattern questions from stored runs.

Serving path of the subsystem: once runs are in a
:class:`~repro.catalog.store.CatalogStore`, :class:`CatalogQuery` answers

* **top-k** — the k largest (by vertices or edges) or best-supported
  patterns across all stored result runs (or one run);
* **label filter** — patterns containing a vertex with a given label;
* **containment** — patterns containing a given needle graph as a
  (label-preserving) subgraph.

Top-k and label queries run entirely off the index's per-run summaries —
no graph object, not even a run payload, is read.  Containment needs the
stored pattern graphs (a few dozen vertices each) and loads run payloads
lazily, caching per run; the *data* graphs — the objects that are actually
massive — are never touched by any query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..graph.isomorphism import SubgraphMatcher
from ..graph.labeled_graph import LabeledGraph
from ..patterns.pattern import Pattern
from .formats import pattern_from_payload
from .store import CatalogStore, PathLike

__all__ = ["PatternRecord", "CatalogQuery"]

#: Ranking keys accepted by :meth:`CatalogQuery.top_k`.
RANKINGS = ("vertices", "edges", "support")


@dataclass(frozen=True)
class PatternRecord:
    """One stored pattern, as cheap metadata plus a lazy graph handle."""

    run_id: str
    index: int
    num_vertices: int
    num_edges: int
    support: int
    labels: Tuple = ()
    algorithm: str = ""

    def describe(self) -> str:
        return (
            f"{self.run_id[:12]}#{self.index}: |V|={self.num_vertices} "
            f"|E|={self.num_edges} support={self.support}"
        )


class CatalogQuery:
    """Read-only query interface over one catalog store."""

    def __init__(self, store: Union[CatalogStore, PathLike]) -> None:
        self.store = store if isinstance(store, CatalogStore) else CatalogStore(store)
        self._payload_cache: Dict[str, Dict] = {}

    # ------------------------------------------------------------------ #
    # record enumeration (index summaries only)
    # ------------------------------------------------------------------ #
    def records(self, run_id: Optional[str] = None) -> Iterator[PatternRecord]:
        """Every stored result pattern as a :class:`PatternRecord`.

        Deterministic order: runs sorted by id, patterns by stored rank.
        """
        runs = self.store.list_runs(kind="result")
        runs.sort(key=lambda r: r["run_id"])
        for run in runs:
            if run_id is not None and run["run_id"] != run_id:
                continue
            for entry in run.get("patterns", []):
                yield PatternRecord(
                    run_id=run["run_id"],
                    index=entry["index"],
                    num_vertices=entry["num_vertices"],
                    num_edges=entry["num_edges"],
                    support=entry["support"],
                    labels=tuple(entry.get("labels", ())),
                    algorithm=run.get("algorithm", ""),
                )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def top_k(
        self,
        k: int,
        by: str = "vertices",
        label=None,
        run_id: Optional[str] = None,
    ) -> List[PatternRecord]:
        """The k best stored patterns by size or support, optionally filtered.

        ``by``: ``"vertices"`` (paper's default size notion), ``"edges"``
        (the formal |P|) or ``"support"``.  Ties break deterministically on
        the secondary size, then (run id, index).
        """
        if by not in RANKINGS:
            raise ValueError(f"unknown ranking {by!r}; expected one of {RANKINGS}")
        if k < 0:
            raise ValueError("k must be non-negative")
        pool = self.records(run_id=run_id)
        if label is not None:
            pool = (r for r in pool if label in r.labels)

        def rank(record: PatternRecord):
            if by == "vertices":
                primary = (record.num_vertices, record.num_edges)
            elif by == "edges":
                primary = (record.num_edges, record.num_vertices)
            else:
                primary = (record.support, record.num_vertices, record.num_edges)
            # Negate the deterministic tiebreak so one reverse sort suffices.
            return (*primary, record.run_id, -record.index)

        ranked = sorted(pool, key=rank, reverse=True)
        return ranked[:k]

    def with_label(self, label, run_id: Optional[str] = None) -> List[PatternRecord]:
        """All stored patterns containing a vertex labeled ``label``."""
        return [r for r in self.records(run_id=run_id) if label in r.labels]

    def containing(
        self,
        needle: Union[LabeledGraph, Pattern],
        run_id: Optional[str] = None,
    ) -> List[PatternRecord]:
        """Stored patterns that contain ``needle`` as a label-preserving subgraph.

        Matching runs against the stored *pattern* graphs (small); candidate
        records are pre-filtered on size and label metadata before any
        subgraph-isomorphism test runs, and the matcher's candidate-domain
        build (degree / neighbor-signature / arc-consistency) settles most
        surviving negatives without entering a backtracking search.
        """
        graph = needle.graph if isinstance(needle, Pattern) else needle
        needle_labels = set(graph.labels().values())
        matches = []
        for record in self.records(run_id=run_id):
            if (
                record.num_vertices < graph.num_vertices
                or record.num_edges < graph.num_edges
                or not needle_labels.issubset(record.labels)
            ):
                continue
            candidate = self.load_pattern(record)
            if SubgraphMatcher(graph, candidate.graph).exists():
                matches.append(record)
        return matches

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def load_pattern(self, record: PatternRecord) -> Pattern:
        """The full :class:`Pattern` (graph + embeddings) behind a record."""
        payload = self._payload_cache.get(record.run_id)
        if payload is None:
            payload = self.store.get_run_payload(record.run_id)
            self._payload_cache[record.run_id] = payload
        return pattern_from_payload(payload["result"]["patterns"][record.index])
