"""``repro serve`` — an asyncio JSON/HTTP API over a read-only catalog.

The serving half of the catalog tier: mining stays batch, this server is the
read-mostly front end over a :class:`~repro.catalog.store.CatalogStore`.  It
is deliberately stdlib-only (``asyncio.start_server`` + a minimal HTTP/1.1
parser) so the Dockerfile ships nothing beyond the package itself.

Endpoints (all responses are canonical JSON — byte-identical to serialising
the :mod:`repro.api` facade's answers, which the server calls directly):

====================  ======================================================
``GET /``             endpoint table (this list)
``GET /healthz``      liveness + store summary
``GET /runs``         stored run summaries (per-pattern lists elided)
``GET /top-k``        ``?k=&by=&label=&run=`` → ranked pattern records
``GET /label``        ``?label=&run=`` → records containing a vertex label
``POST /contains``    body ``{"graph": {...}, "run": ...}`` → matching records
``POST /contains/batch``  body ``{"graphs": [{...}, ...]}`` → list of lists
====================  ======================================================

Needle graphs travel in the :func:`repro.graph.io.graph_to_dict` JSON shape
(``{"vertices": {id: label}, "edges": [[u, v], ...]}``) — the same format
``repro.api.save_graph`` writes.  Malformed needles answer 400, never a
connection drop.

Concurrency: request handlers are asyncio tasks, so readers are concurrent at
the connection level; containment work (the only CPU-bound route) runs in a
thread-pool executor, which is safe because the query layer's hot caches
(run payloads + pattern indexes, both :class:`~repro.catalog.lru.LRUCache`)
are thread-safe and the store itself is read-only from the server's point of
view (``repro.api.open_catalog(read_only=True)``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
import time
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..graph.io import graph_from_dict
from ..graph.labeled_graph import GraphError
from ..obs import MetricsRegistry, get_logger, get_registry
from .formats import canonical_json
from .query import RANKINGS

__all__ = ["CatalogServer", "ServerHandle", "serve"]

#: Requests larger than this are refused (needle batches are metadata-sized).
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}

ENDPOINTS = {
    "GET /": "this endpoint table",
    "GET /healthz": "liveness + store summary",
    "GET /metrics": "flat telemetry counter dump",
    "GET /stats": "registry snapshot + cache stats + uptime",
    "GET /runs": "stored run summaries",
    "GET /top-k": "ranked pattern records (?k=&by=&label=&run=)",
    "GET /label": "records containing a vertex label (?label=&run=)",
    "POST /contains": "records containing the needle graph in the body",
    "POST /contains/batch": "batch containment for many needles in one pass",
}

#: Endpoints excluded from their own request metrics: probing ``/metrics``
#: must not change what ``/metrics`` returns, so repeated (and concurrent)
#: scrapes of an otherwise-idle server are byte-identical.
_UNMETERED = frozenset({"/metrics", "/stats"})


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _decode_needle(data) -> object:
    """A needle graph from its wire dict; 400 on anything malformed."""
    if not isinstance(data, dict):
        raise _HTTPError(400, "needle must be a graph object with vertices/edges")
    try:
        return graph_from_dict(data)
    except (KeyError, TypeError, ValueError, AttributeError, GraphError) as error:
        raise _HTTPError(400, f"malformed needle graph: {error}") from error


class CatalogServer:
    """One asyncio HTTP server in front of one catalog handle."""

    def __init__(
        self,
        catalog,
        host: str = "127.0.0.1",
        port: int = 8080,
        default_top: int = 10,
        default_by: str = "vertices",
        default_label: Optional[str] = None,
        default_run: Optional[str] = None,
        access_log: bool = False,
    ) -> None:
        if default_by not in RANKINGS:
            raise ValueError(
                f"unknown ranking {default_by!r}; expected one of {RANKINGS}"
            )
        self.catalog = catalog
        self.host = host
        self.port = port
        self.default_top = default_top
        self.default_by = default_by
        self.default_label = default_label
        self.default_run = default_run
        self.access_log = access_log
        self.requests_served = 0
        # Serving always meters itself: reuse an enabled process registry
        # (so mine + serve telemetry land in one place), else own a private
        # one — /metrics and /stats are never empty by accident.
        process_registry = get_registry()
        self.metrics = process_registry if process_registry.enabled else MetricsRegistry()
        self._logger = get_logger("serve")
        self._started_at = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        # Resolve the ephemeral port (port=0) to what the OS actually bound.
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.monotonic()
        method, path = "-", "-"
        try:
            method, path, params, raw_body = await self._read_request(reader)
            status, body = await self._route(method, path, params, raw_body)
        except _HTTPError as error:
            status, body = error.status, canonical_json({"error": error.message})
        except Exception as error:  # never drop the connection without a reply
            status, body = 500, canonical_json({"error": f"internal error: {error}"})
            # A swallowed handler exception used to leave a bare 500 and no
            # trace anywhere; log it structured (endpoint, run id, traceback)
            # so saturated-server failures are diagnosable from the log.
            self._logger.error(
                "unhandled error on %s %s: %s",
                method,
                path,
                error,
                exc_info=error,
                extra={
                    "endpoint": path,
                    "method": method,
                    "run": self.default_run,
                },
            )
        payload = body.encode("ascii")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
        self.requests_served += 1
        self._record_request(method, path, status, time.monotonic() - started)

    def _record_request(
        self, method: str, path: str, status: int, duration: float
    ) -> None:
        """Per-endpoint request/error counters + latency histogram + access log."""
        if path not in _UNMETERED and path != "-":
            key = path.strip("/").replace("/", "_").replace("-", "_") or "root"
            self.metrics.counter("http.requests")
            self.metrics.counter(f"http.requests.{key}")
            if status >= 500:
                self.metrics.counter("http.errors")
                self.metrics.counter(f"http.errors.{key}")
            self.metrics.observe(f"http.latency_seconds.{key}", duration)
        if self.access_log:
            self._logger.info(
                "%s %s %d %.1fms",
                method,
                path,
                status,
                duration * 1000.0,
                extra={
                    "method": method,
                    "path": path,
                    "status": status,
                    "duration_ms": round(duration * 1000.0, 3),
                },
            )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        """Parse one request into (method, normalised path, params, body)."""
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HTTPError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HTTPError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise _HTTPError(400, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        params = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return method.upper(), split.path.rstrip("/") or "/", params, body

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _route(
        self, method: str, path: str, params: Dict[str, str], body: bytes
    ) -> Tuple[int, str]:
        if path == "/":
            self._require(method, "GET")
            return 200, canonical_json({"service": "repro-catalog", "endpoints": ENDPOINTS})
        if path == "/healthz":
            self._require(method, "GET")
            return 200, canonical_json(self._healthz())
        if path == "/metrics":
            self._require(method, "GET")
            self.catalog.query.publish_stats(self.metrics)
            return 200, canonical_json(self.metrics.flat())
        if path == "/stats":
            self._require(method, "GET")
            self.catalog.query.publish_stats(self.metrics)
            return 200, canonical_json(self._stats())
        if path == "/runs":
            self._require(method, "GET")
            return 200, canonical_json(self.catalog.runs(kind=params.get("kind")))
        if path == "/top-k":
            self._require(method, "GET")
            records = self.catalog.top_k(
                k=self._int_param(params, "k", self.default_top),
                by=self._by_param(params),
                label=params.get("label", self.default_label),
                run=params.get("run", self.default_run),
            )
            return 200, canonical_json([r.to_dict() for r in records])
        if path == "/label":
            self._require(method, "GET")
            label = params.get("label", self.default_label)
            if label is None:
                raise _HTTPError(400, "missing required parameter: label")
            records = self.catalog.with_label(
                label, run=params.get("run", self.default_run)
            )
            return 200, canonical_json([r.to_dict() for r in records])
        if path == "/contains":
            self._require(method, "POST")
            payload = self._json_body(body)
            needle = _decode_needle(payload.get("graph"))
            run = payload.get("run", self.default_run)
            records = await self._in_executor(
                lambda: self.catalog.contains(needle, run=run)
            )
            return 200, canonical_json([r.to_dict() for r in records])
        if path == "/contains/batch":
            self._require(method, "POST")
            payload = self._json_body(body)
            graphs = payload.get("graphs")
            if not isinstance(graphs, list):
                raise _HTTPError(400, "body must carry a 'graphs' list")
            needles = [_decode_needle(g) for g in graphs]
            run = payload.get("run", self.default_run)
            grouped = await self._in_executor(
                lambda: self.catalog.contains_batch(needles, run=run)
            )
            return 200, canonical_json(
                [[r.to_dict() for r in records] for records in grouped]
            )
        raise _HTTPError(404, f"no such endpoint: {path}")

    def _healthz(self) -> Dict:
        from .cache import code_version

        return {
            "status": "ok",
            "store": str(self.catalog.store.root),
            "code_version": code_version(),
            "num_runs": len(self.catalog.runs()),
            "requests_served": self.requests_served,
        }

    def _stats(self) -> Dict:
        """The ``/stats`` body: full registry snapshot + caches + uptime."""
        query = self.catalog.query
        return {
            "metrics": self.metrics.snapshot(),
            "caches": {
                "payload": query._payload_cache.to_dict(),
                "index": query._index_cache.to_dict(),
            },
            "index_stats": query.stats.to_dict(),
            "requests_served": self.requests_served,
            "uptime_seconds": int(time.monotonic() - self._started_at),
        }

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"use {expected} for this endpoint")

    @staticmethod
    def _json_body(body: bytes) -> Dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPError(400, f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return payload

    @staticmethod
    def _int_param(params: Dict[str, str], name: str, default: int) -> int:
        raw = params.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError as error:
            raise _HTTPError(400, f"parameter {name!r} must be an integer") from error
        if value < 0:
            raise _HTTPError(400, f"parameter {name!r} must be non-negative")
        return value

    def _by_param(self, params: Dict[str, str]) -> str:
        by = params.get("by", self.default_by)
        if by not in RANKINGS:
            raise _HTTPError(
                400, f"unknown ranking {by!r}; expected one of {list(RANKINGS)}"
            )
        return by

    async def _in_executor(self, fn):
        return await asyncio.get_running_loop().run_in_executor(self._executor, fn)


class ServerHandle:
    """A background server: its bound address plus a way to stop it."""

    def __init__(self, host: str, port: int, thread, loop, stop_event) -> None:
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop
        self._stop_event = stop_event

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(
    catalog,
    host: str = "127.0.0.1",
    port: int = 8080,
    background: bool = False,
    **defaults,
) -> Optional[ServerHandle]:
    """Serve ``catalog`` over HTTP.

    Foreground (the CLI's mode) blocks until interrupted.  ``background=True``
    runs the event loop in a daemon thread and returns a
    :class:`ServerHandle` once the socket is bound — pass ``port=0`` for an
    ephemeral port (tests, benchmarks) and read ``handle.port``.
    """
    if not background:
        async def _run() -> None:
            server = CatalogServer(catalog, host, port, **defaults)
            await server.start()
            print(f"serving catalog at {server.url} (Ctrl-C to stop)", flush=True)
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.aclose()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass
        return None

    started: "concurrent.futures.Future" = concurrent.futures.Future()

    def _thread_main() -> None:
        async def _amain() -> None:
            stop_event = asyncio.Event()
            server = CatalogServer(catalog, host, port, **defaults)
            try:
                await server.start()
            except BaseException as error:  # surface bind failures to the caller
                started.set_exception(error)
                return
            started.set_result(
                (server.host, server.port, asyncio.get_running_loop(), stop_event)
            )
            try:
                await stop_event.wait()
            finally:
                await server.aclose()

        asyncio.run(_amain())

    thread = threading.Thread(target=_thread_main, name="repro-serve", daemon=True)
    thread.start()
    bound_host, bound_port, loop, stop_event = started.result(timeout=30)
    return ServerHandle(bound_host, bound_port, thread, loop, stop_event)
