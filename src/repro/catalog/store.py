"""The persistent, content-addressed catalog store.

On-disk layout (all plain JSON, human-inspectable)::

    <root>/
      catalog.json                  # the index: graphs + runs metadata
      objects/
        graphs/<graph_digest>.json  # canonical data-graph snapshots
        runs/<run_id>.json          # stored runs (results or spider sets)
        indexes/<run_id>.json       # derived pattern-index sidecars (serving)

Objects are **content-addressed**: a graph's file name is the digest of its
canonical structure, a run's file name is the digest of its cache key
``(graph_digest, config_digest, code_version, kind)``.  Storing the same
content twice is a no-op, and two processes racing to store the same object
write identical bytes.  Index updates go through an atomic
write-to-temp-then-rename, so a crashed writer never leaves a torn index.

The index keeps lightweight per-run summaries (pattern sizes, supports,
label sets) precisely so the query layer (:mod:`repro.catalog.query`) can
answer top-k and label-filter queries without touching graph objects at all.
"""

from __future__ import annotations

import json
import os
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..graph.view import GraphView
from .formats import (
    FORMAT_VERSION,
    CatalogFormatError,
    data_graph_from_payload,
    data_graph_payload,
    run_id_for_key,
    run_summary_from_record,
)

__all__ = ["CatalogError", "CatalogStore"]

PathLike = Union[str, Path]


class CatalogError(RuntimeError):
    """Raised for store-level failures (missing objects, bad index, ...)."""


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class CatalogStore:
    """A directory-backed catalog of graph snapshots and mining runs."""

    INDEX_NAME = "catalog.json"

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.graphs_dir = self.objects_dir / "graphs"
        self.runs_dir = self.objects_dir / "runs"
        self.indexes_dir = self.objects_dir / "indexes"
        self.telemetry_dir = self.objects_dir / "telemetry"

    # ------------------------------------------------------------------ #
    # index handling
    # ------------------------------------------------------------------ #
    @property
    def index_path(self) -> Path:
        return self.root / self.INDEX_NAME

    def _empty_index(self) -> Dict:
        return {"format": FORMAT_VERSION, "graphs": {}, "runs": {}}

    def _load_index(self) -> Dict:
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return self._empty_index()
        except (OSError, json.JSONDecodeError) as error:
            raise CatalogError(
                f"unreadable catalog index {self.index_path}: {error}"
            ) from error
        if data.get("format") != FORMAT_VERSION:
            raise CatalogError(
                f"catalog index {self.index_path} has format "
                f"{data.get('format')!r}; this build reads {FORMAT_VERSION}"
            )
        return data

    def _save_index(self, index: Dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self.index_path, json.dumps(index, indent=2, sort_keys=True) + "\n"
        )

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # graphs
    # ------------------------------------------------------------------ #
    def put_graph(
        self,
        graph: GraphView,
        pinned: bool = False,
        digest: Optional[str] = None,
        body: Optional[Dict] = None,
    ) -> str:
        """Store a graph snapshot; returns its content digest.

        Content-addressed: an already-stored graph is not rewritten.
        ``pinned=True`` (what ``catalog ingest`` uses) protects the snapshot
        from :meth:`gc` even when no run references it.  Callers that already
        serialised the graph (the run cache) pass ``digest`` — so an
        already-stored snapshot skips re-serialising entirely — and ``body``
        (the canonical ``graph_to_dict`` form behind that digest), so even a
        first-time store serialises the graph only once.
        """
        if digest is not None and self.has_graph(digest):
            entry = self._load_index()["graphs"].get(digest)
            if entry is not None and (entry.get("pinned") or not pinned):
                return digest
        if digest is not None and body is not None:
            payload = {"format": FORMAT_VERSION, "graph": body, "digest": digest}
        else:
            payload = data_graph_payload(graph)
        digest = payload["digest"]
        path = self.graphs_dir / f"{digest}.json"
        if not path.exists():
            self.graphs_dir.mkdir(parents=True, exist_ok=True)
            self._atomic_write(
                path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        index = self._load_index()
        entry = index["graphs"].get(digest)
        meta = {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "pinned": bool(pinned or (entry or {}).get("pinned", False)),
            "created_at": (entry or {}).get("created_at", _utc_now()),
        }
        if entry != meta:
            index["graphs"][digest] = meta
            self._save_index(index)
        return digest

    def has_graph(self, digest: str) -> bool:
        return (self.graphs_dir / f"{digest}.json").exists()

    def get_graph(self, digest: str, backend: str = "dict"):
        """Load a stored snapshot in the requested backend (``dict``/``csr``)."""
        path = self.graphs_dir / f"{digest}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CatalogError(
                f"graph {digest} is not in the catalog at {self.root}"
            ) from None
        except (OSError, json.JSONDecodeError) as error:
            raise CatalogError(f"unreadable graph object {path}: {error}") from error
        try:
            return data_graph_from_payload(payload, backend=backend)
        except CatalogFormatError as error:
            raise CatalogError(f"graph object {path}: {error}") from error

    def list_graphs(self) -> Dict[str, Dict]:
        """digest → index metadata for every stored graph."""
        return dict(self._load_index()["graphs"])

    # ------------------------------------------------------------------ #
    # runs
    # ------------------------------------------------------------------ #
    def put_run(self, run_id: str, payload: Dict, meta: Dict) -> str:
        """Store one run object and its index summary; returns ``run_id``.

        ``payload`` is the full run record (written to ``objects/runs``);
        ``meta`` is the lightweight summary kept in the index for listing and
        querying.  An existing run with the same id is overwritten — run ids
        are content addresses, so this only ever replaces equal-keyed data
        (the ``refresh`` cache mode relies on it).
        """
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self.runs_dir / f"{run_id}.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        index = self._load_index()
        index["runs"][run_id] = {**meta, "created_at": _utc_now()}
        self._save_index(index)
        return run_id

    def has_run(self, run_id: str) -> bool:
        return (self.runs_dir / f"{run_id}.json").exists()

    def get_run_payload(self, run_id: str) -> Dict:
        path = self.runs_dir / f"{run_id}.json"
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CatalogError(
                f"run {run_id} is not in the catalog at {self.root}"
            ) from None
        except (OSError, json.JSONDecodeError) as error:
            raise CatalogError(f"unreadable run object {path}: {error}") from error

    def list_runs(self, kind: Optional[str] = None) -> List[Dict]:
        """Index summaries (id included), newest first, optionally by kind."""
        runs = []
        for run_id, meta in self._load_index()["runs"].items():
            if kind is not None and meta.get("kind") != kind:
                continue
            runs.append({"run_id": run_id, **meta})
        runs.sort(key=lambda r: (r.get("created_at", ""), r["run_id"]), reverse=True)
        return runs

    # ------------------------------------------------------------------ #
    # pattern-index sidecars (derived, self-describing serving data)
    # ------------------------------------------------------------------ #
    def put_pattern_index(self, run_id: str, payload: Dict) -> None:
        """Store the needle-side pattern index sidecar for ``run_id``.

        Sidecars are derived data keyed like their run, so they are *not*
        tracked in ``catalog.json`` — losing one costs a rebuild on the next
        containment query, never correctness.
        """
        self.indexes_dir.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self.indexes_dir / f"{run_id}.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )

    def has_pattern_index(self, run_id: str) -> bool:
        return (self.indexes_dir / f"{run_id}.json").exists()

    def get_pattern_index(self, run_id: str) -> Optional[Dict]:
        """The sidecar payload, or ``None`` when missing or unreadable.

        Unreadable sidecars degrade to a rebuild (the same broken-object
        contract as the run cache), so a truncated write never fails a query.
        """
        path = self.indexes_dir / f"{run_id}.json"
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def drop_pattern_index(self, run_id: str) -> None:
        try:
            (self.indexes_dir / f"{run_id}.json").unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # run-telemetry sidecars (derived observability data)
    # ------------------------------------------------------------------ #
    def put_telemetry(self, run_id: str, payload: Dict) -> None:
        """Store the run-telemetry sidecar (metrics snapshot + span tree).

        Same contract as the pattern-index sidecar: derived data keyed like
        its run, untracked in ``catalog.json``, excluded from cache keys —
        losing one loses diagnostics for that run, never correctness.
        """
        self.telemetry_dir.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self.telemetry_dir / f"{run_id}.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )

    def has_telemetry(self, run_id: str) -> bool:
        return (self.telemetry_dir / f"{run_id}.json").exists()

    def get_telemetry(self, run_id: str) -> Optional[Dict]:
        """The telemetry sidecar, or ``None`` when missing or unreadable."""
        path = self.telemetry_dir / f"{run_id}.json"
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def drop_telemetry(self, run_id: str) -> None:
        try:
            (self.telemetry_dir / f"{run_id}.json").unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # garbage collection
    # ------------------------------------------------------------------ #
    def gc(self) -> Dict[str, int]:
        """Reconcile the index with the object tree and drop garbage.

        The object tree is the ground truth and the index a rebuildable view
        of it, so gc **recovers** before it deletes:

        1. index entries whose object file vanished are dropped;
        2. unindexed-but-valid object files are re-indexed (a lost index
           update from two concurrent writers, say — the run object itself
           carries everything its summary needs); files that do not parse as
           valid objects are deleted as strays;
        3. *unpinned* graphs referenced by no run are deleted — pinned graphs
           (explicit ``catalog ingest``) always survive.  Recovered graphs
           come back unpinned, so an orphaned snapshot still ages out here;
        4. pattern-index and telemetry sidecars whose run is gone are
           deleted.  Sidecars are derived data (a pattern index is
           rebuildable from the run payload, telemetry is diagnostics), so
           gc never tries to recover them.

        Returns removal/recovery counters.
        """
        index = self._load_index()
        removed = {
            "runs": 0,
            "graphs": 0,
            "stray_files": 0,
            "recovered": 0,
            "indexes": 0,
            "telemetry": 0,
        }

        # 1 + 2 for runs: drop dead entries, then recover or delete strays.
        for run_id in list(index["runs"]):
            if not self.has_run(run_id):
                del index["runs"][run_id]
                removed["runs"] += 1
        if self.runs_dir.is_dir():
            for path in self.runs_dir.glob("*.json"):
                if path.stem in index["runs"]:
                    continue
                try:
                    record = json.loads(path.read_text(encoding="utf-8"))
                    # CatalogFormatError is a ValueError: caught below.
                    meta = run_summary_from_record(record)
                    # Run ids are content addresses of the key: a record
                    # whose filename does not hash back from its own key is
                    # misplaced, and re-indexing it would poison later
                    # cache lookups of the id it squats on.
                    valid = run_id_for_key(record["key"]) == path.stem
                except (OSError, ValueError, KeyError, TypeError):
                    valid = False
                if not valid:
                    path.unlink()
                    removed["stray_files"] += 1
                    continue
                index["runs"][path.stem] = {**meta, "created_at": _utc_now()}
                removed["recovered"] += 1

        # 1 + 2 for graphs: same, validating the content address.
        for digest in list(index["graphs"]):
            if not self.has_graph(digest):
                del index["graphs"][digest]
                removed["graphs"] += 1
        if self.graphs_dir.is_dir():
            for path in self.graphs_dir.glob("*.json"):
                if path.stem in index["graphs"]:
                    continue
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                    body = payload["graph"]
                    valid = payload.get("digest") == path.stem
                    num_vertices = len(body["vertices"])
                    num_edges = len(body["edges"])
                except (OSError, ValueError, KeyError, TypeError):
                    valid = False
                if not valid:
                    path.unlink()
                    removed["stray_files"] += 1
                    continue
                index["graphs"][path.stem] = {
                    "num_vertices": num_vertices,
                    "num_edges": num_edges,
                    "pinned": False,
                    "created_at": _utc_now(),
                }
                removed["recovered"] += 1

        # 3: collect unpinned graphs no run references.
        referenced = {meta.get("graph_digest") for meta in index["runs"].values()}
        for digest in list(index["graphs"]):
            entry = index["graphs"][digest]
            if not entry.get("pinned") and digest not in referenced:
                (self.graphs_dir / f"{digest}.json").unlink()
                del index["graphs"][digest]
                removed["graphs"] += 1

        # 4: sidecars of vanished runs.
        if self.indexes_dir.is_dir():
            for path in self.indexes_dir.glob("*.json"):
                if path.stem not in index["runs"]:
                    path.unlink()
                    removed["indexes"] += 1
        if self.telemetry_dir.is_dir():
            for path in self.telemetry_dir.glob("*.json"):
                if path.stem not in index["runs"]:
                    path.unlink()
                    removed["telemetry"] += 1

        self._save_index(index)
        return removed
