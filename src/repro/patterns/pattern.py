"""A frequent pattern: a small labeled graph plus its embeddings in the data graph.

In the single-graph setting the support set of a pattern *is* its embedding
set (the paper writes ``P_sup = E[P]``), so a pattern object always carries
its embeddings.  The canonical code of the pattern graph is cached because it
is the dictionary key every miner uses to deduplicate candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from ..graph.algorithms import diameter as graph_diameter
from ..graph.canonical import canonical_code
from ..graph.isomorphism import SubgraphMatcher
from ..graph.labeled_graph import LabeledGraph, Vertex
from ..graph.view import GraphView
from .embedding import Embedding


@dataclass
class Pattern:
    """A pattern graph together with its known embeddings in the data graph."""

    graph: LabeledGraph
    embeddings: List[Embedding] = field(default_factory=list)
    _code: Optional[str] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_subgraph(cls, data_graph: GraphView, vertices: Iterable[Vertex]) -> "Pattern":
        """The pattern induced by ``vertices`` of the data graph, with the identity embedding."""
        vertex_list = list(vertices)
        sub = data_graph.subgraph(vertex_list)
        embedding = Embedding.from_dict({v: v for v in vertex_list})
        return cls(graph=sub, embeddings=[embedding])

    @classmethod
    def single_vertex(cls, label, data_graph: Optional[GraphView] = None) -> "Pattern":
        """The one-vertex pattern with ``label``; embeddings filled from ``data_graph`` if given."""
        g = LabeledGraph()
        g.add_vertex(0, label)
        embeddings = []
        if data_graph is not None:
            embeddings = [
                Embedding.from_dict({0: v})
                for v in sorted(data_graph.vertices_with_label(label), key=repr)
            ]
        return cls(graph=g, embeddings=embeddings)

    # ------------------------------------------------------------------ #
    # size / structure
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def size(self) -> int:
        """The paper defines pattern size |P| as the number of edges."""
        return self.graph.num_edges

    def diameter(self) -> int:
        return graph_diameter(self.graph)

    @property
    def code(self) -> str:
        """Canonical code of the pattern graph (cached)."""
        if self._code is None:
            self._code = canonical_code(self.graph)
        return self._code

    def invalidate_code(self) -> None:
        """Call after mutating :attr:`graph` in place."""
        self._code = None

    # ------------------------------------------------------------------ #
    # embeddings / support
    # ------------------------------------------------------------------ #
    @property
    def support(self) -> int:
        """Raw embedding count.  Overlap-aware measures live in :mod:`.support`."""
        return len(self.embeddings)

    def add_embedding(self, embedding: Embedding) -> None:
        self.embeddings.append(embedding)

    def deduplicate_embeddings(self) -> None:
        """Drop embeddings whose data-vertex image sets coincide.

        Automorphisms of the pattern generate several mappings onto the same
        data subgraph; for support purposes these are one occurrence.
        """
        seen: Set[FrozenSet[Vertex]] = set()
        unique: List[Embedding] = []
        for embedding in self.embeddings:
            image = embedding.image
            if image in seen:
                continue
            seen.add(image)
            unique.append(embedding)
        self.embeddings = unique

    def covered_vertices(self) -> Set[Vertex]:
        """All data-graph vertices covered by at least one embedding."""
        covered: Set[Vertex] = set()
        for embedding in self.embeddings:
            covered |= embedding.image
        return covered

    def recompute_embeddings(self, data_graph: GraphView, limit: Optional[int] = None) -> None:
        """Re-enumerate all embeddings from scratch using the subgraph matcher.

        The matcher's candidate domains mean a pattern that cannot occur
        (label, degree, neighbor-signature or arc-consistency infeasible)
        costs one domain build and no search at all.
        """
        matcher = SubgraphMatcher(self.graph, data_graph)
        self.embeddings = [
            Embedding.from_dict(m) for m in matcher.iter_embeddings(limit=limit)
        ]
        self.deduplicate_embeddings()

    def verify_embeddings(self, data_graph: GraphView) -> bool:
        """Whether every stored embedding is a valid embedding of the pattern."""
        return all(e.is_valid(self.graph, data_graph) for e in self.embeddings)

    # ------------------------------------------------------------------ #
    # comparisons
    # ------------------------------------------------------------------ #
    def is_isomorphic_to(self, other: "Pattern") -> bool:
        if self.num_vertices != other.num_vertices or self.num_edges != other.num_edges:
            return False
        return self.code == other.code

    def contains_pattern(self, other: "Pattern") -> bool:
        """Whether ``other`` is a subgraph of this pattern (label-preserving)."""
        if other.num_vertices > self.num_vertices or other.num_edges > self.num_edges:
            return False
        return SubgraphMatcher(other.graph, self.graph).exists()

    def copy(self) -> "Pattern":
        return Pattern(graph=self.graph.copy(), embeddings=list(self.embeddings), _code=self._code)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Pattern(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"embeddings={len(self.embeddings)})"
        )


def sort_patterns_by_size(patterns: Sequence[Pattern], by: str = "vertices") -> List[Pattern]:
    """Sort patterns largest-first.

    ``by`` is ``"vertices"`` (the paper reports |V| for most figures),
    ``"edges"`` (the paper's formal |P|), or ``"both"`` (vertices then edges).
    """
    if by == "vertices":
        def key(p):
            return (p.num_vertices, p.num_edges)
    elif by == "edges":
        def key(p):
            return (p.num_edges, p.num_vertices)
    elif by == "both":
        def key(p):
            return (p.num_vertices + p.num_edges, p.num_vertices)
    else:
        raise ValueError(f"unknown sort key {by!r}")
    return sorted(patterns, key=key, reverse=True)


def top_k_patterns(patterns: Sequence[Pattern], k: int, by: str = "vertices") -> List[Pattern]:
    """The K largest patterns (ties broken deterministically by canonical code)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    ranked = sort_patterns_by_size(patterns, by=by)
    ranked.sort(key=lambda p: ((-p.num_vertices, -p.num_edges) if by == "vertices"
                               else (-p.num_edges, -p.num_vertices)))
    return ranked[:k]


def deduplicate_patterns(patterns: Iterable[Pattern]) -> List[Pattern]:
    """Merge patterns with identical canonical codes, unioning their embeddings."""
    merged: Dict[str, Pattern] = {}
    for pattern in patterns:
        existing = merged.get(pattern.code)
        if existing is None:
            merged[pattern.code] = pattern.copy()
        else:
            known_images = {e.image for e in existing.embeddings}
            for embedding in pattern.embeddings:
                if embedding.image not in known_images:
                    existing.add_embedding(embedding)
                    known_images.add(embedding.image)
    return list(merged.values())
