"""r-spiders and the spider-set pattern representation.

Definition 4 of the paper: given a frequent pattern ``P`` and a vertex
``u ∈ V(P)``, if every vertex of ``P`` is within distance ``r`` of ``u`` then
``P`` is an *r-spider with head* ``u``.

Two constructions built on spiders power SpiderMine:

* **spider extraction** — for any pattern ``P`` and vertex ``v``, the
  r-neighbourhood of ``v`` *inside P* is an r-spider ``s_h[v]``;
* the **spider-set representation** ``S[P] = {s_h[v] | v ∈ V(P)}`` — a
  multiset of canonical spider codes, one per pattern vertex.  Theorem 2:
  isomorphic patterns have equal spider-sets, so unequal spider-sets prove
  non-isomorphism and let the miner skip the expensive isomorphism test
  (the *spider-set pruning* heuristic).

A spider's canonical code must distinguish its head, otherwise two spiders
that differ only in which vertex is the head would collide.  We achieve that
by tagging the head's label before canonicalisation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Counter as CounterType, Dict, List, Optional, Tuple

from ..graph.algorithms import bfs_distances, is_r_bounded_from
from ..graph.canonical import canonical_code
from ..graph.isomorphism import SubgraphMatcher, embedding_edge_image
from ..graph.labeled_graph import LabeledGraph, Vertex
from ..graph.view import GraphView
from .embedding import Embedding
from .pattern import Pattern

_HEAD_TAG = "★"  # star marker appended to the head label inside spider codes


@dataclass
class Spider(Pattern):
    """An r-spider: a pattern with a distinguished head vertex."""

    head: Vertex = None
    radius: int = 1

    def __post_init__(self) -> None:
        if self.head is None:
            raise ValueError("a Spider requires a head vertex")
        if self.head not in self.graph:
            raise ValueError(f"head {self.head!r} is not a vertex of the spider graph")
        if not is_r_bounded_from(self.graph, self.head, self.radius):
            raise ValueError(
                f"graph is not {self.radius}-bounded from head {self.head!r}"
            )

    @property
    def head_label(self):
        return self.graph.label(self.head)

    def spider_code(self) -> str:
        """Canonical code that also distinguishes the head vertex."""
        return head_distinguished_code(self.graph, self.head)

    def boundary_vertices(self) -> List[Vertex]:
        """Vertices at distance exactly ``radius`` from the head (the queue B[s]).

        If the spider is shallower than ``radius`` (e.g. a single vertex), the
        farthest vertices are returned so growth always has a frontier.
        """
        dist = bfs_distances(self.graph, self.head)
        max_dist = max(dist.values())
        target = min(self.radius, max_dist)
        boundary = [v for v, d in dist.items() if d == target]
        return sorted(boundary, key=repr)

    def head_images(self) -> List[Vertex]:
        """Data-graph vertices that serve as the head in some embedding."""
        return sorted({dict(e.mapping)[self.head] for e in self.embeddings}, key=repr)

    def recompute_embeddings(
        self, data_graph: GraphView, limit: Optional[int] = None
    ) -> None:
        """Re-enumerate embeddings head-anchored, one domain build for all anchors.

        This is the Stage-I access pattern: the head is pinned to every
        feasible data vertex of its label in canonical (repr-sorted) order and
        the rest of the spider is matched around it, with the matcher's
        candidate domains and anchored BFS order built once for the whole
        batch instead of once per anchor.  Embeddings are deduplicated by
        (head image, vertex image, edge image): automorphic remappings onto
        the same data subgraph collapse to one witness per anchor, but
        same-vertices/different-edges embeddings are all kept — they are
        distinct edge-disjoint witnesses, the class the 1.4.0 support fix
        made countable (deduplicating on vertex images alone here would
        silently undercount ``edge_disjoint_support`` over the result).
        ``limit`` caps the total kept.
        """
        matcher = SubgraphMatcher(self.graph, data_graph)
        seen = set()
        kept: List[Embedding] = []
        for head_image, mapping in matcher.iter_anchored(self.head):
            key = (
                head_image,
                frozenset(mapping.values()),
                embedding_edge_image(self.graph, mapping),
            )
            if key in seen:
                continue
            seen.add(key)
            kept.append(Embedding.from_dict(mapping))
            if limit is not None and len(kept) >= limit:
                break
        self.embeddings = kept

    def copy(self) -> "Spider":
        return Spider(
            graph=self.graph.copy(),
            embeddings=list(self.embeddings),
            head=self.head,
            radius=self.radius,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Spider(head={self.head!r}, r={self.radius}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, embeddings={len(self.embeddings)})"
        )


def head_distinguished_code(graph: LabeledGraph, head: Vertex) -> str:
    """Canonical code of ``graph`` with ``head``'s label tagged.

    Isomorphic spiders whose isomorphism maps head to head — and only those —
    receive equal codes.
    """
    tagged = LabeledGraph()
    for v in graph.vertices():
        label = graph.label(v)
        if v == head:
            label = f"{label}{_HEAD_TAG}"
        tagged.add_vertex(v, label)
    for u, v in graph.edges():
        tagged.add_edge(u, v)
    return canonical_code(tagged)


def extract_spider(
    pattern_graph: LabeledGraph,
    vertex: Vertex,
    radius: int,
) -> Tuple[LabeledGraph, Vertex]:
    """The r-neighbourhood spider of ``vertex`` inside ``pattern_graph`` (graph, head).

    Following the paper's Figure 3, the neighbourhood spider keeps the
    vertices within distance ``r`` of the head and the edges that cross BFS
    layers (distance difference exactly 1) — intra-layer edges are not part of
    the per-vertex spider.  With this convention the paper's Figure 3 (II)
    example behaves as described: a 6-cycle and two disjoint triangles share
    their radius-1 spider-sets but are separated at radius 2.
    """
    within = pattern_graph.bfs_within(vertex, radius)
    spider = LabeledGraph()
    for v in within:
        spider.add_vertex(v, pattern_graph.label(v))
    for u in within:
        for w in sorted(pattern_graph.neighbors(u), key=repr):
            if w in within and abs(within[u] - within[w]) == 1 and not spider.has_edge(u, w):
                spider.add_edge(u, w)
    return spider, vertex


def extract_spider_from_data(
    data_graph: LabeledGraph,
    vertex: Vertex,
    radius: int,
) -> Spider:
    """The r-neighbourhood spider around a *data-graph* vertex, with its identity embedding."""
    sub, head = extract_spider(data_graph, vertex, radius)
    embedding = Embedding.from_dict({v: v for v in sub.vertices()})
    return Spider(graph=sub, embeddings=[embedding], head=head, radius=radius)


# ---------------------------------------------------------------------- #
# spider-set representation
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SpiderSet:
    """The multiset ``S[P]`` of per-vertex spider codes of a pattern."""

    codes: Tuple[Tuple[str, int], ...]

    @classmethod
    def of(cls, pattern_graph: LabeledGraph, radius: int = 1) -> "SpiderSet":
        counter: CounterType[str] = Counter()
        for v in pattern_graph.vertices():
            sub, head = extract_spider(pattern_graph, v, radius)
            counter[head_distinguished_code(sub, head)] += 1
        return cls(codes=tuple(sorted(counter.items())))

    def __len__(self) -> int:
        return sum(count for _, count in self.codes)

    @property
    def distinct_spiders(self) -> int:
        return len(self.codes)

    def as_counter(self) -> CounterType[str]:
        return Counter(dict(self.codes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpiderSet):
            return NotImplemented
        return self.codes == other.codes

    def __hash__(self) -> int:
        # In-process dict bucketing only; the hash never reaches a digest.
        return hash(self.codes)  # reprolint: disable=DET002


class SpiderSetIndex:
    """Dedup index for candidate patterns using spider-set pruning.

    The index buckets patterns by their :class:`SpiderSet`.  When a new
    candidate arrives:

    * a previously unseen spider-set ⇒ certainly a new pattern (Theorem 2),
      no isomorphism test is performed;
    * a seen spider-set ⇒ an exact check (canonical code comparison) runs only
      against the patterns in the same bucket.

    The counters expose how many isomorphism checks the pruning avoided, which
    the ablation benchmark reports.
    """

    def __init__(self, radius: int = 1) -> None:
        self.radius = radius
        self._buckets: Dict[SpiderSet, Dict[str, Pattern]] = {}
        self.isomorphism_checks = 0
        self.pruned_checks = 0

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def patterns(self) -> List[Pattern]:
        out: List[Pattern] = []
        for bucket in self._buckets.values():
            out.extend(bucket.values())
        return out

    def add(self, pattern: Pattern) -> Tuple[Pattern, bool]:
        """Insert ``pattern``; return (canonical instance, was_new).

        If an isomorphic pattern already exists its embeddings are merged and
        the existing instance is returned.
        """
        spider_set = SpiderSet.of(pattern.graph, radius=self.radius)
        bucket = self._buckets.get(spider_set)
        if bucket is None:
            # New spider-set: Theorem 2 guarantees no existing pattern can be
            # isomorphic, so no isomorphism work is needed at all.
            self.pruned_checks += len(self)
            self._buckets[spider_set] = {pattern.code: pattern}
            return pattern, True
        self.isomorphism_checks += len(bucket)
        existing = bucket.get(pattern.code)
        if existing is None:
            bucket[pattern.code] = pattern
            return pattern, True
        known_images = {e.image for e in existing.embeddings}
        for embedding in pattern.embeddings:
            if embedding.image not in known_images:
                existing.add_embedding(embedding)
                known_images.add(embedding.image)
        return existing, False

    def might_be_isomorphic(self, first: Pattern, second: Pattern) -> bool:
        """The pruning test itself: False ⇒ definitely not isomorphic."""
        return SpiderSet.of(first.graph, self.radius) == SpiderSet.of(second.graph, self.radius)
