"""Pattern layer: patterns, embeddings, support measures, spiders and the lattice helpers."""

from .embedding import Embedding
from .overlap import (
    DEFAULT_EXACT_LIMIT,
    EmbeddingIndex,
    conflict_digest,
    distinct_indices,
    independent_set_size,
    max_independent_set,
)
from .pattern import Pattern, deduplicate_patterns, sort_patterns_by_size, top_k_patterns
from .support import (
    SupportMeasure,
    compute_support,
    edge_disjoint_support,
    embedding_image_support,
    harmful_overlap_support,
    is_frequent,
    select_disjoint_embeddings,
)
from .spider import (
    Spider,
    SpiderSet,
    SpiderSetIndex,
    extract_spider,
    extract_spider_from_data,
    head_distinguished_code,
)
from .lattice import (
    filter_maximal_patterns,
    group_by_size,
    is_sub_pattern,
    same_support_set,
    size_distribution,
)

__all__ = [
    "Embedding",
    "DEFAULT_EXACT_LIMIT",
    "EmbeddingIndex",
    "conflict_digest",
    "distinct_indices",
    "independent_set_size",
    "max_independent_set",
    "Pattern",
    "deduplicate_patterns",
    "sort_patterns_by_size",
    "top_k_patterns",
    "SupportMeasure",
    "compute_support",
    "edge_disjoint_support",
    "embedding_image_support",
    "harmful_overlap_support",
    "is_frequent",
    "select_disjoint_embeddings",
    "Spider",
    "SpiderSet",
    "SpiderSetIndex",
    "extract_spider",
    "extract_spider_from_data",
    "head_distinguished_code",
    "filter_maximal_patterns",
    "group_by_size",
    "is_sub_pattern",
    "same_support_set",
    "size_distribution",
]
