"""Pattern-lattice utilities: closedness, maximality and containment checks.

SpiderGrow drops non-closed intermediate patterns (a grown pattern with the
exact same embedding support as its parent supersedes the parent), and the
final reporting stage of every miner wants maximal patterns.  These helpers
operate on :class:`repro.patterns.pattern.Pattern` collections.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..graph.isomorphism import SubgraphMatcher
from .pattern import Pattern


def is_sub_pattern(candidate: Pattern, container: Pattern) -> bool:
    """Whether ``candidate`` is (isomorphic to) a subgraph of ``container``.

    The size/label pre-checks answer the cheap negatives without building a
    matcher; past them, the matcher's domain construction (degree +
    neighbor-signature + arc-consistency) rejects most remaining impossible
    containments before any backtracking starts.
    """
    if candidate.num_vertices > container.num_vertices:
        return False
    if candidate.num_edges > container.num_edges:
        return False
    container_counts = container.graph.label_counts()
    for label, needed in candidate.graph.label_counts().items():
        if container_counts.get(label, 0) < needed:
            return False
    return SubgraphMatcher(candidate.graph, container.graph).exists()


def filter_maximal_patterns(patterns: Sequence[Pattern]) -> List[Pattern]:
    """Keep only patterns not contained in a strictly larger pattern of the list.

    O(n²) subgraph checks; the candidate lists this runs on (merged/grown
    SpiderMine outputs, baseline result sets) are small.
    """
    ordered = sorted(patterns, key=lambda p: (p.num_vertices, p.num_edges), reverse=True)
    maximal: List[Pattern] = []
    for pattern in ordered:
        contained = any(
            (pattern.num_vertices, pattern.num_edges)
            <= (other.num_vertices, other.num_edges)
            and pattern.code != other.code
            and is_sub_pattern(pattern, other)
            for other in maximal
        )
        if not contained:
            maximal.append(pattern)
    return maximal


def same_support_set(parent: Pattern, child: Pattern) -> bool:
    """Whether ``child``'s embeddings cover exactly the embeddings of ``parent``.

    This is the non-closedness test of Algorithm 2 line 22 (``Q_sup = P_sup``):
    every embedding of the parent extends into an embedding of the child, i.e.
    the parent is not closed and can be dropped.
    """
    parent_images = {e.image for e in parent.embeddings}
    child_images = {e.image for e in child.embeddings}
    if len(parent_images) != len(child_images):
        return False
    # Each child image must contain exactly one parent image (child grew from parent).
    for child_image in child_images:
        if not any(parent_image <= child_image for parent_image in parent_images):
            return False
    for parent_image in parent_images:
        if not any(parent_image <= child_image for child_image in child_images):
            return False
    return True


def group_by_size(patterns: Iterable[Pattern], by: str = "vertices") -> Dict[int, List[Pattern]]:
    """Bucket patterns by size — the raw material of the paper's histograms."""
    groups: Dict[int, List[Pattern]] = {}
    for pattern in patterns:
        size = pattern.num_vertices if by == "vertices" else pattern.num_edges
        groups.setdefault(size, []).append(pattern)
    return dict(sorted(groups.items()))


def size_distribution(patterns: Iterable[Pattern], by: str = "vertices") -> Dict[int, int]:
    """size → number of patterns of that size."""
    return {size: len(group) for size, group in group_by_size(patterns, by=by).items()}
