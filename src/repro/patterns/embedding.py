"""Embeddings of a pattern in a data graph.

An embedding is an injective, label-preserving map from the pattern's
vertices to the data graph's vertices that maps pattern edges onto data-graph
edges.  The single-graph setting makes embeddings first-class: support is
computed from how embeddings overlap, and SpiderMine grows patterns by
extending their embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from ..graph.labeled_graph import LabeledGraph, Vertex
from ..graph.view import GraphView


@dataclass(frozen=True)
class Embedding:
    """One embedding: an immutable pattern-vertex → data-vertex mapping."""

    mapping: Tuple[Tuple[Vertex, Vertex], ...]

    @classmethod
    def from_dict(cls, mapping: Mapping[Vertex, Vertex]) -> "Embedding":
        items = tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0])))
        return cls(mapping=items)

    def to_dict(self) -> Dict[Vertex, Vertex]:
        return dict(self.mapping)

    def __getitem__(self, pattern_vertex: Vertex) -> Vertex:
        for p, g in self.mapping:
            if p == pattern_vertex:
                return g
        raise KeyError(pattern_vertex)

    def __len__(self) -> int:
        return len(self.mapping)

    def __iter__(self):
        return iter(self.mapping)

    @property
    def image(self) -> FrozenSet[Vertex]:
        """The data-graph vertices this embedding covers."""
        return frozenset(g for _, g in self.mapping)

    def edge_image(self, pattern: LabeledGraph) -> FrozenSet[Tuple[Vertex, Vertex]]:
        """The data-graph edges this embedding covers (normalised endpoint order)."""
        lookup = dict(self.mapping)
        edges = set()
        for u, v in pattern.edges():
            a, b = lookup[u], lookup[v]
            if repr(b) < repr(a):
                a, b = b, a
            edges.add((a, b))
        return frozenset(edges)

    def overlaps(self, other: "Embedding") -> bool:
        """Whether the two embeddings share at least one data-graph vertex."""
        return bool(self.image & other.image)

    def shares_edge(self, other: "Embedding", pattern: LabeledGraph,
                    other_pattern: LabeledGraph) -> bool:
        """Whether the two embeddings cover at least one common data-graph edge."""
        return bool(self.edge_image(pattern) & other.edge_image(other_pattern))

    def restrict(self, pattern_vertices: Iterable[Vertex]) -> "Embedding":
        """The sub-embedding on ``pattern_vertices``."""
        wanted = set(pattern_vertices)
        return Embedding(mapping=tuple((p, g) for p, g in self.mapping if p in wanted))

    def compose_rename(self, rename: Mapping[Vertex, Vertex]) -> "Embedding":
        """Rename pattern vertices (used when patterns are canonicalised)."""
        return Embedding.from_dict({rename[p]: g for p, g in self.mapping})

    def is_injective(self) -> bool:
        images = [g for _, g in self.mapping]
        return len(images) == len(set(images))

    def is_valid(self, pattern: LabeledGraph, graph: GraphView) -> bool:
        """Full validity check: injective, label-preserving, edge-preserving."""
        lookup = dict(self.mapping)
        if set(lookup) != set(pattern.vertices()):
            return False
        if not self.is_injective():
            return False
        for p_vertex, g_vertex in lookup.items():
            if g_vertex not in graph:
                return False
            if pattern.label(p_vertex) != graph.label(g_vertex):
                return False
        for u, v in pattern.edges():
            if not graph.has_edge(lookup[u], lookup[v]):
                return False
        return True
