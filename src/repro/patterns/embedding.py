"""Embeddings of a pattern in a data graph.

An embedding is an injective, label-preserving map from the pattern's
vertices to the data graph's vertices that maps pattern edges onto data-graph
edges.  The single-graph setting makes embeddings first-class: support is
computed from how embeddings overlap, and SpiderMine grows patterns by
extending their embeddings.

Embeddings sit on the innermost loop of every support computation, so lookups
and images are engineered accordingly: the pattern→data mapping is backed by
a lazily built dict (O(1) ``__getitem__``), and both the vertex image and the
edge image are memoised on the instance — the overlap engine
(:mod:`repro.patterns.overlap`) reads them once per conflict-graph build and
every later reader gets the cached frozenset.  The caches are derived state:
they are excluded from equality, hashing and pickling (workers re-derive them
on first use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from ..graph.labeled_graph import LabeledGraph, Vertex, normalise_edge
from ..graph.view import GraphView


@dataclass(frozen=True)
class Embedding:
    """One embedding: an immutable pattern-vertex → data-vertex mapping."""

    mapping: Tuple[Tuple[Vertex, Vertex], ...]

    @classmethod
    def from_dict(cls, mapping: Mapping[Vertex, Vertex]) -> "Embedding":
        items = tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0])))
        return cls(mapping=items)

    def to_dict(self) -> Dict[Vertex, Vertex]:
        return dict(self.mapping)

    def _lookup(self) -> Dict[Vertex, Vertex]:
        """The mapping as a dict, built once per instance."""
        lookup = self.__dict__.get("_lookup_cache")
        if lookup is None:
            lookup = dict(self.mapping)
            object.__setattr__(self, "_lookup_cache", lookup)
        return lookup

    def __getitem__(self, pattern_vertex: Vertex) -> Vertex:
        return self._lookup()[pattern_vertex]

    def __len__(self) -> int:
        return len(self.mapping)

    def __iter__(self):
        return iter(self.mapping)

    def __getstate__(self):
        # The mapping tuple is the whole identity; lookup/image caches are
        # derived state and would only bloat pickles (the edge-image cache
        # would even drag its pattern graph across process boundaries).
        return {"mapping": self.mapping}

    def __setstate__(self, state):
        object.__setattr__(self, "mapping", state["mapping"])

    @property
    def image(self) -> FrozenSet[Vertex]:
        """The data-graph vertices this embedding covers (memoised)."""
        image = self.__dict__.get("_image_cache")
        if image is None:
            image = frozenset(g for _, g in self.mapping)
            object.__setattr__(self, "_image_cache", image)
        return image

    def edge_image(self, pattern: LabeledGraph) -> FrozenSet[Tuple[Vertex, Vertex]]:
        """The data-graph edges this embedding covers (normalised endpoint order).

        Memoised per pattern object: the cache pins the pattern graph it was
        computed against together with its mutation counter, so *any*
        in-place structural change — including edge rewrites that leave the
        edge count unchanged — invalidates it.  Reused by every
        support/overlap computation over the same pattern.
        """
        token = getattr(pattern, "mutation_count", None)
        cached = self.__dict__.get("_edge_image_cache")
        if cached is not None and cached[0] is pattern and cached[1] == token:
            return cached[2]
        lookup = self._lookup()
        edges = frozenset(
            normalise_edge(lookup[u], lookup[v]) for u, v in pattern.edges()
        )
        object.__setattr__(self, "_edge_image_cache", (pattern, token, edges))
        return edges

    def overlaps(self, other: "Embedding") -> bool:
        """Whether the two embeddings share at least one data-graph vertex."""
        return bool(self.image & other.image)

    def shares_edge(self, other: "Embedding", pattern: LabeledGraph,
                    other_pattern: LabeledGraph) -> bool:
        """Whether the two embeddings cover at least one common data-graph edge."""
        return bool(self.edge_image(pattern) & other.edge_image(other_pattern))

    def restrict(self, pattern_vertices: Iterable[Vertex]) -> "Embedding":
        """The sub-embedding on ``pattern_vertices``."""
        wanted = set(pattern_vertices)
        return Embedding(mapping=tuple((p, g) for p, g in self.mapping if p in wanted))

    def compose_rename(self, rename: Mapping[Vertex, Vertex]) -> "Embedding":
        """Rename pattern vertices (used when patterns are canonicalised)."""
        return Embedding.from_dict({rename[p]: g for p, g in self.mapping})

    def is_injective(self) -> bool:
        images = [g for _, g in self.mapping]
        return len(images) == len(set(images))

    def is_valid(self, pattern: LabeledGraph, graph: GraphView) -> bool:
        """Full validity check: injective, label-preserving, edge-preserving."""
        lookup = self._lookup()
        if set(lookup) != set(pattern.vertices()):
            return False
        if not self.is_injective():
            return False
        for p_vertex, g_vertex in lookup.items():
            if g_vertex not in graph:
                return False
            if pattern.label(p_vertex) != graph.label(g_vertex):
                return False
        for u, v in pattern.edges():
            if not graph.has_edge(lookup[u], lookup[v]):
                return False
        return True
