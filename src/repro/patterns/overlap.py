"""The shared overlap engine: one conflict-graph builder for every support path.

Single-graph support is an independent-set computation over a *conflict
graph*: embeddings (or growth occurrences) are nodes, and two nodes conflict
when their images overlap — on a shared data-graph **vertex** for the
harmful-overlap measure, on a shared data-graph **edge** for the
edge-disjoint measure.  Before this module existed, ``patterns/support.py``
and ``core/growth.py`` each built that graph with independent O(n²) all-pairs
intersection tests over recomputed images; on a dense label class with
hundreds of embeddings per pattern those scans dominate the whole mine.

:class:`EmbeddingIndex` replaces the pairwise scans with inverted maps —
``vertex → [embedding ids]`` and ``edge → [embedding ids]`` — so the conflict
graph is assembled by walking the postings: two ids conflict iff they appear
in a common posting list, and ids that never co-occur are never compared at
all.  Building the postings is O(Σ image-size); emitting conflicts is
O(Σ_key t_key²) over posting sizes, i.e. proportional to the overlap actually
present instead of to n².  The construction is deterministic (ids are list
positions; postings append in id order) and produces the **same adjacency
dict, with the same key insertion order**, as the all-pairs reference —
:meth:`EmbeddingIndex.conflict_graph_all_pairs` exists precisely so tests and
the perf-smoke CI gate can assert that equivalence via
:func:`conflict_digest`.

Independent sets are solved exactly (branch and bound) up to
``DEFAULT_EXACT_LIMIT`` nodes and fall back to the degeneracy-ordered greedy
(:func:`repro.graph.algorithms.degeneracy_ordered_independent_set`) above it
— a lower bound, hence still safe for anti-monotone pruning.

Everything that reasons about embedding overlap goes through here: the three
support measures and witness selection (``patterns/support.py``), occurrence
support and the CheckMerge overlap scan (``core/growth.py``), and Stage-I
frequency checks (``core/spider_miner.py`` via ``is_frequent``).  Support
values feed canonical result digests and catalog cache keys, so everything
here is deterministic for a fixed input, and any change to this module's
*semantics* (measure definitions, dedup keys, the MIS fallback) is a
mining-output change that must ship with a package version bump — the cache
key includes the version, which fences old entries off.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set

from ..graph import kernels
from ..graph.algorithms import (
    degeneracy_ordered_independent_set,
    exact_maximum_independent_set,
)
from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from .embedding import Embedding

#: Largest conflict graph solved with exact branch-and-bound MIS; bigger
#: instances use the degeneracy-ordered greedy lower bound.
DEFAULT_EXACT_LIMIT = 18

#: Below this many posting pair touches the scalar nested loops win — the
#: vectorized merge pays fixed numpy call overhead that only amortises once
#: the postings actually contain bulk work.
VECTOR_MERGE_MIN_TOUCHES = 2048

#: node id -> ids it conflicts with (keys are 0..n-1 in insertion order).
ConflictGraph = Dict[int, Set[int]]


class EmbeddingIndex:
    """Inverted vertex→ids and edge→ids maps over n embedding images.

    Built either from :class:`Embedding` objects plus their pattern graph
    (:meth:`from_embeddings` — images are read from the embeddings' memoised
    caches) or from growth :class:`~repro.core.growth.Occurrence` objects
    (:meth:`from_occurrences` — images are the occurrence's own frozensets).
    Image lists and posting maps are materialised lazily, so a harmful-overlap
    query never pays for edge images and vice versa.
    """

    __slots__ = (
        "_embeddings",
        "_pattern_graph",
        "_vertex_images",
        "_edge_images",
        "_vertex_map",
        "_edge_map",
    )

    def __init__(
        self,
        *,
        embeddings: Optional[Sequence[Embedding]] = None,
        pattern_graph: Optional[LabeledGraph] = None,
        vertex_images: Optional[List[FrozenSet[Hashable]]] = None,
        edge_images: Optional[List[FrozenSet[Hashable]]] = None,
    ) -> None:
        if embeddings is None and vertex_images is None and edge_images is None:
            raise ValueError("EmbeddingIndex needs embeddings or explicit images")
        self._embeddings = list(embeddings) if embeddings is not None else None
        self._pattern_graph = pattern_graph
        self._vertex_images = vertex_images
        self._edge_images = edge_images
        self._vertex_map: Optional[Dict[Hashable, List[int]]] = None
        self._edge_map: Optional[Dict[Hashable, List[int]]] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_embeddings(
        cls, embeddings: Sequence[Embedding], pattern_graph: LabeledGraph
    ) -> "EmbeddingIndex":
        """Index over pattern embeddings; images come from their memoised caches."""
        return cls(embeddings=embeddings, pattern_graph=pattern_graph)

    @classmethod
    def from_occurrences(cls, occurrences: Iterable) -> "EmbeddingIndex":
        """Index over growth occurrences (anything with .vertices / .edges)."""
        occs = list(occurrences)
        return cls(
            vertex_images=[o.vertices for o in occs],
            edge_images=[o.edges for o in occs],
        )

    # ------------------------------------------------------------------ #
    # images and inverted maps
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self._vertex_images is not None:
            return len(self._vertex_images)
        if self._edge_images is not None:
            return len(self._edge_images)
        return len(self._embeddings or ())

    @property
    def vertex_images(self) -> List[FrozenSet[Hashable]]:
        """Per-id data-vertex image sets."""
        if self._vertex_images is None:
            self._vertex_images = [e.image for e in self._embeddings]
        return self._vertex_images

    @property
    def edge_images(self) -> List[FrozenSet[Hashable]]:
        """Per-id data-edge image sets (normalised endpoint order)."""
        if self._edge_images is None:
            if self._pattern_graph is None:
                raise ValueError("edge images need the pattern graph")
            graph = self._pattern_graph
            self._edge_images = [e.edge_image(graph) for e in self._embeddings]
        return self._edge_images

    def images(self, edge_based: bool) -> List[FrozenSet[Hashable]]:
        return self.edge_images if edge_based else self.vertex_images

    @property
    def vertex_map(self) -> Dict[Hashable, List[int]]:
        """data vertex → ids covering it, each list in ascending id order."""
        if self._vertex_map is None:
            self._vertex_map = self._build_postings(self.vertex_images)
        return self._vertex_map

    @property
    def edge_map(self) -> Dict[Hashable, List[int]]:
        """data edge → ids covering it, each list in ascending id order."""
        if self._edge_map is None:
            self._edge_map = self._build_postings(self.edge_images)
        return self._edge_map

    def postings(self, edge_based: bool) -> Dict[Hashable, List[int]]:
        return self.edge_map if edge_based else self.vertex_map

    @staticmethod
    def _build_postings(images: List[FrozenSet[Hashable]]) -> Dict[Hashable, List[int]]:
        postings: Dict[Hashable, List[int]] = {}
        for i, image in enumerate(images):
            for key in image:
                postings.setdefault(key, []).append(i)
        return postings

    # ------------------------------------------------------------------ #
    # conflict graphs
    # ------------------------------------------------------------------ #
    def conflict_graph(self, edge_based: bool = False) -> ConflictGraph:
        """The overlap conflict graph, assembled from the inverted maps.

        Only ids sharing a posting list are ever paired, so disjoint
        embeddings cost nothing beyond their postings.  Equal (same adjacency,
        same 0..n-1 key order) to :meth:`conflict_graph_all_pairs`.

        When numpy is available and the postings carry enough pair work, the
        pairing runs through :func:`repro.graph.kernels.merge_postings` —
        bulk emission of unique conflicting pairs from the concatenated
        posting arrays — instead of the nested per-posting Python loops; the
        same id pair shared by many keys is then deduplicated once by
        ``np.unique`` rather than re-touched per key.  Both constructions
        fill the identical adjacency dict (scalar fallback retained below).
        """
        n = len(self)
        registry = get_registry()
        if registry.enabled:
            registry.counter("overlap.conflict_builds")
            registry.counter("overlap.embeddings", n)
        conflict: ConflictGraph = {i: set() for i in range(n)}
        postings = self.postings(edge_based).values()
        if kernels.numpy_available() and n >= 2:
            touches = sum(
                len(ids) * (len(ids) - 1) // 2 for ids in postings if len(ids) > 1
            )
            if touches >= VECTOR_MERGE_MIN_TOUCHES:
                left, right = kernels.merge_postings(postings, n)
                for i, j in zip(left.tolist(), right.tolist()):
                    conflict[i].add(j)
                    conflict[j].add(i)
                return conflict
        for ids in postings:
            if len(ids) < 2:
                continue
            for a in range(1, len(ids)):
                i = ids[a]
                row = conflict[i]
                for b in range(a):
                    j = ids[b]
                    row.add(j)
                    conflict[j].add(i)
        return conflict

    def conflict_graph_all_pairs(self, edge_based: bool = False) -> ConflictGraph:
        """Reference O(n²) all-pairs construction (parity checks only)."""
        images = self.images(edge_based)
        conflict: ConflictGraph = {i: set() for i in range(len(images))}
        for i in range(len(images)):
            for j in range(i + 1, len(images)):
                if images[i] & images[j]:
                    conflict[i].add(j)
                    conflict[j].add(i)
        return conflict

    def pair_stats(
        self, edge_based: bool = False, conflict: Optional[ConflictGraph] = None
    ) -> Dict[str, int]:
        """Work accounting for the benchmark: pair tests done vs avoided.

        ``all_pairs_tests`` is what the old construction always paid;
        ``posting_pair_touches`` is the index's actual pairing work
        (Σ over postings of C(t, 2) — the same id pair is re-touched once per
        shared key, so on pathologically overlapping collections this can
        exceed ``all_pairs_tests``); ``pair_tests_avoided`` is their
        difference clamped at zero, and ``conflict_edges`` the resulting
        graph size.  Pass a prebuilt ``conflict`` graph to avoid rebuilding
        it just for the edge count.
        """
        n = len(self)
        touches = sum(
            len(ids) * (len(ids) - 1) // 2
            for ids in self.postings(edge_based).values()
        )
        if conflict is None:
            conflict = self.conflict_graph(edge_based)
        edges = sum(len(row) for row in conflict.values()) // 2
        return {
            "n": n,
            "all_pairs_tests": n * (n - 1) // 2,
            "posting_pair_touches": touches,
            "pair_tests_avoided": max(0, n * (n - 1) // 2 - touches),
            "conflict_edges": edges,
        }


# ---------------------------------------------------------------------- #
# independent sets over conflict graphs
# ---------------------------------------------------------------------- #
def max_independent_set(
    conflict: ConflictGraph, exact_limit: int = DEFAULT_EXACT_LIMIT
) -> Set[int]:
    """Exact MIS up to ``exact_limit`` nodes, degeneracy-ordered greedy above."""
    if len(conflict) <= exact_limit:
        return exact_maximum_independent_set(conflict, limit=exact_limit)
    return degeneracy_ordered_independent_set(conflict)


def independent_set_size(
    conflict: ConflictGraph, exact_limit: int = DEFAULT_EXACT_LIMIT
) -> int:
    """Size of :func:`max_independent_set` — the MIS-based support value."""
    return len(max_independent_set(conflict, exact_limit))


# ---------------------------------------------------------------------- #
# shared small helpers
# ---------------------------------------------------------------------- #
def distinct_indices(images: Sequence[Hashable]) -> List[int]:
    """Indices of the first occurrence of each distinct image, in order."""
    seen: Set[Hashable] = set()
    keep: List[int] = []
    for i, image in enumerate(images):
        if image not in seen:
            seen.add(image)
            keep.append(i)
    return keep


def conflict_digest(conflict: ConflictGraph) -> str:
    """Stable fingerprint of a conflict graph (id-keyed adjacency).

    Used by the perf-smoke parity gate: the digest of the index-built graph
    must equal the digest of the all-pairs reference.
    """
    blob = ";".join(
        f"{i}:{','.join(map(str, sorted(conflict[i])))}" for i in sorted(conflict)
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]
