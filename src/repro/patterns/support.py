"""Support measures for the single-graph setting.

Counting raw embeddings as support is not anti-monotone in a single graph
(growing a pattern can *increase* the number of embeddings), which breaks the
downward-closure pruning every miner relies on.  The literature offers three
fixes, all implemented here:

* ``SupportMeasure.EMBEDDING_IMAGES`` — number of distinct vertex-image sets.
  Simple, not anti-monotone, but cheap; useful as an upper bound and for the
  injected-pattern verification in tests.
* ``SupportMeasure.EDGE_DISJOINT`` — maximum number of pairwise edge-disjoint
  embeddings (Vanetik, Gudes & Shimony 2002; also used by Kuramochi &
  Karypis).  Anti-monotone.  Deduplication happens on **edge** images: two
  embeddings that cover the same vertices through different data edges are
  distinct witnesses and both count (deduplicating on vertex images here was
  a long-standing undercount, pinned by a regression test).
* ``SupportMeasure.HARMFUL_OVERLAP`` — maximum independent set on the overlap
  graph where two embeddings conflict iff they share a *vertex image*
  (the harmful-overlap measure of Fiedler & Borgelt 2007).  This is the
  measure SpiderMine adopts ("a different yet more general support
  definition"), and the default throughout this package.

Conflict graphs are built by the shared overlap engine
(:mod:`repro.patterns.overlap`): an inverted :class:`EmbeddingIndex` pairs
only embeddings that actually share a vertex/edge, instead of the O(n²)
all-pairs intersection scans this module used to run.  Both MIS-based
measures compute the independent set exactly for small embedding collections
and fall back to the degeneracy-ordered greedy (a lower bound, hence still
safe for pruning) above ``exact_limit`` embeddings.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Sequence

from ..graph.labeled_graph import LabeledGraph
from .embedding import Embedding
from .overlap import (
    DEFAULT_EXACT_LIMIT,
    EmbeddingIndex,
    distinct_indices,
    independent_set_size,
    max_independent_set,
)
from .pattern import Pattern


class SupportMeasure(str, Enum):
    """Which single-graph support definition to use."""

    EMBEDDING_IMAGES = "embedding_images"
    EDGE_DISJOINT = "edge_disjoint"
    HARMFUL_OVERLAP = "harmful_overlap"


def _distinct_images(embeddings: Sequence[Embedding]) -> List[Embedding]:
    """One embedding per distinct vertex image, in first-seen order."""
    keep = distinct_indices([e.image for e in embeddings])
    return [embeddings[i] for i in keep]


def _distinct_edge_images(
    embeddings: Sequence[Embedding], pattern_graph: LabeledGraph
) -> List[Embedding]:
    """One embedding per distinct edge image, in first-seen order."""
    keep = distinct_indices([e.edge_image(pattern_graph) for e in embeddings])
    return [embeddings[i] for i in keep]


def _mis_support(
    distinct: Sequence[Embedding],
    pattern_graph: LabeledGraph,
    edge_based: bool,
    exact_limit: int,
) -> int:
    """MIS size over an already-deduplicated embedding list."""
    index = EmbeddingIndex.from_embeddings(distinct, pattern_graph)
    return independent_set_size(index.conflict_graph(edge_based=edge_based), exact_limit)


def embedding_image_support(embeddings: Sequence[Embedding]) -> int:
    """Number of distinct vertex-image sets among the embeddings."""
    return len(_distinct_images(embeddings))


def edge_disjoint_support(
    embeddings: Sequence[Embedding],
    pattern_graph: LabeledGraph,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> int:
    """Maximum number of pairwise edge-disjoint embeddings."""
    if not embeddings:
        return 0
    if pattern_graph.num_edges == 0:
        # Single-vertex pattern: embeddings cannot share an edge; vertex-distinct
        # images are automatically edge-disjoint.
        return embedding_image_support(embeddings)
    # Dedupe by *edge* image: automorphic remappings onto the same data edges
    # are one witness, but same-vertex/different-edge embeddings are not.
    distinct = _distinct_edge_images(embeddings, pattern_graph)
    return _mis_support(distinct, pattern_graph, True, exact_limit)


def harmful_overlap_support(
    embeddings: Sequence[Embedding],
    pattern_graph: LabeledGraph,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> int:
    """Maximum number of pairwise vertex-disjoint embeddings (harmful-overlap MIS)."""
    distinct = _distinct_images(embeddings)
    if not distinct:
        return 0
    return _mis_support(distinct, pattern_graph, False, exact_limit)


def compute_support(
    pattern: Pattern,
    measure: SupportMeasure = SupportMeasure.HARMFUL_OVERLAP,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> int:
    """Support of ``pattern`` under ``measure`` using its stored embeddings."""
    if measure is SupportMeasure.EMBEDDING_IMAGES:
        return embedding_image_support(pattern.embeddings)
    if measure is SupportMeasure.EDGE_DISJOINT:
        return edge_disjoint_support(pattern.embeddings, pattern.graph, exact_limit)
    if measure is SupportMeasure.HARMFUL_OVERLAP:
        return harmful_overlap_support(pattern.embeddings, pattern.graph, exact_limit)
    raise ValueError(f"unknown support measure {measure!r}")


def is_frequent(
    pattern: Pattern,
    min_support: int,
    measure: SupportMeasure = SupportMeasure.HARMFUL_OVERLAP,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> bool:
    """Whether the pattern meets ``min_support`` under ``measure``.

    A pattern with no embeddings is never frequent, not even for
    ``min_support <= 0`` — every measure assigns it support 0, and support 0
    means "does not occur".  Beyond that the check short-circuits: the raw
    embedding count and the measure's distinct-image count are upper bounds on
    the MIS value, so thresholds they already miss skip the MIS entirely.
    """
    if not pattern.embeddings:
        return False
    if min_support <= 0:
        return True
    if len(pattern.embeddings) < min_support:
        return False
    if measure is SupportMeasure.EMBEDDING_IMAGES:
        return embedding_image_support(pattern.embeddings) >= min_support
    # For MIS measures, dedupe once under the measure's own conflict notion:
    # the distinct count is a cheap upper bound that often skips the MIS, and
    # the same list feeds the MIS when it does run.
    if measure is SupportMeasure.EDGE_DISJOINT and pattern.graph.num_edges > 0:
        distinct = _distinct_edge_images(pattern.embeddings, pattern.graph)
        edge_based = True
    else:
        distinct = _distinct_images(pattern.embeddings)
        edge_based = False
        if measure is SupportMeasure.EDGE_DISJOINT:
            # Edgeless pattern: vertex-distinct images are pairwise
            # edge-disjoint, so the distinct count *is* the support.
            return len(distinct) >= min_support
    if len(distinct) < min_support:
        return False
    return _mis_support(distinct, pattern.graph, edge_based, exact_limit) >= min_support


def select_disjoint_embeddings(
    embeddings: Sequence[Embedding],
    pattern_graph: LabeledGraph,
    edge_based: bool = False,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> List[Embedding]:
    """A maximum (or greedy-maximal) set of pairwise disjoint embeddings.

    ``edge_based=False`` gives vertex-disjoint embeddings (harmful-overlap
    witnesses), ``True`` gives edge-disjoint ones.
    """
    if not embeddings:
        return []
    if edge_based and pattern_graph.num_edges > 0:
        distinct = _distinct_edge_images(embeddings, pattern_graph)
    else:
        distinct = _distinct_images(embeddings)
    index = EmbeddingIndex.from_embeddings(distinct, pattern_graph)
    conflict = index.conflict_graph(edge_based=edge_based)
    chosen = max_independent_set(conflict, exact_limit)
    return [distinct[i] for i in sorted(chosen)]


__all__ = [
    "DEFAULT_EXACT_LIMIT",
    "SupportMeasure",
    "embedding_image_support",
    "edge_disjoint_support",
    "harmful_overlap_support",
    "compute_support",
    "is_frequent",
    "select_disjoint_embeddings",
]
