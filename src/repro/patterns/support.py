"""Support measures for the single-graph setting.

Counting raw embeddings as support is not anti-monotone in a single graph
(growing a pattern can *increase* the number of embeddings), which breaks the
downward-closure pruning every miner relies on.  The literature offers three
fixes, all implemented here:

* ``SupportMeasure.EMBEDDING_IMAGES`` — number of distinct vertex-image sets.
  Simple, not anti-monotone, but cheap; useful as an upper bound and for the
  injected-pattern verification in tests.
* ``SupportMeasure.EDGE_DISJOINT`` — maximum number of pairwise edge-disjoint
  embeddings (Vanetik, Gudes & Shimony 2002; also used by Kuramochi & Karypis).
  Anti-monotone.
* ``SupportMeasure.HARMFUL_OVERLAP`` — maximum independent set on the overlap
  graph where two embeddings conflict iff they share a *vertex image*
  (the harmful-overlap measure of Fiedler & Borgelt 2007).  This is the
  measure SpiderMine adopts ("a different yet more general support
  definition"), and the default throughout this package.

Both MIS-based measures compute the independent set exactly for small
embedding collections and fall back to the greedy heuristic (a lower bound,
hence still safe for pruning) above ``exact_limit`` embeddings.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, List, Sequence, Set

from ..graph.algorithms import exact_maximum_independent_set, greedy_maximum_independent_set
from ..graph.labeled_graph import LabeledGraph, Vertex
from .embedding import Embedding
from .pattern import Pattern


class SupportMeasure(str, Enum):
    """Which single-graph support definition to use."""

    EMBEDDING_IMAGES = "embedding_images"
    EDGE_DISJOINT = "edge_disjoint"
    HARMFUL_OVERLAP = "harmful_overlap"


DEFAULT_EXACT_LIMIT = 18


def _distinct_images(embeddings: Sequence[Embedding]) -> List[Embedding]:
    seen: Set[FrozenSet[Vertex]] = set()
    out: List[Embedding] = []
    for embedding in embeddings:
        image = embedding.image
        if image not in seen:
            seen.add(image)
            out.append(embedding)
    return out


def _independent_set_size(
    conflict: Dict[int, Set[int]],
    exact_limit: int,
) -> int:
    if len(conflict) <= exact_limit:
        return len(exact_maximum_independent_set(conflict, limit=exact_limit))
    return len(greedy_maximum_independent_set(conflict))


def _overlap_conflicts(
    embeddings: Sequence[Embedding],
    pattern_graph: LabeledGraph,
    edge_based: bool,
) -> Dict[int, Set[int]]:
    """Conflict graph over embedding indices (edge- or vertex-overlap)."""
    conflict: Dict[int, Set[int]] = {i: set() for i in range(len(embeddings))}
    if edge_based:
        images = [e.edge_image(pattern_graph) for e in embeddings]
    else:
        images = [e.image for e in embeddings]
    for i in range(len(embeddings)):
        for j in range(i + 1, len(embeddings)):
            if images[i] & images[j]:
                conflict[i].add(j)
                conflict[j].add(i)
    return conflict


def embedding_image_support(embeddings: Sequence[Embedding]) -> int:
    """Number of distinct vertex-image sets among the embeddings."""
    return len(_distinct_images(embeddings))


def edge_disjoint_support(
    embeddings: Sequence[Embedding],
    pattern_graph: LabeledGraph,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> int:
    """Maximum number of pairwise edge-disjoint embeddings."""
    distinct = _distinct_images(embeddings)
    if not distinct:
        return 0
    if pattern_graph.num_edges == 0:
        # Single-vertex pattern: embeddings cannot share an edge; vertex-distinct
        # images are automatically edge-disjoint.
        return len(distinct)
    conflict = _overlap_conflicts(distinct, pattern_graph, edge_based=True)
    return _independent_set_size(conflict, exact_limit)


def harmful_overlap_support(
    embeddings: Sequence[Embedding],
    pattern_graph: LabeledGraph,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> int:
    """Maximum number of pairwise vertex-disjoint embeddings (harmful-overlap MIS)."""
    distinct = _distinct_images(embeddings)
    if not distinct:
        return 0
    conflict = _overlap_conflicts(distinct, pattern_graph, edge_based=False)
    return _independent_set_size(conflict, exact_limit)


def compute_support(
    pattern: Pattern,
    measure: SupportMeasure = SupportMeasure.HARMFUL_OVERLAP,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> int:
    """Support of ``pattern`` under ``measure`` using its stored embeddings."""
    if measure is SupportMeasure.EMBEDDING_IMAGES:
        return embedding_image_support(pattern.embeddings)
    if measure is SupportMeasure.EDGE_DISJOINT:
        return edge_disjoint_support(pattern.embeddings, pattern.graph, exact_limit)
    if measure is SupportMeasure.HARMFUL_OVERLAP:
        return harmful_overlap_support(pattern.embeddings, pattern.graph, exact_limit)
    raise ValueError(f"unknown support measure {measure!r}")


def is_frequent(
    pattern: Pattern,
    min_support: int,
    measure: SupportMeasure = SupportMeasure.HARMFUL_OVERLAP,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> bool:
    """Whether the pattern meets ``min_support`` under ``measure``.

    Short-circuits: the raw embedding count is an upper bound on every
    overlap-aware measure, so if it is already below the threshold the MIS
    computation is skipped.
    """
    if min_support <= 0:
        return True
    if len(pattern.embeddings) < min_support:
        return False
    if measure is SupportMeasure.EMBEDDING_IMAGES:
        return embedding_image_support(pattern.embeddings) >= min_support
    # For MIS measures, first check the cheap upper bound (distinct images).
    distinct = _distinct_images(pattern.embeddings)
    if len(distinct) < min_support:
        return False
    return compute_support(pattern, measure=measure, exact_limit=exact_limit) >= min_support


def select_disjoint_embeddings(
    embeddings: Sequence[Embedding],
    pattern_graph: LabeledGraph,
    edge_based: bool = False,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> List[Embedding]:
    """A maximum (or greedy-maximal) set of pairwise disjoint embeddings.

    ``edge_based=False`` gives vertex-disjoint embeddings (harmful-overlap
    witnesses), ``True`` gives edge-disjoint ones.
    """
    distinct = _distinct_images(embeddings)
    if not distinct:
        return []
    conflict = _overlap_conflicts(distinct, pattern_graph, edge_based=edge_based)
    if len(conflict) <= exact_limit:
        chosen = exact_maximum_independent_set(conflict, limit=exact_limit)
    else:
        chosen = greedy_maximum_independent_set(conflict)
    return [distinct[i] for i in sorted(chosen)]
