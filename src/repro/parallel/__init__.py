"""Parallel execution layer: policy-driven mining over shared graph snapshots.

Public surface:

* :class:`ExecutionPolicy` — serial vs process-pool execution, worker count,
  chunk size and seed-partitioning strategy; threaded through
  :class:`~repro.core.config.SpiderMineConfig`;
* :func:`export_shared_graph` / :func:`attach_shared_graph` — zero-copy
  sharing of a :class:`~repro.graph.frozen.FrozenGraph` CSR snapshot via
  ``multiprocessing.shared_memory``;
* :func:`mine_units_in_processes` / :func:`partition_units` — the
  partition → mine → deterministic-merge driver behind
  :meth:`~repro.core.spider_miner.SpiderMiner.mine`.

The driver is imported lazily: it depends on :mod:`repro.core`, which in turn
imports this package for the policy, and laziness keeps that cycle one-way at
import time.
"""

from .policy import EXECUTION_MODES, PARTITION_STRATEGIES, ExecutionPolicy
from .shared_graph import (
    AttachedGraph,
    SharedGraphHandle,
    attach_shared_graph,
    export_shared_graph,
)

__all__ = [
    "EXECUTION_MODES",
    "PARTITION_STRATEGIES",
    "ExecutionPolicy",
    "AttachedGraph",
    "SharedGraphHandle",
    "attach_shared_graph",
    "export_shared_graph",
    "mine_units_in_processes",
    "partition_units",
]


def __getattr__(name: str):
    if name in ("mine_units_in_processes", "partition_units"):
        from . import driver

        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
