"""Execution policies for the mining engine.

An :class:`ExecutionPolicy` says *how* a mining run executes — in-process
(``serial``) or fanned out over a pool of worker processes (``process``) —
without saying anything about *what* is mined.  It is threaded through
:class:`~repro.core.config.SpiderMineConfig` so every entry point
(:class:`~repro.core.spider_miner.SpiderMiner`,
:class:`~repro.core.spidermine.SpiderMine`, the CLI ``--workers`` flag)
shares one switch.

The policy deliberately has **no influence on results**: the parallel driver
merges per-unit outputs in a canonical order (see
:func:`repro.core.spider_miner.merge_unit_levels`), so worker count, chunk
size and partition strategy only move work around.  That determinism
guarantee is what makes the policy safe to flip in production.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Optional

__all__ = ["EXECUTION_MODES", "PARTITION_STRATEGIES", "ExecutionPolicy"]

#: Accepted values for :attr:`ExecutionPolicy.mode`.
EXECUTION_MODES = ("serial", "process")

#: Accepted values for :attr:`ExecutionPolicy.partition`.
PARTITION_STRATEGIES = ("contiguous", "interleaved")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a mining run is executed."""

    mode: str = "serial"
    """``"serial"`` runs everything in-process; ``"process"`` fans mining
    units out over ``n_workers`` processes sharing one zero-copy graph."""

    n_workers: int = 1
    """Worker process count for ``"process"`` mode (ignored when serial)."""

    chunk_size: Optional[int] = None
    """Mining units per worker task.  ``None`` picks ``ceil(units /
    (4 * n_workers))`` so each worker sees ~4 tasks — enough granularity to
    rebalance around slow units without drowning in dispatch overhead."""

    partition: str = "contiguous"
    """How unit indices are grouped into chunks: ``"contiguous"`` blocks or
    ``"interleaved"`` round-robin striding (spreads adjacent — often
    similar-cost — units across workers).  Results are identical either way."""

    start_method: Optional[str] = None
    """``multiprocessing`` start method.  ``None`` prefers ``"fork"`` (cheap,
    and workers inherit the parent's string-hash seed, keeping iteration
    order identical for non-integer vertex ids) and falls back to
    ``"spawn"`` where fork is unavailable."""

    def __post_init__(self) -> None:
        if self.mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.mode!r}; expected one of {EXECUTION_MODES}"
            )
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1 when given")
        if self.partition not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {self.partition!r}; "
                f"expected one of {PARTITION_STRATEGIES}"
            )
        if self.start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if self.start_method not in available:
                raise ValueError(
                    f"start method {self.start_method!r} not available on this "
                    f"platform; expected one of {available}"
                )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def serial(cls) -> "ExecutionPolicy":
        """The in-process default."""
        return cls()

    @classmethod
    def process_pool(cls, n_workers: int, **kwargs) -> "ExecutionPolicy":
        """A process-pool policy; ``n_workers=1`` degrades to serial."""
        if n_workers == 1:
            return cls(**kwargs)
        return cls(mode="process", n_workers=n_workers, **kwargs)

    # ------------------------------------------------------------------ #
    # resolution helpers
    # ------------------------------------------------------------------ #
    @property
    def uses_processes(self) -> bool:
        """True when this policy actually fans out to worker processes."""
        return self.mode == "process" and self.n_workers > 1

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        available = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in available else "spawn"

    def resolved_chunk_size(self, num_units: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-num_units // (4 * self.n_workers)))
