"""Zero-copy sharing of :class:`~repro.graph.frozen.FrozenGraph` snapshots.

The mining-time data graph is immutable, so worker processes never need their
own copy of its adjacency.  :func:`export_shared_graph` packs the three heavy
CSR payload arrays — row offsets, flat neighbor indices, per-vertex label ids
— plus one small pickled header (original vertex identifiers and the interned
label table) into a single ``multiprocessing.shared_memory`` segment.
Workers call :func:`attach_shared_graph` with the :class:`SharedGraphHandle`
(a few ints and a name — the only thing that crosses the pickle boundary) and
rebuild a fully functional ``FrozenGraph`` whose arrays are
``memoryview.cast`` views *into the segment*: the adjacency is mapped, not
copied, so attaching is O(|V|) and per-worker memory stays flat no matter how
large the graph is.

Lifecycle contract (enforced by :mod:`repro.parallel.driver`):

* the **creator** (driver parent) owns the segment: it exports before the
  pool starts and ``close()`` + ``unlink()`` in a ``finally`` block, so the
  segment is released even when a worker dies mid-chunk;
* **attachers** (workers) hold the mapping for the life of the process and
  :meth:`AttachedGraph.detach` at exit; they unregister from the resource
  tracker at attach time so worker exits never double-unlink the segment.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Tuple

from ..graph.frozen import FrozenGraph

__all__ = ["SharedGraphHandle", "AttachedGraph", "export_shared_graph", "attach_shared_graph"]


@dataclass(frozen=True)
class SharedGraphHandle:
    """Everything a worker needs to re-attach a shared graph (small, picklable)."""

    name: str
    num_vertices: int
    offsets_typecode: str
    index_typecode: str
    labels_typecode: str
    offsets_bytes: int
    neighbors_bytes: int
    labels_bytes: int
    header_bytes: int

    @property
    def offsets_start(self) -> int:
        return 0

    @property
    def neighbors_start(self) -> int:
        return self.offsets_bytes

    @property
    def labels_start(self) -> int:
        return self.offsets_bytes + self.neighbors_bytes

    @property
    def header_start(self) -> int:
        return self.offsets_bytes + self.neighbors_bytes + self.labels_bytes

    @property
    def total_bytes(self) -> int:
        return self.header_start + self.header_bytes


def _typecode(arr) -> str:
    """Element typecode of an ``array.array``, typed ``memoryview`` or ndarray.

    Lets a graph that was itself attached from shared memory (whose arrays
    are memoryviews, which expose ``format`` instead of ``typecode``) or
    built over numpy buffers (``dtype.char``, a valid struct format for the
    integer dtypes the CSR layer uses) be re-exported unchanged.
    """
    typecode = getattr(arr, "typecode", None)
    if typecode is not None:
        return typecode
    dtype = getattr(arr, "dtype", None)
    if dtype is not None:
        return dtype.char
    return arr.format


def export_shared_graph(
    frozen: FrozenGraph,
) -> Tuple[SharedGraphHandle, shared_memory.SharedMemory]:
    """Copy ``frozen``'s CSR payload into a fresh shared-memory segment.

    Returns the handle to send to workers and the segment itself; the caller
    owns the segment and must ``close()`` and ``unlink()`` it when the run
    ends (success or failure).
    """
    offsets = frozen.offsets
    neighbors = frozen.neighbor_indices
    label_ids = frozen.label_ids
    header = pickle.dumps(
        (frozen.vertex_ids, frozen.label_table), protocol=pickle.HIGHEST_PROTOCOL
    )
    handle = SharedGraphHandle(
        name="",  # filled below once the segment exists
        num_vertices=frozen.num_vertices,
        offsets_typecode=_typecode(offsets),
        index_typecode=_typecode(neighbors),
        labels_typecode=_typecode(label_ids),
        offsets_bytes=len(offsets) * offsets.itemsize,
        neighbors_bytes=len(neighbors) * neighbors.itemsize,
        labels_bytes=len(label_ids) * label_ids.itemsize,
        header_bytes=len(header),
    )
    # SharedMemory refuses zero-byte segments; an empty graph still carries
    # its pickled header, so total_bytes is always positive here.
    segment = shared_memory.SharedMemory(create=True, size=handle.total_bytes)
    handle = replace(handle, name=segment.name)
    buf = segment.buf
    # Byte-cast views over the arrays write straight into the segment — no
    # intermediate bytes objects doubling peak memory at export time.
    buf[handle.offsets_start:handle.offsets_start + handle.offsets_bytes] = (
        memoryview(offsets).cast("B")
    )
    buf[handle.neighbors_start:handle.neighbors_start + handle.neighbors_bytes] = (
        memoryview(neighbors).cast("B")
    )
    buf[handle.labels_start:handle.labels_start + handle.labels_bytes] = (
        memoryview(label_ids).cast("B")
    )
    buf[handle.header_start:handle.header_start + handle.header_bytes] = header
    return handle, segment


class AttachedGraph:
    """A worker-side view of a shared graph plus its mapping lifecycle."""

    def __init__(
        self,
        graph: FrozenGraph,
        segment: shared_memory.SharedMemory,
        views: Tuple[memoryview, ...],
    ) -> None:
        self.graph = graph
        self._segment = segment
        self._views = views
        self._detached = False

    def detach(self) -> None:
        """Release the buffer views and close the mapping (not unlink).

        After this the attached :class:`FrozenGraph` must not be used — its
        arrays point into the released mapping.  Safe to call twice.
        """
        if self._detached:
            return
        self._detached = True
        for view in self._views:
            view.release()
        self._segment.close()


def attach_shared_graph(handle: SharedGraphHandle) -> AttachedGraph:
    """Map an exported graph into this process without copying the CSR arrays."""
    segment = _attach_untracked(handle.name)
    buf = segment.buf
    offsets = buf[handle.offsets_start:handle.offsets_start + handle.offsets_bytes].cast(
        handle.offsets_typecode
    )
    neighbors = buf[
        handle.neighbors_start:handle.neighbors_start + handle.neighbors_bytes
    ].cast(handle.index_typecode)
    label_ids = buf[handle.labels_start:handle.labels_start + handle.labels_bytes].cast(
        handle.labels_typecode
    )
    header = bytes(buf[handle.header_start:handle.header_start + handle.header_bytes])
    ids, label_table = pickle.loads(header)
    graph = FrozenGraph.from_csr_arrays(ids, label_table, label_ids, offsets, neighbors)
    return AttachedGraph(graph, segment, (offsets, neighbors, label_ids))


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it with the tracker.

    Workers share the creator's ``multiprocessing.resource_tracker`` process,
    whose cache is a plain per-type name set: letting an attach register (or
    later unregister) the segment corrupts the creator's single entry and
    either double-unlinks or KeyErrors at cleanup.  Python 3.13 exposes
    ``track=False`` for exactly this; on older versions the registration
    call is suppressed for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register
