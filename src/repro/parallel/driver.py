"""The partition → mine → deterministic-merge driver for Stage I.

:func:`mine_units_in_processes` is the process-pool execution path behind
:meth:`repro.core.spider_miner.SpiderMiner.mine`:

1. **Partition** — the mining units (one per frequent label, canonical order)
   are split into chunks by the policy's chunk size and partition strategy.
2. **Mine** — a worker pool attaches the data graph from one shared-memory
   CSR snapshot (zero-copy, no graph pickling; see
   :mod:`repro.parallel.shared_graph`) and runs
   :meth:`~repro.core.spider_miner.SpiderMiner.mine_unit` per chunk.
3. **Merge** — per-unit level buckets come back tagged with their unit index;
   :func:`repro.core.spider_miner.merge_unit_levels` interleaves them
   level-major / unit-minor, reproducing the serial search's order exactly.

Failure contract: a worker exception aborts the run, terminates the pool and
re-raises the *original* exception in the parent; the shared segment is
closed and unlinked on every exit path, so no ``/dev/shm`` segments leak.
"""

from __future__ import annotations

import gc
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

from ..graph.frozen import freeze
from ..graph.view import GraphView
from ..obs import Span, get_tracer
from ..patterns.spider import Spider
from .policy import ExecutionPolicy
from .shared_graph import AttachedGraph, SharedGraphHandle, attach_shared_graph, export_shared_graph

__all__ = ["partition_units", "mine_units_in_processes"]


def _require_cross_process_determinism(frozen, start_method: str) -> None:
    """Refuse configurations whose results could depend on process identity.

    The miners' discovery order iterates ``neighbors()`` frozensets, whose
    iteration order depends on the element hashes.  Integer hashes are the
    same in every process; string (and other str-keyed) hashes are randomized
    per interpreter, so under a non-fork start method each worker would walk
    neighbors in its own order and the serial==parallel guarantee would
    silently break.  Fork inherits the parent's hash seed, so it is always
    safe; spawn/forkserver are only safe when every vertex id hashes
    seed-independently (ints).
    """
    if start_method == "fork":
        return
    if all(isinstance(v, int) for v in frozen.vertex_ids):
        return
    raise RuntimeError(
        f"parallel mining with start method {start_method!r} requires integer "
        "vertex identifiers: non-integer ids hash differently in each spawned "
        "process, which would break the serial==parallel determinism "
        "guarantee.  Use ExecutionPolicy(start_method='fork') (the default "
        "where available) or relabel the graph to integer ids "
        "(graph.relabeled())."
    )


def partition_units(num_units: int, policy: ExecutionPolicy) -> List[List[int]]:
    """Split unit indices ``0..num_units-1`` into worker-task chunks.

    ``contiguous`` cuts blocks in order; ``interleaved`` deals indices
    round-robin so adjacent (often similar-cost) units land on different
    workers.  The strategy is pure load balancing — the canonical merge makes
    results independent of it.
    """
    if num_units <= 0:
        return []
    size = policy.resolved_chunk_size(num_units)
    num_chunks = -(-num_units // size)
    if policy.partition == "interleaved":
        return [list(range(chunk, num_units, num_chunks)) for chunk in range(num_chunks)]
    return [
        list(range(start, min(start + size, num_units)))
        for start in range(0, num_units, size)
    ]


def mine_units_in_processes(
    graph: GraphView, config, num_units: Optional[int] = None
) -> Dict[int, List[List[Spider]]]:
    """Run every mining unit of ``graph`` under ``config`` in a process pool.

    Returns ``{unit index: per-level spider buckets}`` for
    :func:`~repro.core.spider_miner.merge_unit_levels`.  The input graph may
    be either backend; the snapshot shared with workers is its frozen form,
    which mines identically (backend parity).  ``num_units`` is the caller's
    already-computed unit count (``len(SpiderMiner.unit_labels())``); it is
    re-derived from the graph when omitted.
    """
    from ..core.config import CachePolicy

    policy: ExecutionPolicy = config.execution
    # Workers run their units strictly serially (the pool is the only
    # fan-out) and never touch the run cache — caching happens once, in the
    # parent, around the merged result; per-worker lookups would only add
    # filesystem traffic for keys the parent already resolved.
    worker_config = replace(
        config, execution=ExecutionPolicy.serial(), cache=CachePolicy.off()
    )
    frozen = freeze(graph)
    if num_units is None:
        from ..core.spider_miner import SpiderMiner

        num_units = len(SpiderMiner(frozen, worker_config).unit_labels())
    chunks = partition_units(num_units, policy)
    if not chunks:
        return {}

    start_method = policy.resolved_start_method()
    _require_cross_process_determinism(frozen, start_method)
    handle, segment = export_shared_graph(frozen)
    tracer = get_tracer()
    unit_levels: Dict[int, List[List[Spider]]] = {}
    unit_spans: Dict[int, Dict] = {}
    try:
        context = multiprocessing.get_context(start_method)
        with context.Pool(
            processes=min(policy.n_workers, len(chunks)),
            initializer=_worker_initializer,
            initargs=(handle, worker_config, tracer.enabled),
        ) as pool:
            # Pool.map re-raises a failing chunk's original exception here in
            # the parent; the with-block then terminates the remaining
            # workers and the finally below releases the shared segment.
            for chunk_result in pool.map(_mine_chunk, chunks, chunksize=1):
                for unit, levels, span_payload in chunk_result:
                    unit_levels[unit] = levels
                    if span_payload is not None:
                        unit_spans[unit] = span_payload
    finally:
        segment.close()
        segment.unlink()
    if tracer.enabled:
        # Workers ship their per-unit span trees back with the results; the
        # driver grafts them in canonical unit order so the merged tree is
        # independent of chunk scheduling (same determinism story as the
        # spider merge itself).
        for unit in sorted(unit_spans):
            tracer.attach(Span.from_dict(unit_spans[unit]))
    return unit_levels


# ---------------------------------------------------------------------- #
# worker-side plumbing (module-level so every start method can pickle it)
# ---------------------------------------------------------------------- #
_worker_state: Dict[str, object] = {}


def _worker_initializer(handle: SharedGraphHandle, config, telemetry: bool = False) -> None:
    """Attach the shared graph once per worker and build its miner.

    Never raises: ``multiprocessing.Pool`` respawns a worker whose
    initializer dies, which would loop forever on a persistent failure (say,
    the segment vanished).  A failed setup is stashed instead and re-raised
    by the first task, which aborts the whole ``pool.map`` cleanly.
    """
    import atexit

    from ..core.spider_miner import SpiderMiner

    try:
        attached = attach_shared_graph(handle)
        _worker_state["attached"] = attached
        _worker_state["miner"] = SpiderMiner(attached.graph, config)
        _worker_state["telemetry"] = bool(telemetry)
    except BaseException as error:  # noqa: BLE001 - re-raised by the first task
        _worker_state["setup_error"] = error
        return
    atexit.register(_worker_shutdown)
    # The shared snapshot is immutable and workers only accrete caches and
    # candidates; with no old-generation garbage to find, the cyclic GC's
    # periodic full-heap scans are pure overhead on large graphs.
    gc.disable()


def _worker_shutdown() -> None:
    """Drop graph references, then release the shared mapping."""
    attached = _worker_state.pop("attached", None)
    _worker_state.clear()
    gc.enable()
    gc.collect()
    if isinstance(attached, AttachedGraph):
        try:
            attached.detach()
        except BufferError:  # pragma: no cover - stray view kept by caller
            pass


def _mine_chunk(
    units: Sequence[int],
) -> List[Tuple[int, List[List[Spider]], Optional[Dict]]]:
    """Mine one chunk of unit indices in this worker.

    Each tuple carries the unit's per-level buckets plus — when the parent
    had tracing on — a serialised per-unit span tree for the driver to
    graft (``None`` otherwise, so disabled telemetry ships zero extra bytes
    through the result pickles).
    """
    setup_error = _worker_state.get("setup_error")
    if setup_error is not None:
        raise setup_error
    miner = _worker_state["miner"]
    if not _worker_state.get("telemetry"):
        return [(unit, miner.mine_unit(unit), None) for unit in units]
    results = []
    for unit in units:
        started = time.monotonic()
        levels = miner.mine_unit(unit)
        span = Span(
            name="mine.stage1.unit",
            attrs={
                "unit": unit,
                "spiders": sum(len(bucket) for bucket in levels),
            },
            duration=time.monotonic() - started,
        )
        results.append((unit, levels, span.to_dict()))
    return results
