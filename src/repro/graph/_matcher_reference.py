"""The pre-domain subgraph matcher, kept verbatim as the parity reference.

This is the VF2-style backtracking search :mod:`repro.graph.isomorphism`
shipped before the candidate-domain engine replaced it: frozenset neighbor
views, per-candidate intersection pools, and the original anchored ordering
(anchor moved to the front of the *free* matching order, which can strand
mid-search vertices without a mapped neighbor and silently fall back to
whole-graph label scans).

It exists for two jobs and must not be "improved":

* the hypothesis parity suite (``tests/test_matcher_parity.py``) asserts the
  domain matcher enumerates exactly the embedding sets this implementation
  does, across backends, semantics and anchoring;
* the matcher perf-smoke suite uses its ``candidate_tests`` counter as the
  baseline when reporting how many per-candidate feasibility tests domain
  filtering eliminates.

The only additions over the historical code are the two counters
(``candidate_tests``, ``pool_fallbacks``); they observe the search without
changing a single branch of it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .labeled_graph import LabeledGraph, Vertex
from .view import GraphView

Mapping = Dict[Vertex, Vertex]


class ReferenceSubgraphMatcher:
    """Enumerates embeddings of ``pattern`` in ``target`` (pre-domain engine)."""

    def __init__(
        self,
        pattern: LabeledGraph,
        target: GraphView,
        induced: bool = False,
    ) -> None:
        self.pattern = pattern
        self.target = target
        self.induced = induced
        self._order = self._matching_order()
        #: candidates that reached the per-candidate feasibility check
        self.candidate_tests = 0
        #: label-scan candidate pools used mid-search (no mapped neighbor)
        self.pool_fallbacks = 0

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def find_embeddings(
        self,
        limit: Optional[int] = None,
        anchor: Optional[Tuple[Vertex, Vertex]] = None,
    ) -> List[Mapping]:
        return list(self.iter_embeddings(limit=limit, anchor=anchor))

    def iter_embeddings(
        self,
        limit: Optional[int] = None,
        anchor: Optional[Tuple[Vertex, Vertex]] = None,
    ) -> Iterator[Mapping]:
        if self.pattern.num_vertices == 0:
            return
        if self.pattern.num_vertices > self.target.num_vertices:
            return
        if self.pattern.num_edges > self.target.num_edges:
            return
        if not self._labels_feasible():
            return
        order = self._order
        if anchor is not None:
            p_anchor, t_anchor = anchor
            if p_anchor not in self.pattern or t_anchor not in self.target:
                return
            if self.pattern.label(p_anchor) != self.target.label(t_anchor):
                return
            order = [p_anchor] + [v for v in order if v != p_anchor]
            initial: Mapping = {p_anchor: t_anchor}
            used = {t_anchor}
            start_index = 1
        else:
            initial = {}
            used = set()
            start_index = 0

        count = 0
        for mapping in self._search(order, start_index, initial, used):
            yield dict(mapping)
            count += 1
            if limit is not None and count >= limit:
                return

    def exists(self, anchor: Optional[Tuple[Vertex, Vertex]] = None) -> bool:
        for _ in self.iter_embeddings(limit=1, anchor=anchor):
            return True
        return False

    def count(self, limit: Optional[int] = None) -> int:
        n = 0
        for _ in self.iter_embeddings(limit=limit):
            n += 1
        return n

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _labels_feasible(self) -> bool:
        target_counts = self.target.label_counts()
        for label, needed in self.pattern.label_counts().items():
            if target_counts.get(label, 0) < needed:
                return False
        return True

    def _matching_order(self) -> List[Vertex]:
        """Connectivity-first ordering: rarest label first, then BFS-expand."""
        pattern = self.pattern
        if pattern.num_vertices == 0:
            return []
        target_counts = self.target.label_counts()

        def rarity(v: Vertex) -> Tuple[int, int, str]:
            return (
                target_counts.get(pattern.label(v), 0),
                -pattern.degree(v),
                repr(v),
            )

        remaining = set(pattern.vertices())
        order: List[Vertex] = []
        while remaining:
            start = min(remaining, key=rarity)
            order.append(start)
            remaining.discard(start)
            frontier = [v for v in pattern.neighbors(start) if v in remaining]
            while frontier:
                nxt = min(frontier, key=rarity)
                order.append(nxt)
                remaining.discard(nxt)
                frontier = [v for v in frontier if v != nxt]
                frontier.extend(
                    v for v in pattern.neighbors(nxt) if v in remaining and v not in frontier
                )
        return order

    def _candidates(
        self, p_vertex: Vertex, mapping: Mapping, used: Set[Vertex]
    ) -> Iterator[Vertex]:
        pattern, target = self.pattern, self.target
        label = pattern.label(p_vertex)
        mapped_neighbors = [u for u in pattern.neighbors(p_vertex) if u in mapping]
        if mapped_neighbors:
            first = mapped_neighbors[0]
            candidate_pool = target.neighbors(mapping[first])
            for other in mapped_neighbors[1:]:
                candidate_pool = candidate_pool & target.neighbors(mapping[other])
            for t_vertex in candidate_pool:
                if t_vertex not in used and target.label(t_vertex) == label:
                    yield t_vertex
        else:
            if mapping:
                self.pool_fallbacks += 1
            for t_vertex in self.target.vertices_with_label(label):
                if t_vertex not in used:
                    yield t_vertex

    def _feasible(self, p_vertex: Vertex, t_vertex: Vertex, mapping: Mapping) -> bool:
        self.candidate_tests += 1
        pattern, target = self.pattern, self.target
        if target.degree(t_vertex) < pattern.degree(p_vertex):
            return False
        t_neighbors = target.neighbors(t_vertex)
        for p_neighbor in pattern.neighbors(p_vertex):
            if p_neighbor in mapping and mapping[p_neighbor] not in t_neighbors:
                return False
        if self.induced:
            p_neighbor_set = pattern.neighbors(p_vertex)
            for p_mapped, t_mapped in mapping.items():
                if t_mapped in t_neighbors and p_mapped not in p_neighbor_set:
                    return False
        return True

    def _search(
        self,
        order: Sequence[Vertex],
        index: int,
        mapping: Mapping,
        used: Set[Vertex],
    ) -> Iterator[Mapping]:
        if index == len(order):
            yield mapping
            return
        p_vertex = order[index]
        for t_vertex in self._candidates(p_vertex, mapping, used):
            if not self._feasible(p_vertex, t_vertex, mapping):
                continue
            mapping[p_vertex] = t_vertex
            used.add(t_vertex)
            yield from self._search(order, index + 1, mapping, used)
            del mapping[p_vertex]
            used.discard(t_vertex)
